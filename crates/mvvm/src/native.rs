//! The native host-closure tier: whole-function regions lowered ahead
//! of execution into pre-resolved micro-op runs.
//!
//! Where the block tiers ([`crate::block`]) *record* decode as a side
//! effect of executing, this tier *lowers* statically: starting from a
//! registered function entry it walks the reachable direct control flow
//! (`jmp`, `jcc`, `call rel` and fallthrough edges) through
//! [`crate::Memory::fetch`] and compiles every straight-line block into a
//! [`NativeBlock`] — alternating [`Seg::Fast`] runs of packed
//! [`MicroOp`]s with their cycle charges pre-classified, and
//! [`Seg::Slow`] single instructions that replay through the one true
//! per-instruction routine. A peephole pass folds `mov r, imm; alu r,
//! imm` into a constant move, merges same-op immediate chains, collapses
//! maximal same-register immediate-ALU runs into [`MicroOp::ChainRI`]
//! chains (the executor keeps the chained value in a host register
//! instead of bouncing every intermediate off the register file), and
//! pairs the remaining immediate ALU ops — one batched `tsc` update per
//! segment.
//!
//! The observational contract is identical to the block tiers: fast
//! micro-ops are restricted to the [`crate::DecodedBlock::is_fast`]
//! subset (register-only, unfaultable, control-free), cycle charges are
//! counted per original instruction class, and everything else — loads,
//! stores, branches, calls, traps — goes through `exec_insn` unchanged.
//! A lowered region is valid only while every page it was lowered from
//! keeps its `code_version`; a commit patch invalidates the whole
//! region and execution falls back to the block engine until the next
//! successful commit re-registers it.
//!
//! Registration is explicit ([`crate::Machine::ensure_native`]): the
//! `native` runtime backend drives it from the commit protocol, keeping
//! the set of lowered regions in lockstep with the functions' installed
//! variants.

use crate::block::FxBuildHasher;
use crate::mem::{Memory, PAGE_SIZE};
use crate::DecodedBlock;
use mvasm::{AluOp, Cond, Insn};
use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// Blocks a lowered region may hold before lowering stops following
/// successors (execution past the cap falls back to the block engine).
pub const MAX_NATIVE_BLOCKS: usize = 128;
/// Instructions per lowered block (the tier-0 limit, for parity).
pub const MAX_NATIVE_BLOCK_INSTS: usize = crate::block::MAX_BLOCK_INSTS;

/// Monotone counters of the native tier, mirrored into the metrics
/// registry as `mv_vm_native_*`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Regions lowered and registered (cumulative).
    pub regions: u64,
    /// Blocks lowered across all regions (cumulative).
    pub blocks: u64,
    /// Native block executions (one per block entered, not per op).
    pub runs: u64,
    /// Guest instructions retired through native segments.
    pub insns: u64,
    /// Regions dropped because a page generation moved under them.
    pub invalidations: u64,
}

/// A pre-resolved register-only micro-operation. Register operands are
/// stored as raw indices (`Reg::index()`), immediates pre-widened to
/// `u64` — everything the hot dispatch would otherwise recompute.
#[derive(Clone, Copy, Debug)]
pub enum MicroOp {
    /// `dst = src`.
    MovRR {
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst = imm` — also the lowering of `lea` and of folded
    /// move/ALU-immediate chains.
    MovRI {
        /// Destination register index.
        dst: u8,
        /// Pre-widened immediate.
        imm: u64,
    },
    /// `dst = dst op src`.
    AluRR {
        /// ALU operation (never div/rem — those cannot enter a fast run).
        op: AluOp,
        /// Destination register index.
        dst: u8,
        /// Source register index.
        src: u8,
    },
    /// `dst = dst op imm`.
    AluRI {
        /// ALU operation (never div/rem).
        op: AluOp,
        /// Destination register index.
        dst: u8,
        /// Pre-widened immediate.
        imm: u64,
    },
    /// Two immediate ALU ops retired in one dispatch.
    Alu2RI {
        /// First operation.
        op1: AluOp,
        /// First destination register index.
        dst1: u8,
        /// First immediate.
        imm1: u64,
        /// Second operation.
        op2: AluOp,
        /// Second destination register index.
        dst2: u8,
        /// Second immediate.
        imm2: u64,
    },
    /// `cmp = (a, b)`.
    CmpRR {
        /// Left operand register index.
        a: u8,
        /// Right operand register index.
        b: u8,
    },
    /// `cmp = (a, imm)`.
    CmpRI {
        /// Left operand register index.
        a: u8,
        /// Pre-widened immediate.
        imm: u64,
    },
    /// `dst = cc(cmp)`.
    Setcc {
        /// Condition to evaluate against the `cmp` operands.
        cc: Cond,
        /// Destination register index.
        dst: u8,
    },
    /// A maximal run of immediate ALU ops on one register, executed as
    /// `dst = opN(.. op2(op1(dst, i1), i2) .., iN)` with the chained
    /// value held in a host register throughout. The steps live in the
    /// owning segment's [`FastSeg::chains`] table (out of line, so the
    /// op stays `Copy`).
    ChainRI {
        /// Destination register index.
        dst: u8,
        /// Index into [`FastSeg::chains`].
        chain: u32,
    },
}

/// The step list of one [`MicroOp::ChainRI`]: `(op, imm)` applied left
/// to right to the chained value.
pub type AluChain = Box<[(AluOp, u64)]>;

/// Per-cost-class instruction counts of a fast segment: the segment's
/// whole cycle charge is `Σ count · class_cost`, computed once per run
/// instead of once per op. Counted from the *original* instructions, so
/// peephole fusion can never change what a segment charges.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostCounts {
    /// Ops charging `cost.alu` (moves, non-mul ALU, `setcc`).
    pub alu: u32,
    /// Ops charging `cost.mul`.
    pub mul: u32,
    /// Ops charging `cost.lea`.
    pub lea: u32,
    /// Ops charging `cost.cmp`.
    pub cmp: u32,
}

impl CostCounts {
    /// Total cycle charge of a segment under `cost`.
    #[inline]
    pub fn cycles(&self, cost: &crate::CostModel) -> u64 {
        self.alu as u64 * cost.alu
            + self.mul as u64 * cost.mul
            + self.lea as u64 * cost.lea
            + self.cmp as u64 * cost.cmp
    }

    fn count(&mut self, insn: &Insn) {
        match insn {
            Insn::MovRR { .. } | Insn::MovRI { .. } | Insn::Setcc { .. } => self.alu += 1,
            Insn::Lea { .. } => self.lea += 1,
            Insn::AluRR { op, .. } | Insn::AluRI { op, .. } => {
                if matches!(op, AluOp::Mul) {
                    self.mul += 1;
                } else {
                    self.alu += 1;
                }
            }
            Insn::CmpRR { .. } | Insn::CmpRI { .. } => self.cmp += 1,
            _ => unreachable!("non-fast op in a fast segment"),
        }
    }
}

/// A maximal run of fast ops, pre-lowered and pre-accounted.
pub struct FastSeg {
    /// The fused micro-op sequence.
    pub micro: Box<[MicroOp]>,
    /// Step tables of the segment's [`MicroOp::ChainRI`] ops.
    pub chains: Box<[AluChain]>,
    /// Guest instructions this segment retires (pre-fusion count).
    pub insns: u32,
    /// Pre-classified cycle charges.
    pub counts: CostCounts,
    /// `pc` after the segment's last instruction.
    pub next_pc: u64,
    /// `Some(next_pc)` iff the last instruction is a `cmp` (the macro-
    /// fusion latch the following `jcc` reads).
    pub fuse_next: Option<u64>,
}

/// One segment of a lowered block.
pub enum Seg {
    /// A batched run of register-only micro-ops.
    Fast(FastSeg),
    /// A single instruction replayed through `exec_insn`.
    Slow {
        /// Instruction address.
        pc: u64,
        /// The decoded instruction.
        insn: Insn,
    },
}

/// A lowered straight-line block.
pub struct NativeBlock {
    /// Entry address.
    pub entry: u64,
    /// Segments in execution order.
    pub segs: Vec<Seg>,
    /// Total guest instructions in the block.
    pub insns: u32,
}

/// A lowered function region: every straight-line block reachable from
/// `entry` over direct control flow, plus the page generations the
/// lowering observed.
pub struct NativeFn {
    /// The registered entry the region was lowered from.
    pub entry: u64,
    /// Lowered blocks; `by_pc` maps block entry addresses to indices.
    pub blocks: Vec<NativeBlock>,
    /// Block entry `pc` → index into [`NativeFn::blocks`].
    pub by_pc: HashMap<u64, usize, FxBuildHasher>,
    /// `(page_number, code_version)` for every page any lowered
    /// instruction's encoding touches.
    pub pages: Vec<(u64, u64)>,
    /// [`Memory::flush_epoch`] at the last successful validation (the
    /// same O(1) fast path the block caches use).
    pub epoch: Cell<u64>,
}

/// Shared handle to a lowered region.
pub type NativeRef = Rc<NativeFn>;

/// The per-machine registry of lowered regions, keyed by every block
/// entry address so execution can re-enter a region mid-function.
#[derive(Default)]
pub struct NativeRegistry {
    map: HashMap<u64, NativeRef, FxBuildHasher>,
    /// Monotone tier counters (survive invalidations and `clear`).
    pub stats: NativeStats,
}

impl NativeRegistry {
    /// The region covering a block starting at `pc`, if any.
    #[inline]
    pub fn get(&self, pc: u64) -> Option<&NativeRef> {
        self.map.get(&pc)
    }

    /// `true` if no region is registered at all (the one-branch fast
    /// path out of the native stepper).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Registers `nf` under every block entry it lowers.
    pub fn register(&mut self, nf: NativeRef) {
        self.stats.regions += 1;
        self.stats.blocks += nf.blocks.len() as u64;
        for b in &nf.blocks {
            self.map.insert(b.entry, Rc::clone(&nf));
        }
    }

    /// Drops the region registered from `entry` (leaves keys another
    /// region has since overwritten untouched).
    pub fn unregister(&mut self, entry: u64) {
        self.map.retain(|_, nf| nf.entry != entry);
    }

    /// Drops the region registered from `entry`, counting it as a
    /// validity invalidation.
    pub fn invalidate_region(&mut self, entry: u64) {
        self.stats.invalidations += 1;
        self.unregister(entry);
    }

    /// Keeps only regions whose registered entry satisfies `keep`.
    pub fn retain_regions(&mut self, keep: impl Fn(u64) -> bool) {
        self.map.retain(|_, nf| keep(nf.entry));
    }

    /// Drops every region whose lowered pages overlap `[start, end)` —
    /// the native half of an explicit icache shootdown. Page-granular
    /// (a superset of the instruction-start rule): over-eviction only
    /// costs a re-lowering, never correctness.
    pub fn invalidate_overlapping(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let first = start / PAGE_SIZE;
        let last = (end - 1) / PAGE_SIZE;
        self.map
            .retain(|_, nf| !nf.pages.iter().any(|&(p, _)| p >= first && p <= last));
    }

    /// Drops every region.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Registered entry addresses (deduplicated, unordered).
    pub fn entries(&self) -> Vec<u64> {
        let set: HashSet<u64> = self.map.values().map(|nf| nf.entry).collect();
        set.into_iter().collect()
    }
}

/// Value of a non-dividing ALU op (the fold-time twin of the machine's
/// `alu_fast`, value only — also the chain executor's per-step routine).
#[inline]
pub(crate) fn alu_value(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shrs => (a as i64).wrapping_shr(b as u32) as u64,
        AluOp::Shru => a.wrapping_shr(b as u32),
        AluOp::Divs | AluOp::Divu | AluOp::Rems | AluOp::Remu => {
            unreachable!("div ops never enter a fast segment")
        }
    }
}

/// `x op i1 op i2 == x op combine(i1, i2)` under wrapping semantics —
/// the ops whose immediate chains merge into one.
fn combine_imms(op: AluOp, i1: u64, i2: u64) -> Option<u64> {
    match op {
        AluOp::Add | AluOp::Sub => Some(i1.wrapping_add(i2)),
        AluOp::Mul => Some(i1.wrapping_mul(i2)),
        AluOp::And => Some(i1 & i2),
        AluOp::Or => Some(i1 | i2),
        AluOp::Xor => Some(i1 ^ i2),
        _ => None,
    }
}

fn micro_of(insn: &Insn) -> MicroOp {
    match *insn {
        Insn::MovRR { dst, src } => MicroOp::MovRR {
            dst: dst.index() as u8,
            src: src.index() as u8,
        },
        Insn::MovRI { dst, imm } => MicroOp::MovRI {
            dst: dst.index() as u8,
            imm: imm as u64,
        },
        Insn::Lea { dst, addr } => MicroOp::MovRI {
            dst: dst.index() as u8,
            imm: addr,
        },
        Insn::AluRR { op, dst, src } => MicroOp::AluRR {
            op,
            dst: dst.index() as u8,
            src: src.index() as u8,
        },
        Insn::AluRI { op, dst, imm } => MicroOp::AluRI {
            op,
            dst: dst.index() as u8,
            imm: imm as u64,
        },
        Insn::CmpRR { a, b } => MicroOp::CmpRR {
            a: a.index() as u8,
            b: b.index() as u8,
        },
        Insn::CmpRI { a, imm } => MicroOp::CmpRI {
            a: a.index() as u8,
            imm: imm as u64,
        },
        Insn::Setcc { cc, dst } => MicroOp::Setcc {
            cc,
            dst: dst.index() as u8,
        },
        _ => unreachable!("non-fast op lowered as micro-op"),
    }
}

/// The peephole pass: fold `mov dst, i1; alu dst, i2` to a constant
/// move, merge same-op immediate chains on one register, collapse
/// maximal same-register immediate-ALU runs into [`MicroOp::ChainRI`],
/// then pair the remaining adjacent immediate ALU ops into
/// [`MicroOp::Alu2RI`]. Value semantics are preserved exactly (ops are
/// applied in program order; only wrapping arithmetic identities fold);
/// cycle accounting is untouched because segments charge by pre-fusion
/// [`CostCounts`]. Returns the fused sequence plus the chain step
/// tables the `ChainRI` ops index.
fn fuse(mut micro: Vec<MicroOp>) -> (Vec<MicroOp>, Vec<AluChain>) {
    loop {
        let mut out: Vec<MicroOp> = Vec::with_capacity(micro.len());
        let mut changed = false;
        for op in micro {
            match (out.last().copied(), op) {
                (
                    Some(MicroOp::MovRI { dst, imm }),
                    MicroOp::AluRI {
                        op,
                        dst: d2,
                        imm: i2,
                    },
                ) if dst == d2 => {
                    *out.last_mut().unwrap() = MicroOp::MovRI {
                        dst,
                        imm: alu_value(op, imm, i2),
                    };
                    changed = true;
                }
                (
                    Some(MicroOp::AluRI { op, dst, imm }),
                    MicroOp::AluRI {
                        op: o2,
                        dst: d2,
                        imm: i2,
                    },
                ) if dst == d2 && op == o2 && combine_imms(op, imm, i2).is_some() => {
                    *out.last_mut().unwrap() = MicroOp::AluRI {
                        op,
                        dst,
                        imm: combine_imms(op, imm, i2).unwrap(),
                    };
                    changed = true;
                }
                (_, op) => out.push(op),
            }
        }
        micro = out;
        if !changed {
            break;
        }
    }
    // Collapse maximal same-register immediate-ALU runs into chains:
    // dependent intermediates then live in one host register instead of
    // round-tripping through the register file between every op (the
    // store-to-load forwarding latency that otherwise dominates hot
    // ALU-chain workloads).
    let mut chains: Vec<AluChain> = Vec::new();
    let mut out: Vec<MicroOp> = Vec::with_capacity(micro.len());
    let mut i = 0usize;
    while i < micro.len() {
        if let MicroOp::AluRI { op, dst, imm } = micro[i] {
            let mut steps = vec![(op, imm)];
            let mut j = i + 1;
            while j < micro.len() {
                match micro[j] {
                    MicroOp::AluRI {
                        op: o2,
                        dst: d2,
                        imm: i2,
                    } if d2 == dst => {
                        steps.push((o2, i2));
                        j += 1;
                    }
                    _ => break,
                }
            }
            if steps.len() >= 2 {
                out.push(MicroOp::ChainRI {
                    dst,
                    chain: chains.len() as u32,
                });
                chains.push(steps.into_boxed_slice());
                i = j;
                continue;
            }
        }
        out.push(micro[i]);
        i += 1;
    }
    micro = out;
    // Pair what remains: two immediate ALU ops per dispatch. (Chaining
    // already took every same-register run, so pairs mix registers.)
    let mut out: Vec<MicroOp> = Vec::with_capacity(micro.len());
    for op in micro {
        match (out.last().copied(), op) {
            (
                Some(MicroOp::AluRI {
                    op: op1,
                    dst: dst1,
                    imm: imm1,
                }),
                MicroOp::AluRI {
                    op: op2,
                    dst: dst2,
                    imm: imm2,
                },
            ) => {
                *out.last_mut().unwrap() = MicroOp::Alu2RI {
                    op1,
                    dst1,
                    imm1,
                    op2,
                    dst2,
                    imm2,
                };
            }
            (_, op) => out.push(op),
        }
    }
    (out, chains)
}

fn build_block(entry: u64, ops: &[(u64, Insn)]) -> NativeBlock {
    let mut segs = Vec::new();
    let mut i = 0usize;
    while i < ops.len() {
        let (pc, insn) = ops[i];
        if DecodedBlock::is_fast(&insn) {
            let mut j = i;
            let mut counts = CostCounts::default();
            let mut micro = Vec::new();
            while j < ops.len() && DecodedBlock::is_fast(&ops[j].1) {
                counts.count(&ops[j].1);
                micro.push(micro_of(&ops[j].1));
                j += 1;
            }
            let (last_pc, last) = ops[j - 1];
            let next_pc = last_pc + last.len() as u64;
            let (micro, chains) = fuse(micro);
            segs.push(Seg::Fast(FastSeg {
                micro: micro.into_boxed_slice(),
                chains: chains.into_boxed_slice(),
                insns: (j - i) as u32,
                counts,
                next_pc,
                fuse_next: matches!(last, Insn::CmpRR { .. } | Insn::CmpRI { .. })
                    .then_some(next_pc),
            }));
            i = j;
        } else {
            segs.push(Seg::Slow { pc, insn });
            i += 1;
        }
    }
    NativeBlock {
        entry,
        segs,
        insns: ops.len() as u32,
    }
}

fn record_pages(pages: &mut Vec<(u64, u64)>, mem: &Memory, pc: u64, len: u64) {
    let first = pc / PAGE_SIZE;
    let last = (pc + len - 1) / PAGE_SIZE;
    for page in first..=last {
        if !pages.iter().any(|&(p, _)| p == page) {
            pages.push((page, mem.code_version(page * PAGE_SIZE)));
        }
    }
}

/// Statically lowers the function region reachable from `entry`:
/// breadth-first over direct control flow, fetching and decoding
/// through `mem` without executing anything. Returns `None` when not
/// even the entry block could be decoded (unmapped, non-executable, or
/// an immediate decode error).
pub fn lower(mem: &Memory, entry: u64) -> Option<NativeFn> {
    let mut blocks: Vec<NativeBlock> = Vec::new();
    let mut by_pc: HashMap<u64, usize, FxBuildHasher> = HashMap::default();
    let mut pages: Vec<(u64, u64)> = Vec::new();
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut enqueued: HashSet<u64> = HashSet::new();
    queue.push_back(entry);
    enqueued.insert(entry);
    while let Some(pc) = queue.pop_front() {
        if by_pc.contains_key(&pc) || blocks.len() >= MAX_NATIVE_BLOCKS {
            continue;
        }
        let mut ops: Vec<(u64, Insn)> = Vec::new();
        let mut cur = pc;
        let mut succs: Vec<u64> = Vec::new();
        loop {
            if ops.len() >= MAX_NATIVE_BLOCK_INSTS {
                succs.push(cur); // fallthrough continuation block
                break;
            }
            let mut buf = [0u8; 16];
            let Ok(n) = mem.fetch(cur, &mut buf) else {
                break;
            };
            let Ok((insn, len)) = mvasm::decode(&buf[..n]) else {
                break;
            };
            record_pages(&mut pages, mem, cur, len as u64);
            ops.push((cur, insn));
            let next = cur + len as u64;
            match insn {
                Insn::Jmp { rel } => {
                    succs.push(next.wrapping_add(rel as i64 as u64));
                    break;
                }
                Insn::Jcc { rel, .. } => {
                    succs.push(next.wrapping_add(rel as i64 as u64));
                    succs.push(next);
                    break;
                }
                Insn::CallRel { rel } => {
                    succs.push(next.wrapping_add(rel as i64 as u64));
                    succs.push(next); // where the callee's `ret` lands
                    break;
                }
                Insn::CallInd { .. }
                | Insn::CallMem { .. }
                | Insn::Ret
                | Insn::Halt
                | Insn::Trap => break,
                _ => cur = next,
            }
        }
        if ops.is_empty() {
            continue;
        }
        let idx = blocks.len();
        blocks.push(build_block(pc, &ops));
        by_pc.insert(pc, idx);
        for s in succs {
            if enqueued.insert(s) {
                queue.push_back(s);
            }
        }
    }
    if blocks.is_empty() {
        return None;
    }
    Some(NativeFn {
        entry,
        blocks,
        by_pc,
        pages,
        epoch: Cell::new(mem.flush_epoch()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasm::Reg;

    fn alu_ri(op: AluOp, dst: u8, imm: u64) -> MicroOp {
        MicroOp::AluRI { op, dst, imm }
    }

    #[test]
    fn fuse_folds_mov_alu_chains_to_a_constant() {
        let micro = vec![
            MicroOp::MovRI { dst: 3, imm: 10 },
            alu_ri(AluOp::Add, 3, 5),
            alu_ri(AluOp::Mul, 3, 2),
        ];
        let (out, chains) = fuse(micro);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], MicroOp::MovRI { dst: 3, imm: 30 }));
        assert!(chains.is_empty());
    }

    #[test]
    fn fuse_merges_same_op_chains_and_chains_same_register_runs() {
        // add r1, 1; add r1, 2  → add r1, 3 (merged)
        // xor r2, 4; and r2, 7  → one ChainRI run on r2
        let micro = vec![
            alu_ri(AluOp::Add, 1, 1),
            alu_ri(AluOp::Add, 1, 2),
            alu_ri(AluOp::Xor, 2, 4),
            alu_ri(AluOp::And, 2, 7),
        ];
        let (out, chains) = fuse(micro);
        assert_eq!(out.len(), 2, "merged add-chain, then the r2 run chained");
        assert!(matches!(
            out[0],
            MicroOp::AluRI {
                op: AluOp::Add,
                dst: 1,
                imm: 3
            }
        ));
        assert!(matches!(out[1], MicroOp::ChainRI { dst: 2, chain: 0 }));
        assert_eq!(&*chains[0], &[(AluOp::Xor, 4), (AluOp::And, 7)]);
    }

    #[test]
    fn fuse_pairs_mixed_register_alu_ops() {
        // Different registers: no chain forms, greedy pairing applies.
        let micro = vec![alu_ri(AluOp::Add, 1, 1), alu_ri(AluOp::Xor, 2, 4)];
        let (out, chains) = fuse(micro);
        assert_eq!(out.len(), 1);
        assert!(chains.is_empty());
        assert!(matches!(
            out[0],
            MicroOp::Alu2RI {
                op1: AluOp::Add,
                dst1: 1,
                imm1: 1,
                op2: AluOp::Xor,
                dst2: 2,
                imm2: 4,
            }
        ));
    }

    #[test]
    fn fuse_never_merges_shift_chains() {
        // shl r0, 40; shl r0, 40 must NOT become shl r0, 80 — the shift
        // count wraps mod 64 per instruction. It chains as two steps.
        let micro = vec![alu_ri(AluOp::Shl, 0, 40), alu_ri(AluOp::Shl, 0, 40)];
        let (out, chains) = fuse(micro);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], MicroOp::ChainRI { dst: 0, chain: 0 }));
        assert_eq!(&*chains[0], &[(AluOp::Shl, 40), (AluOp::Shl, 40)]);
    }

    #[test]
    fn chained_steps_apply_in_program_order() {
        // ((x + 1) ^ 0x5A5A) & 0xffff — order matters; the chain must
        // evaluate left to right exactly as the discrete ops would.
        let micro = vec![
            alu_ri(AluOp::Add, 0, 1),
            alu_ri(AluOp::Xor, 0, 0x5A5A),
            alu_ri(AluOp::And, 0, 0xffff),
        ];
        let (out, chains) = fuse(micro);
        assert_eq!(out.len(), 1);
        let MicroOp::ChainRI { chain, .. } = out[0] else {
            panic!("expected a chain");
        };
        let x = 0x1234u64;
        let v = chains[chain as usize]
            .iter()
            .fold(x, |v, &(op, imm)| alu_value(op, v, imm));
        assert_eq!(v, ((x + 1) ^ 0x5A5A) & 0xffff);
    }

    #[test]
    fn cost_counts_classify_by_cycle_class() {
        let mut c = CostCounts::default();
        c.count(&Insn::MovRI {
            dst: Reg::R0,
            imm: 1,
        });
        c.count(&Insn::AluRI {
            op: AluOp::Mul,
            dst: Reg::R0,
            imm: 2,
        });
        c.count(&Insn::Lea {
            dst: Reg::R1,
            addr: 0x100,
        });
        c.count(&Insn::CmpRI { a: Reg::R0, imm: 3 });
        assert_eq!((c.alu, c.mul, c.lea, c.cmp), (1, 1, 1, 1));
        let cost = crate::CostModel::default();
        assert_eq!(c.cycles(&cost), cost.alu + cost.mul + cost.lea + cost.cmp);
    }

    #[test]
    fn registry_register_unregister_and_overlap() {
        let mut reg = NativeRegistry::default();
        let nf = Rc::new(NativeFn {
            entry: 0x1000,
            blocks: vec![
                NativeBlock {
                    entry: 0x1000,
                    segs: vec![],
                    insns: 0,
                },
                NativeBlock {
                    entry: 0x1040,
                    segs: vec![],
                    insns: 0,
                },
            ],
            by_pc: HashMap::default(),
            pages: vec![(1, 0)],
            epoch: Cell::new(0),
        });
        reg.register(nf);
        assert!(reg.get(0x1000).is_some());
        assert!(reg.get(0x1040).is_some(), "keyed by every block entry");
        assert_eq!(reg.entries(), vec![0x1000]);
        // A range on another page leaves it alone…
        reg.invalidate_overlapping(0x5000, 0x5010);
        assert!(reg.get(0x1000).is_some());
        // …one on its page drops the whole region.
        reg.invalidate_overlapping(0x1ff0, 0x2001);
        assert!(reg.get(0x1000).is_none());
        assert!(reg.is_empty());
    }
}
