//! Cross-crate integration: separate compilation, descriptor accounting
//! (§5), W^X discipline, and patch/revert byte identity.

use multiverse::mvc::Options;
use multiverse::mvobj::descriptor::{fn_desc_size, CALLSITE_DESC_SIZE, VAR_DESC_SIZE};
use multiverse::{mvobj, Program};

#[test]
fn separate_compilation_with_shared_switch() {
    // Three translation units: the switch definition, a library using it,
    // and the main program — the §5 multi-TU scenario.
    let config = "multiverse bool verbose;";
    let lib = r#"
        extern multiverse bool verbose;
        u64 work_done;
        multiverse void do_work(void) {
            work_done = work_done + 1;
            if (verbose) {
                work_done = work_done + 100;
            }
        }
    "#;
    // §5: the attribute must appear on the *declaration*, "such that the
    // compiler knows for every occurrence of a function or variable that
    // it is multiversed" — otherwise call sites in this unit would not be
    // recorded (see `declaration_without_attribute_records_no_sites`).
    let main_c = r#"
        extern multiverse void do_work(void);
        void run3(void) { do_work(); do_work(); do_work(); }
        i64 main(void) { return 0; }
    "#;
    let program =
        Program::build(&[("config.c", config), ("lib.c", lib), ("main.c", main_c)]).unwrap();
    let mut w = program.boot();

    // The linker concatenated descriptor fragments from all units; the
    // runtime sees one switch, one function, and the three call sites
    // from main.c plus any in lib.c.
    let rt = w.rt.as_ref().unwrap();
    assert_eq!(rt.num_variables(), 1);
    assert_eq!(rt.num_functions(), 1);
    assert_eq!(rt.num_callsites(), 3);

    w.set("verbose", 0).unwrap();
    w.commit().unwrap();
    w.call("run3", &[]).unwrap();
    assert_eq!(w.get("work_done").unwrap(), 3);

    w.set("verbose", 1).unwrap();
    w.commit().unwrap();
    w.call("run3", &[]).unwrap();
    assert_eq!(w.get("work_done").unwrap(), 3 + 303);
}

#[test]
fn declaration_without_attribute_records_no_sites() {
    // The flip side of §5: forgetting the attribute on the extern
    // declaration silently loses the unit's call sites (they stay bound
    // to the generic entry, which the entry jump still covers).
    let config = "multiverse bool on; multiverse void f(void) { if (on) { } }";
    let main_c = r#"
        extern void f(void);
        void g(void) { f(); }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("config.c", config), ("main.c", main_c)]).unwrap();
    let w = program.boot();
    assert_eq!(w.rt.as_ref().unwrap().num_callsites(), 0);
}

#[test]
fn descriptor_sections_obey_the_size_model() {
    // E8: 32 B per switch, 16 B per call site, 48+#v·(32+#g·16) per
    // function — checked against a program with known shape.
    let src = r#"
        multiverse bool s1;
        multiverse(0,1,2) i32 s2;
        // f1: 2 switches, 2×3 = 6 assignments. The bodies for s1=0
        // collapse (s2 unread behind the branch? no: both read at top)…
        // keep it simple and fully distinguishable: 6 distinct bodies.
        multiverse i64 f1(void) { return s1 * 1000 + s2 * 10; }
        // f2: one switch, two variants.
        multiverse i64 f2(void) { if (s1) { return 1; } return 2; }
        i64 use_them(void) { return f1() + f2(); }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let exe = program.exe();

    let (_, vars) = exe.section(mvobj::SEC_MV_VARIABLES);
    assert_eq!(vars as usize, 2 * VAR_DESC_SIZE);

    let (_, sites) = exe.section(mvobj::SEC_MV_CALLSITES);
    assert_eq!(sites as usize, 2 * CALLSITE_DESC_SIZE);

    // f1: 6 variants, each guarded by both switches (2 guards); f2: 2
    // variants with 1 guard each.
    let (_, fsec) = exe.section(mvobj::SEC_MV_FUNCTIONS);
    let expected = fn_desc_size(6, 12) + fn_desc_size(2, 2);
    assert_eq!(fsec as usize, expected);
}

#[test]
fn wx_protection_holds_at_every_stage() {
    let src = r#"
        multiverse bool f;
        multiverse i64 g(void) { if (f) { return 1; } return 0; }
        i64 h(void) { return g(); }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let mut w = program.boot();
    let text = w.sym("g").unwrap();

    let assert_rx = |w: &multiverse::World, when: &str| {
        let p = w.machine.mem.prot_of(text).unwrap();
        assert!(p.exec && !p.write, "text must be R-X {when}");
    };
    assert_rx(&w, "after load");
    w.set("f", 1).unwrap();
    w.commit().unwrap();
    assert_rx(&w, "after commit");
    w.revert().unwrap();
    assert_rx(&w, "after revert");
}

#[test]
fn commit_revert_restores_bytes_exactly() {
    let src = r#"
        multiverse(0,1,2,3) i32 level;
        multiverse i64 pick(void) { return level * 7; }
        i64 call_it(void) { return pick(); }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let mut w = program.boot();

    // Snapshot the whole text segment.
    let (taddr, tsize) = program.exe().section(mvobj::SEC_TEXT);
    let pristine = w.machine.mem.read_vec(taddr, tsize as usize).unwrap();

    // Cycle through every domain value (several commit transitions,
    // including variant→variant repatching), then revert.
    for v in [0i64, 1, 2, 3, 1, 0, 3] {
        w.set("level", v).unwrap();
        w.commit().unwrap();
        assert_eq!(w.call("call_it", &[]).unwrap() as i64, v * 7);
    }
    w.revert().unwrap();
    let restored = w.machine.mem.read_vec(taddr, tsize as usize).unwrap();
    assert_eq!(pristine, restored, "revert is byte-exact");
}

#[test]
fn image_size_overhead_is_bounded_and_accounted() {
    // The multiverse build grows by variants + descriptors, nothing else:
    // overhead = (image_mv - image_dyn) must equal the descriptor
    // sections plus the extra text.
    let src = r#"
        multiverse bool a;
        multiverse i64 f(void) { if (a) { return 1; } return 2; }
        i64 g(void) { return f(); }
        i64 main(void) { return 0; }
    "#;
    let mv = Program::build(&[("t.c", src)]).unwrap();
    let dy = Program::build_with(&[("t.c", src)], &Options::dynamic()).unwrap();
    let overhead = mv.image_size() - dy.image_size();
    let exe = mv.exe();
    let desc_bytes: u64 = [
        mvobj::SEC_MV_VARIABLES,
        mvobj::SEC_MV_FUNCTIONS,
        mvobj::SEC_MV_CALLSITES,
    ]
    .iter()
    .map(|s| exe.section(s).1)
    .sum();
    assert!(overhead >= desc_bytes, "{overhead} vs {desc_bytes}");
    // Variants of a tiny function are tiny: the rest of the overhead
    // (text for 2 variants + name strings) stays below 4 KiB here.
    assert!(overhead - desc_bytes < 4096);
}

#[test]
fn variant_limit_is_enforced_and_configurable() {
    let src = r#"
        multiverse(0,1,2,3,4,5,6,7,8,9) i32 a;
        multiverse(0,1,2,3,4,5,6,7,8,9) i32 b;
        multiverse i64 f(void) { return a + b; }
        i64 main(void) { return 0; }
    "#;
    let err = match Program::build(&[("t.c", src)]) {
        Err(e) => e,
        Ok(_) => panic!("100-variant cross product must exceed the default limit"),
    };
    assert!(err.to_string().contains("100 variants"), "{err}");
    Program::build_with(
        &[("t.c", src)],
        &Options {
            variant_limit: 128,
            ..Options::default()
        },
    )
    .expect("higher limit admits the cross product");
}
