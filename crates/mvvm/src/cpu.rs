//! Architectural CPU state.

use mvasm::Reg;

/// Register file, flags and the time-stamp counter.
#[derive(Clone, Debug)]
pub struct Cpu {
    /// General-purpose registers.
    pub regs: [u64; Reg::COUNT],
    /// Program counter.
    pub pc: u64,
    /// Operands of the most recent `cmp` (conditions are evaluated lazily
    /// against them).
    pub cmp: (u64, u64),
    /// Interrupt-enable flag (`sti`/`cli`).
    pub if_flag: bool,
    /// Time-stamp counter — advances with the cost model, read by `rdtsc`.
    pub tsc: u64,
    /// Set once `halt` retires.
    pub halted: bool,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu::new(0)
    }
}

impl Cpu {
    /// Creates a reset CPU with the stack pointer at `sp`.
    pub fn new(sp: u64) -> Cpu {
        let mut regs = [0u64; Reg::COUNT];
        regs[Reg::SP.index()] = sp;
        Cpu {
            regs,
            pc: 0,
            cmp: (0, 0),
            if_flag: true,
            tsc: 0,
            halted: false,
        }
    }

    /// Reads a register.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Current stack pointer.
    #[inline]
    pub fn sp(&self) -> u64 {
        self.regs[Reg::SP.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state() {
        let c = Cpu::new(0x8000_0000);
        assert_eq!(c.sp(), 0x8000_0000);
        assert!(c.if_flag);
        assert!(!c.halted);
        assert_eq!(c.tsc, 0);
    }
}
