//! Fig. 1 — the motivating spinlock table: static (A), dynamic (B) and
//! multiverse (C) binding of `CONFIG_SMP`.
//!
//! Criterion measures host-side simulation throughput per binding; the
//! authoritative cycle table (printed once at startup) comes from the
//! deterministic machine.

use criterion::{criterion_group, criterion_main, Criterion};
use multiverse::bench::render_table;
use multiverse::mvvm::MachineMode;
use mv_workloads::spinlock::{boot, measure_lock, KernelBuild};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render_table("Fig. 1 — spin_irq_lock avg. cycles", &mv_bench::fig1_data())
    );

    let mut g = c.benchmark_group("fig1_spinlock");
    for (name, kind, mode) in [
        ("A_static_up", KernelBuild::IfdefOff, MachineMode::Unicore),
        ("B_dynamic_up", KernelBuild::ElisionIf, MachineMode::Unicore),
        (
            "C_multiverse_up",
            KernelBuild::ElisionMultiverse,
            MachineMode::Unicore,
        ),
        (
            "A_static_smp",
            KernelBuild::NoElision,
            MachineMode::Multicore,
        ),
        (
            "C_multiverse_smp",
            KernelBuild::ElisionMultiverse,
            MachineMode::Multicore,
        ),
    ] {
        let mut w = boot(kind, mode).expect("boot");
        g.bench_function(name, |b| {
            b.iter(|| measure_lock(&mut w, 100).expect("measure"))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
