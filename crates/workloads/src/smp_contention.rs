//! SMP spinlock contention under concurrent commits — the E15 workload.
//!
//! N worker vCPUs hammer one `config_smp`-guarded spinlock protecting a
//! shared counter while the host repeatedly rewrites the lock functions
//! with quiesced commits ([`CommitStrategy::StopMachine`] vs.
//! [`CommitStrategy::Breakpoint`]). The switch stays `1` throughout, so
//! the *semantics* never change — generic and committed bodies both
//! take the lock — but each flip alternates the binding
//! (generic ↔ variant) and therefore really rewrites the call sites and
//! entry prologues mid-flight. Two quantities fall out:
//!
//! * **correctness** — the counter must end at exactly
//!   `vcpus × iters`: a torn fetch, a stale decode or a lock acquired
//!   through half-patched code would lose increments or fault;
//! * **cost** — the commit latency (guest cycles of the quiesce
//!   window) and the worker stall cycles, per strategy and core count,
//!   reported in EXPERIMENTS.md E15.

use multiverse::mvrt::{CommitStrategy, QuiesceOp};
use multiverse::{BuildError, Program, SmpWorld};

/// The contention kernel: a spinlock pair guarded by `config_smp` and a
/// worker loop incrementing a shared counter under the lock.
pub const SRC: &str = r#"
    multiverse bool config_smp;
    i64 lock_word;
    i64 counter;

    multiverse void lock(void) {
        if (config_smp) {
            while (__xchg(&lock_word, 1) != 0) { __pause(); }
        }
    }

    multiverse void unlock(void) {
        if (config_smp) {
            lock_word = 0;
        }
    }

    i64 worker(i64 iters) {
        i64 i = 0;
        while (i < iters) {
            lock();
            counter = counter + 1;
            unlock();
            i = i + 1;
        }
        return counter;
    }

    i64 main(void) { return worker(8); }
"#;

/// Compiles the contention kernel with multiverse enabled.
pub fn build() -> Result<Program, BuildError> {
    Program::build(&[("smp_contention.c", SRC)])
}

/// Boots `n` worker vCPUs with `config_smp = 1` (nothing spawned yet).
pub fn boot(n: usize, seed: u64) -> Result<SmpWorld, BuildError> {
    let p = build()?;
    let mut w = p.boot_smp(n);
    w.smp.set_seed(seed);
    w.set("config_smp", 1)?;
    Ok(w)
}

/// Aggregated outcome of one contention run with mid-flight commits.
#[derive(Clone, Copy, Debug)]
pub struct ContentionReport {
    /// Worker vCPUs.
    pub vcpus: usize,
    /// Lock/increment iterations per worker.
    pub iters: u64,
    /// Protocol used for every flip.
    pub strategy: CommitStrategy,
    /// Commits + reverts performed while the workers ran.
    pub flips: u32,
    /// Guest cycles (wall-clock under the cost model) spent inside
    /// quiesce windows, summed over all flips.
    pub commit_latency: u64,
    /// Worker stall cycles charged inside the windows, summed.
    pub stall_cycles: u64,
    /// Scheduler rounds spent in rendezvous/drain, summed.
    pub rounds: u64,
    /// Breakpoint hits absorbed (0 under stop-machine).
    pub trap_hits: u64,
    /// Final value of the shared counter.
    pub counter: i64,
    /// `true` iff `counter == vcpus * iters` — no increment was lost to
    /// a torn fetch, stale decode or broken lock.
    pub lock_consistent: bool,
}

/// Scheduler rounds run between consecutive flips, so the workers make
/// real progress (and hold the lock across preemptions) while the text
/// changes under them.
const BURST_ROUNDS: u64 = 8;

/// Round budget for draining the workers after the last flip.
const MAX_ROUNDS: u64 = 10_000_000;

/// Runs `vcpus` workers for `iters` lock/increment iterations each,
/// interleaving `flips` quiesced binding changes (commit ↔ revert of
/// the lock functions) under `strategy`.
pub fn measure(
    vcpus: usize,
    iters: u64,
    strategy: CommitStrategy,
    flips: u32,
    seed: u64,
) -> Result<ContentionReport, BuildError> {
    let mut w = boot(vcpus, seed)?;
    w.spawn_all("worker", &[iters])?;
    let mut report = ContentionReport {
        vcpus,
        iters,
        strategy,
        flips,
        commit_latency: 0,
        stall_cycles: 0,
        rounds: 0,
        trap_hits: 0,
        counter: 0,
        lock_consistent: false,
    };
    let mut committed = false;
    for _ in 0..flips {
        for _ in 0..BURST_ROUNDS {
            if !w.smp.any_live() {
                break;
            }
            w.smp.step_round();
        }
        let t0 = w.smp.max_cycles();
        let q = if committed {
            w.revert_quiesced(strategy)?
        } else {
            w.commit_quiesced(strategy)?
        };
        committed = !committed;
        report.commit_latency += w.smp.max_cycles() - t0;
        report.stall_cycles += q.stall_cycles;
        report.rounds += q.rounds;
        report.trap_hits += q.trap_hits;
    }
    w.run(MAX_ROUNDS)?;
    report.counter = w.get("counter")?;
    report.lock_consistent = report.counter == (vcpus as i64) * (iters as i64);
    Ok(report)
}

/// Steady-state cycles per lock/increment iteration on the *worst*
/// vCPU, with the variant bodies committed before any worker starts —
/// the E15 re-derivation of the Fig. 1 SMP spinlock cost on real
/// multi-vCPU contention instead of the `MachineMode` cost-model flag.
pub fn steady_state_cycles(vcpus: usize, iters: u64, seed: u64) -> Result<f64, BuildError> {
    let mut w = boot(vcpus, seed)?;
    // No vCPU is live yet, so the quiesce converges immediately; the
    // workers then run specialized lock/unlock bodies end to end.
    w.commit_quiesced(CommitStrategy::StopMachine)?;
    w.spawn_all("worker", &[iters])?;
    w.run(MAX_ROUNDS)?;
    Ok(w.smp.max_cycles() as f64 / iters as f64)
}

/// Commits `config_smp`'s referencing functions (rather than the whole
/// image) once, quiesced, while workers run — the paper's
/// `multiverse_commit_refs(&config_smp)` usage from the case study.
pub fn commit_refs_once(
    w: &mut SmpWorld,
    strategy: CommitStrategy,
) -> Result<multiverse::mvrt::QuiesceReport, BuildError> {
    let addr = w.sym("config_smp")?;
    let rt = w.rt.as_mut().expect("multiverse build has a runtime");
    Ok(rt.run_quiesced(&mut w.smp, QuiesceOp::CommitRefs(addr), strategy)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_exact_without_flips() {
        let mut w = boot(4, 11).unwrap();
        w.spawn_all("worker", &[64]).unwrap();
        w.run(MAX_ROUNDS).unwrap();
        assert_eq!(w.get("counter").unwrap(), 4 * 64);
        assert_eq!(w.get("lock_word").unwrap(), 0, "lock released");
    }

    #[test]
    fn flips_never_lose_an_increment() {
        for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
            let r = measure(4, 64, strategy, 6, 1234).unwrap();
            assert!(
                r.lock_consistent,
                "{strategy}: counter {} != {}",
                r.counter,
                4 * 64
            );
        }
    }

    #[test]
    fn commit_refs_works_under_contention() {
        let mut w = boot(3, 5).unwrap();
        w.spawn_all("worker", &[32]).unwrap();
        for _ in 0..4 {
            w.smp.step_round();
        }
        let q = commit_refs_once(&mut w, CommitStrategy::Breakpoint).unwrap();
        assert!(q.commit.variants_committed >= 1);
        w.run(MAX_ROUNDS).unwrap();
        assert_eq!(w.get("counter").unwrap(), 3 * 32);
    }

    #[test]
    fn stop_machine_stalls_every_worker() {
        // With enough vCPUs mid-loop, the rendezvous parks workers that
        // then burn pause cycles while stragglers drain.
        let r = measure(6, 64, CommitStrategy::StopMachine, 4, 7).unwrap();
        assert!(r.lock_consistent);
    }
}
