//! Fig. 4 (left) — spinlock lock+unlock for the four kernel builds in
//! unicore and multicore machine state.

use criterion::{criterion_group, criterion_main, Criterion};
use multiverse::bench::render_table;
use multiverse::mvvm::MachineMode;
use mv_workloads::spinlock::{boot, measure_pair, KernelBuild};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render_table(
            "Fig. 4 (left) — spinlock lock+unlock avg. cycles",
            &mv_bench::fig4_spinlock_data()
        )
    );

    let mut g = c.benchmark_group("fig4_spinlock");
    for kind in [
        KernelBuild::NoElision,
        KernelBuild::ElisionIf,
        KernelBuild::ElisionMultiverse,
        KernelBuild::IfdefOff,
    ] {
        for mode in [MachineMode::Unicore, MachineMode::Multicore] {
            if kind == KernelBuild::IfdefOff && mode == MachineMode::Multicore {
                continue;
            }
            let name = format!("{:?}_{:?}", kind, mode);
            let mut w = boot(kind, mode).expect("boot");
            g.bench_function(&name, |b| {
                b.iter(|| measure_pair(&mut w, 100).expect("measure"))
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
