//! GNU grep — the §6.2.3 case study.
//!
//! At startup grep inspects the locale and the pattern and fixes a mode:
//! does matching have to be multibyte (UTF-8) aware? The mode never
//! changes afterwards, yet the matcher consults it on hot paths. The
//! paper multiverses the mode variable (50 changed lines, 4 files) and
//! commits the specialized matcher after setup, gaining 2.73 % end to end
//! on a 2 GiB hex-random corpus with the pattern `a.a`.
//!
//! The mini-grep here scans a generated corpus line by line; the
//! per-line matcher is the variation point guarded by `mb_mode`. The
//! single-byte fast path and the multibyte-aware path produce identical
//! results on pure-ASCII input (which hex data is), exactly the situation
//! grep's `MB_CUR_MAX > 1` check guards.

use multiverse::mvc::Options;
use multiverse::{BuildError, Program, World};

/// Size of the in-image corpus buffer.
pub const HAYSTACK_CAP: usize = 1 << 18;

/// The mini-grep source.
pub const SRC: &str = r#"
    // Locale mode, fixed after setup: 0 = single-byte, 1 = multibyte.
    multiverse(0, 1) i32 mb_mode;

    u8 haystack[262144];

    // Matches the pattern "a.a" within one line.
    multiverse i64 match_line(i64 start, i64 end) {
        i64 count = 0;
        i64 i = start;
        if (mb_mode) {
            // Multibyte-aware scan: classify each byte before matching
            // (lead bytes of multi-byte sequences are skipped wholesale).
            while (i + 2 < end) {
                i64 c = haystack[i];
                if (c >= 192) { i = i + 2; continue; }
                if (c >= 128) { i = i + 1; continue; }
                if (c == 'a') {
                    if (haystack[i + 2] == 'a') { count = count + 1; }
                }
                i = i + 1;
            }
        } else {
            while (i + 2 < end) {
                if (haystack[i] == 'a') {
                    if (haystack[i + 2] == 'a') { count = count + 1; }
                }
                i = i + 1;
            }
        }
        return count;
    }

    // The grep driver: split into lines, match each line.
    i64 grep_all(i64 len) {
        i64 total = 0;
        i64 pos = 0;
        while (pos < len) {
            i64 eol = pos;
            while (eol < len) {
                if (haystack[eol] == '\n') { break; }
                eol = eol + 1;
            }
            total = total + match_line(pos, eol);
            pos = eol + 1;
        }
        return total;
    }

    i64 main(void) { return 0; }
"#;

/// Build flavor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GrepBuild {
    /// Unmodified grep: the mode is tested dynamically.
    Without,
    /// Multiversed mode variable, committed after setup.
    With,
}

impl GrepBuild {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            GrepBuild::Without => "w/o Multiverse",
            GrepBuild::With => "w/ Multiverse",
        }
    }
}

/// Builds mini-grep, loads `corpus` into the haystack, sets the locale
/// mode, and (for the multiverse build) commits the matcher.
pub fn boot(build: GrepBuild, corpus: &[u8], multibyte: bool) -> Result<World, BuildError> {
    assert!(corpus.len() <= HAYSTACK_CAP, "corpus exceeds haystack");
    let opts = match build {
        GrepBuild::Without => Options::dynamic(),
        GrepBuild::With => Options::default(),
    };
    let program = Program::build_with(&[("grep.c", SRC)], &opts)?;
    let mut world = program.boot();
    let hay = world.sym("haystack")?;
    world
        .machine
        .mem
        .write(hay, corpus)
        .map_err(multiverse::mvvm::Fault::Mem)
        .map_err(BuildError::Fault)?;
    world.set("mb_mode", multibyte as i64)?;
    if build == GrepBuild::With {
        world.commit()?;
    }
    Ok(world)
}

/// Runs the end-to-end search; returns `(match count, cycles)`.
pub fn run(world: &mut World, len: usize) -> Result<(u64, u64), BuildError> {
    let c0 = world.cycles();
    let count = world.call("grep_all", &[len as u64])?;
    Ok((count, world.cycles() - c0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::textgen;

    #[test]
    fn match_count_equals_rust_reference() {
        let corpus = textgen::hex_corpus(16_384, 11);
        let expect = textgen::count_a_any_a(&corpus);
        for build in [GrepBuild::Without, GrepBuild::With] {
            for mb in [false, true] {
                let mut w = boot(build, &corpus, mb).unwrap();
                let (count, _) = run(&mut w, corpus.len()).unwrap();
                assert_eq!(count, expect, "{build:?} mb={mb}");
            }
        }
    }

    #[test]
    fn multibyte_path_skips_non_ascii() {
        // An `a` inside a multi-byte sequence is not a match start for
        // the multibyte matcher, but the raw byte matcher sees it.
        let corpus = b"\xC3axa xx".to_vec();
        let mut sb = boot(GrepBuild::Without, &corpus, false).unwrap();
        let (c_sb, _) = run(&mut sb, corpus.len()).unwrap();
        let mut mb = boot(GrepBuild::Without, &corpus, true).unwrap();
        let (c_mb, _) = run(&mut mb, corpus.len()).unwrap();
        assert_ne!(c_sb, c_mb, "modes differ on non-ASCII input");
    }

    #[test]
    fn end_to_end_improvement_is_small_but_real() {
        // §6.2.3: −2.73 % end to end. The mode check sits on the per-line
        // path, so the win is small relative to the per-byte scan.
        let corpus = textgen::hex_corpus(65_536, 5);
        let mut without = boot(GrepBuild::Without, &corpus, false).unwrap();
        let (_, c_without) = run(&mut without, corpus.len()).unwrap();
        let mut with = boot(GrepBuild::With, &corpus, false).unwrap();
        let (_, c_with) = run(&mut with, corpus.len()).unwrap();
        let delta = 1.0 - c_with as f64 / c_without as f64;
        assert!(
            (0.001..0.15).contains(&delta),
            "improvement {:.2}% should be small but positive",
            delta * 100.0
        );
    }

    #[test]
    fn committed_matcher_loses_the_mode_load() {
        let corpus = textgen::hex_corpus(8_192, 9);
        let n_lines = corpus.iter().filter(|&&b| b == b'\n').count() as u64;
        let mut without = boot(GrepBuild::Without, &corpus, false).unwrap();
        let s0 = without.machine.stats;
        run(&mut without, corpus.len()).unwrap();
        let loads_without = without.machine.stats.since(&s0).loads;

        let mut with = boot(GrepBuild::With, &corpus, false).unwrap();
        let s0 = with.machine.stats;
        run(&mut with, corpus.len()).unwrap();
        let loads_with = with.machine.stats.since(&s0).loads;

        // One mode load per line disappears.
        assert!(
            loads_without >= loads_with + n_lines,
            "without={loads_without} with={loads_with} lines={n_lines}"
        );
    }
}
