//! The variational interpreter.
//!
//! One [`Vexec`] pass executes a call under *every* switch assignment at
//! once. Machine state lives in per-configuration contexts ([`Ctx`]),
//! each keyed by a [`LeafSet`] of the configurations it stands for; a
//! context's registers, compare operands, output bytes and memory
//! overlay are [`Val`]s — concrete, or tabulated over one switch.
//!
//! **Split.** Two things force a context apart: a conditional branch
//! whose outcome differs across the live values of a switch (the
//! children retire the branch and continue at their respective targets),
//! and an instruction that cannot stay variational — a division whose
//! divisor is zero in some configurations, an address or call target
//! derived from a switch, or an operation mixing two switches. The
//! latter *materializes*: the context splits into one child per live
//! value (making that switch concrete) and the instruction re-executes.
//!
//! **Join.** When the arms of a split return out of the function that
//! split them (the call boundary approximates the branch's
//! post-dominator), siblings at the same pc/depth re-merge if their leaf
//! sets differ in exactly one switch and every diverging state component
//! can be re-expressed as a [`Val::PerValue`] table over that switch.
//! A failed join is not an error — the contexts simply stay split, which
//! is sound but forfeits sharing.
//!
//! **Bail.** `rdtsc` is refused outright ([`VexecError::Unsupported`]):
//! cycle counts are configuration-dependent in ways the shared pass does
//! not model, so timing questions must fall back to enumeration. A fault
//! that is concrete across a context's configurations aborts the pass
//! with the label of one offending configuration.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use mvasm::{AluOp, Insn, Reg};
use mvtrace::{EventKind, TraceRing};
use mvvm::machine::{HC_CLI, HC_STI, RET_SENTINEL};
use mvvm::mem::{extend, Access, MemError};
use mvvm::{Fault, Memory, Platform};

use crate::config::{ConfigSpace, LeafSet};
use crate::value::{NeedSplit, Val};

/// Tuning knobs for a vexec pass.
#[derive(Clone, Copy, Debug)]
pub struct VexecOptions {
    /// Maximum *shared* steps before the pass gives up with
    /// [`VexecError::Fuel`]. One shared step may stand for thousands of
    /// per-configuration instructions.
    pub fuel: u64,
}

impl Default for VexecOptions {
    fn default() -> VexecOptions {
        VexecOptions { fuel: 50_000_000 }
    }
}

/// Work accounting for one pass.
#[derive(Clone, Copy, Default, Debug)]
pub struct VexecStats {
    /// Shared interpreter steps actually executed.
    pub steps: u64,
    /// What enumerate-and-rerun would have executed: each shared step
    /// weighted by the number of configurations it stood for.
    pub enum_equiv_insns: u64,
    /// Context splits (branch outcome divergence + materializations).
    pub splits: u64,
    /// Successful sibling joins.
    pub joins: u64,
    /// Leaves covered (always the full cross product on success).
    pub leaf_count: u64,
    /// High-water mark of simultaneously live contexts.
    pub max_live: u64,
    /// Total child contexts ever created by splits.
    pub contexts_spawned: u64,
}

impl VexecStats {
    /// How many enumerated instructions each shared step replaced —
    /// the speedup of the variational pass over enumerate-and-rerun,
    /// counted in instructions.
    pub fn shared_prefix_ratio(&self) -> f64 {
        self.enum_equiv_insns as f64 / self.steps.max(1) as f64
    }
}

/// The observation of one leaf configuration at the end of the pass.
#[derive(Clone, Debug)]
pub struct VexecLeaf {
    /// Leaf index in the [`ConfigSpace`].
    pub leaf: usize,
    /// The switch assignment, `(name, value)` in switch order.
    pub assignment: Vec<(String, i64)>,
    /// Return value (`r0`).
    pub exit: u64,
    /// Final register file.
    pub regs: [u64; Reg::COUNT],
    /// Final compare operands.
    pub cmp: (u64, u64),
    /// Final interrupt-enable flag.
    pub if_flag: bool,
    /// `true` if the program halted instead of returning.
    pub halted: bool,
    /// Bytes written to the output sink, in order.
    pub out: Vec<u8>,
    /// Every memory byte the program wrote, `(addr, value)` ascending.
    pub writes: Vec<(u64, u8)>,
}

/// The result of a successful pass: one observation per leaf, plus the
/// work accounting.
#[derive(Clone, Debug)]
pub struct VexecReport {
    /// Per-leaf observations, sorted by leaf index; covers the full
    /// cross product.
    pub leaves: Vec<VexecLeaf>,
    /// Work accounting.
    pub stats: VexecStats,
}

/// Why a pass could not complete.
#[derive(Clone, Debug)]
pub enum VexecError {
    /// An instruction the variational pass refuses to model.
    Unsupported {
        /// Address of the instruction.
        pc: u64,
        /// What it was.
        what: &'static str,
    },
    /// The program faulted; `label` names one affected configuration.
    Fault {
        /// The underlying machine fault.
        fault: Fault,
        /// `name=value,...` label of a configuration that faults.
        label: String,
    },
    /// The shared-step budget ran out.
    Fuel {
        /// Steps executed before giving up.
        steps: u64,
    },
    /// Internal invariant breach: terminal contexts did not cover the
    /// cross product.
    Incomplete {
        /// Number of uncovered leaves.
        missing: usize,
    },
}

impl fmt::Display for VexecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VexecError::Unsupported { pc, what } => {
                write!(
                    f,
                    "vexec cannot model {what} at {pc:#x}; fall back to enumeration"
                )
            }
            VexecError::Fault { fault, label } => {
                write!(f, "fault under configuration {label}: {fault}")
            }
            VexecError::Fuel { steps } => write!(f, "vexec fuel exhausted after {steps} steps"),
            VexecError::Incomplete { missing } => {
                write!(f, "vexec lost {missing} leaves of the cross product")
            }
        }
    }
}

impl std::error::Error for VexecError {}

/// How a context ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Terminal {
    /// Returned through the call sentinel.
    Ret,
    /// Retired `halt`.
    Halt,
}

/// One variational context: the state of some subset of configurations.
#[derive(Clone)]
struct Ctx {
    leaves: LeafSet,
    regs: [Val; Reg::COUNT],
    cmp: (Val, Val),
    if_flag: bool,
    pc: u64,
    /// Call depth relative to the vexec'd entry (call +1, ret −1). The
    /// scheduler suspends a context when its depth drops below the
    /// horizon of the split that created it — the join point.
    depth: i64,
    /// Byte-granular memory delta over the shared base image.
    overlay: BTreeMap<u64, Val>,
    out: Vec<Val>,
    terminal: Option<Terminal>,
}

impl Ctx {
    /// A copy restricted to `leaves`, with every value table pruned.
    fn restricted(&self, space: &ConfigSpace, leaves: LeafSet) -> Ctx {
        Ctx {
            regs: std::array::from_fn(|i| self.regs[i].restrict(space, &leaves)),
            cmp: (
                self.cmp.0.restrict(space, &leaves),
                self.cmp.1.restrict(space, &leaves),
            ),
            overlay: self
                .overlay
                .iter()
                .map(|(a, v)| (*a, v.restrict(space, &leaves)))
                .collect(),
            out: self
                .out
                .iter()
                .map(|v| v.restrict(space, &leaves))
                .collect(),
            leaves,
            if_flag: self.if_flag,
            pc: self.pc,
            depth: self.depth,
            terminal: self.terminal,
        }
    }
}

/// Why one instruction could not retire in the current context. Aborts
/// leave the context unmodified, so [`Abort::Split`] can safely
/// re-execute the instruction in the children.
enum Abort {
    /// Materialize this switch and retry.
    Split(usize),
    /// A machine fault, concrete for every configuration of the context.
    Fault(Fault),
    /// An instruction vexec refuses to model.
    Unsupported(&'static str),
}

impl From<NeedSplit> for Abort {
    fn from(n: NeedSplit) -> Abort {
        Abort::Split(n.sw)
    }
}

impl From<MemError> for Abort {
    fn from(e: MemError) -> Abort {
        Abort::Fault(Fault::Mem(e))
    }
}

/// Outcome of one shared step.
enum Step {
    /// The instruction retired; the context advanced.
    Retired,
    /// The context ended (sentinel return or halt).
    Terminal,
    /// The context split; the children replace it.
    Split(Vec<Ctx>),
}

/// The variational execution engine. Borrows the base memory image
/// read-only: all writes land in per-context overlays, so a pass never
/// perturbs the machine it inspects.
pub struct Vexec<'a> {
    mem: &'a Memory,
    space: &'a ConfigSpace,
    platform: Platform,
    opts: VexecOptions,
    trace: Option<&'a mut TraceRing>,
    decode_cache: HashMap<u64, Insn>,
    stats: VexecStats,
    live: u64,
}

fn want_concrete(v: &Val) -> Result<u64, Abort> {
    match v {
        Val::Concrete(x) => Ok(*x),
        Val::PerValue { sw, .. } => Err(Abort::Split(*sw)),
    }
}

/// Folds two sibling values into one table over switch `s`, given each
/// side's live value indices. `None` means the pair is not joinable.
fn merge_val(a: &Val, b: &Val, s: usize, da: &[usize], db: &[usize]) -> Option<Val> {
    if a == b {
        return Some(a.clone());
    }
    let expand = |v: &Val, ds: &[usize]| -> Option<Vec<(usize, u64)>> {
        match v {
            Val::Concrete(c) => Some(ds.iter().map(|&i| (i, *c)).collect()),
            Val::PerValue { sw, vals } if *sw == s => Some(vals.clone()),
            Val::PerValue { .. } => None,
        }
    };
    let mut table = expand(a, da)?;
    table.extend(expand(b, db)?);
    Some(Val::per_value(s, table))
}

fn alu_f(op: AluOp, a: u64, b: u64) -> u64 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        // Division by zero is screened out before this is called.
        AluOp::Divs => (a as i64).wrapping_div(b as i64) as u64,
        AluOp::Divu => a / b,
        AluOp::Rems => (a as i64).wrapping_rem(b as i64) as u64,
        AluOp::Remu => a % b,
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32),
        AluOp::Shrs => ((a as i64).wrapping_shr(b as u32)) as u64,
        AluOp::Shru => a.wrapping_shr(b as u32),
    }
}

impl<'a> Vexec<'a> {
    /// Creates an engine over a base memory image and a configuration
    /// space, with the platform deciding hypercall semantics.
    pub fn new(mem: &'a Memory, space: &'a ConfigSpace, platform: Platform) -> Vexec<'a> {
        Vexec {
            mem,
            space,
            platform,
            opts: VexecOptions::default(),
            trace: None,
            decode_cache: HashMap::new(),
            stats: VexecStats::default(),
            live: 0,
        }
    }

    /// Replaces the tuning options.
    pub fn with_options(mut self, opts: VexecOptions) -> Vexec<'a> {
        self.opts = opts;
        self
    }

    /// Attaches a trace ring; split/join/leaf events land there.
    pub fn with_trace(mut self, ring: &'a mut TraceRing) -> Vexec<'a> {
        self.trace = Some(ring);
        self
    }

    /// Runs `entry(args...)` under every configuration at once,
    /// mirroring `Machine::call`: `args` land in `r0..`, a return
    /// sentinel is pushed, and the pass ends when every context has
    /// returned through it (or halted).
    pub fn run_call(
        &mut self,
        entry: u64,
        args: &[u64],
        regs0: &[u64; Reg::COUNT],
        if_flag: bool,
    ) -> Result<VexecReport, VexecError> {
        assert!(args.len() <= 6, "at most 6 register arguments");
        self.stats = VexecStats::default();
        self.live = 1;
        self.stats.max_live = 1;
        self.decode_cache.clear();
        let mut regs: [Val; Reg::COUNT] = std::array::from_fn(|i| Val::Concrete(regs0[i]));
        for (i, &a) in args.iter().enumerate() {
            regs[i] = Val::Concrete(a);
        }
        let mut ctx = Ctx {
            leaves: self.space.full_set(),
            regs,
            cmp: (Val::Concrete(0), Val::Concrete(0)),
            if_flag,
            pc: entry,
            depth: 0,
            overlay: BTreeMap::new(),
            out: Vec::new(),
            terminal: None,
        };
        if let Err(e) = self.push(&mut ctx, Val::Concrete(RET_SENTINEL)) {
            return Err(self.abort_to_error(e, &ctx));
        }
        let pool = self.run(ctx, i64::MIN)?;
        self.finalize(pool)
    }

    fn abort_to_error(&self, e: Abort, ctx: &Ctx) -> VexecError {
        match e {
            Abort::Fault(fault) => VexecError::Fault {
                fault,
                label: self.space.label(ctx.leaves.first().unwrap_or(0)),
            },
            Abort::Unsupported(what) => VexecError::Unsupported { pc: ctx.pc, what },
            Abort::Split(_) => VexecError::Incomplete { missing: 0 },
        }
    }

    /// Runs `ctx` until it terminates or its depth drops below
    /// `horizon` (the join point of the split that created it).
    /// Returns every terminal/suspended context that descends from it.
    fn run(&mut self, mut ctx: Ctx, horizon: i64) -> Result<Vec<Ctx>, VexecError> {
        let mut out: Vec<Ctx> = Vec::new();
        loop {
            if ctx.terminal.is_some() || ctx.depth < horizon {
                out.push(ctx);
                self.try_merge(&mut out);
                return Ok(out);
            }
            match self.step(&mut ctx)? {
                Step::Retired => {}
                Step::Terminal => {
                    out.push(ctx);
                    return Ok(out);
                }
                Step::Split(children) => {
                    let here = ctx.depth;
                    let mut pool: Vec<Ctx> = Vec::new();
                    for child in children {
                        pool.extend(self.run(child, here)?);
                    }
                    self.try_merge(&mut pool);
                    let mut live: Vec<Ctx> = Vec::new();
                    for c in pool {
                        if c.terminal.is_some() || c.depth < horizon {
                            out.push(c);
                        } else {
                            live.push(c);
                        }
                    }
                    if live.len() == 1 && out.is_empty() {
                        // Fully re-joined: continue sharing in this frame.
                        ctx = live.pop().expect("len checked");
                        continue;
                    }
                    for c in live {
                        out.extend(self.run(c, horizon)?);
                    }
                    self.try_merge(&mut out);
                    return Ok(out);
                }
            }
        }
    }

    /// One shared step: execute, or turn an [`Abort`] into a
    /// materializing split / pass error.
    fn step(&mut self, ctx: &mut Ctx) -> Result<Step, VexecError> {
        if self.stats.steps >= self.opts.fuel {
            return Err(VexecError::Fuel {
                steps: self.stats.steps,
            });
        }
        let weight = ctx.leaves.count() as u64;
        match self.exec(ctx) {
            Ok(step) => {
                // The instruction retired exactly once for every
                // configuration the context stands for (a splitting
                // branch still retired once, shared, in the parent).
                self.stats.steps += 1;
                self.stats.enum_equiv_insns += weight;
                Ok(step)
            }
            Err(Abort::Split(sw)) => Ok(self.materialize(ctx, sw)),
            Err(e) => Err(self.abort_to_error(e, ctx)),
        }
    }

    /// Splits `ctx` into one child per live value of `sw`, at the same
    /// pc — the aborted instruction re-executes with the switch
    /// concrete.
    fn materialize(&mut self, ctx: &Ctx, sw: usize) -> Step {
        let digits = self.space.live_digits(&ctx.leaves, sw);
        let children: Vec<Ctx> = digits
            .iter()
            .map(|&i| ctx.restricted(self.space, self.space.mask(sw, i).intersect(&ctx.leaves)))
            .collect();
        self.record_split(ctx.pc, sw, children.len());
        Step::Split(children)
    }

    fn record_split(&mut self, pc: u64, sw: usize, arms: usize) {
        self.stats.splits += 1;
        self.stats.contexts_spawned += arms as u64;
        self.live += arms as u64 - 1;
        self.stats.max_live = self.stats.max_live.max(self.live);
        let addr = self.space.switches()[sw].addr;
        if let Some(t) = self.trace.as_deref_mut() {
            t.record(EventKind::VexecSplit {
                pc,
                switch: addr,
                arms: arms as u32,
            });
        }
    }

    /// Pairwise sibling merging to a fixpoint.
    fn try_merge(&mut self, pool: &mut Vec<Ctx>) {
        loop {
            let mut merged = None;
            'scan: for i in 0..pool.len() {
                for j in i + 1..pool.len() {
                    if let Some((m, sw)) = self.merge_pair(&pool[i], &pool[j]) {
                        merged = Some((i, j, m, sw));
                        break 'scan;
                    }
                }
            }
            match merged {
                Some((i, j, m, sw)) => {
                    let pc = m.pc;
                    pool[i] = m;
                    pool.swap_remove(j);
                    self.stats.joins += 1;
                    self.live -= 1;
                    let addr = self.space.switches()[sw].addr;
                    if let Some(t) = self.trace.as_deref_mut() {
                        t.record(EventKind::VexecJoin {
                            pc,
                            switch: addr,
                            parties: 2,
                        });
                    }
                }
                None => return,
            }
        }
    }

    /// Tries to fold two contexts back into one. They must sit at the
    /// same pc/depth with the same control state, and their leaf sets
    /// must differ in exactly one switch whose table can absorb every
    /// diverging component.
    fn merge_pair(&self, a: &Ctx, b: &Ctx) -> Option<(Ctx, usize)> {
        if a.terminal.is_some() || b.terminal.is_some() {
            return None;
        }
        if a.pc != b.pc
            || a.depth != b.depth
            || a.if_flag != b.if_flag
            || a.out.len() != b.out.len()
        {
            return None;
        }
        for s in 0..self.space.switches().len() {
            if self.space.project_digit0(&a.leaves, s) != self.space.project_digit0(&b.leaves, s) {
                continue;
            }
            if let Some(m) = self.merge_over(a, b, s) {
                return Some((m, s));
            }
        }
        None
    }

    fn merge_over(&self, a: &Ctx, b: &Ctx, s: usize) -> Option<Ctx> {
        let da = self.space.live_digits(&a.leaves, s);
        let db = self.space.live_digits(&b.leaves, s);
        debug_assert!(da.iter().all(|d| !db.contains(d)), "sibling digits overlap");
        let mut regs: Vec<Val> = Vec::with_capacity(Reg::COUNT);
        for (ra, rb) in a.regs.iter().zip(&b.regs) {
            regs.push(merge_val(ra, rb, s, &da, &db)?);
        }
        let cmp = (
            merge_val(&a.cmp.0, &b.cmp.0, s, &da, &db)?,
            merge_val(&a.cmp.1, &b.cmp.1, s, &da, &db)?,
        );
        let mut out = Vec::with_capacity(a.out.len());
        for (x, y) in a.out.iter().zip(&b.out) {
            out.push(merge_val(x, y, s, &da, &db)?);
        }
        let mut overlay = BTreeMap::new();
        for addr in a.overlay.keys().chain(b.overlay.keys()) {
            if overlay.contains_key(addr) {
                continue;
            }
            // A byte one side never wrote still has a value there — the
            // symbolic-or-base read the other side would see.
            let va = match a.overlay.get(addr) {
                Some(v) => v.clone(),
                None => self.read_byte(a, *addr).ok()?,
            };
            let vb = match b.overlay.get(addr) {
                Some(v) => v.clone(),
                None => self.read_byte(b, *addr).ok()?,
            };
            overlay.insert(*addr, merge_val(&va, &vb, s, &da, &db)?);
        }
        Some(Ctx {
            leaves: a.leaves.union(&b.leaves),
            regs: regs.try_into().expect("register count"),
            cmp,
            if_flag: a.if_flag,
            pc: a.pc,
            depth: a.depth,
            overlay,
            out,
            terminal: None,
        })
    }

    /// Expands terminal contexts into per-leaf observations and checks
    /// the cross product is fully covered.
    fn finalize(&mut self, pool: Vec<Ctx>) -> Result<VexecReport, VexecError> {
        let n = self.space.leaf_count();
        let mut coverage = LeafSet::empty(n);
        let mut leaves: Vec<VexecLeaf> = Vec::with_capacity(n);
        for ctx in &pool {
            if ctx.terminal.is_none() {
                return Err(VexecError::Incomplete { missing: n });
            }
            let sp = self.space;
            for leaf in ctx.leaves.iter() {
                debug_assert!(!coverage.contains(leaf), "terminal contexts overlap");
                coverage.insert(leaf);
                let regs: [u64; Reg::COUNT] = std::array::from_fn(|i| ctx.regs[i].at(sp, leaf));
                let vl = VexecLeaf {
                    leaf,
                    assignment: sp.assignment(leaf),
                    exit: regs[0],
                    regs,
                    cmp: (ctx.cmp.0.at(sp, leaf), ctx.cmp.1.at(sp, leaf)),
                    if_flag: ctx.if_flag,
                    halted: ctx.terminal == Some(Terminal::Halt),
                    out: ctx.out.iter().map(|v| v.at(sp, leaf) as u8).collect(),
                    writes: ctx
                        .overlay
                        .iter()
                        .map(|(a, v)| (*a, v.at(sp, leaf) as u8))
                        .collect(),
                };
                if let Some(t) = self.trace.as_deref_mut() {
                    t.record(EventKind::VexecLeaf {
                        leaf: leaf as u64,
                        configs: ctx.leaves.count() as u64,
                        exit: vl.exit,
                    });
                }
                leaves.push(vl);
            }
        }
        let missing = n - coverage.count();
        if missing > 0 {
            return Err(VexecError::Incomplete { missing });
        }
        leaves.sort_by_key(|l| l.leaf);
        self.stats.leaf_count = n as u64;
        Ok(VexecReport {
            leaves,
            stats: self.stats,
        })
    }

    // ---- memory -----------------------------------------------------

    fn decode(&mut self, ctx: &Ctx, pc: u64) -> Result<Insn, Abort> {
        if ctx
            .overlay
            .range(pc..pc.saturating_add(16))
            .next()
            .is_some()
        {
            return Err(Abort::Unsupported("self-modifying code"));
        }
        if let Some(i) = self.decode_cache.get(&pc) {
            return Ok(*i);
        }
        let mut buf = [0u8; 16];
        let n = self
            .mem
            .fetch(pc, &mut buf)
            .map_err(Fault::from)
            .map_err(Abort::Fault)?;
        let (insn, _) = mvasm::decode(&buf[..n])
            .map_err(|err| Abort::Fault(Fault::Decode { addr: pc, err }))?;
        self.decode_cache.insert(pc, insn);
        Ok(insn)
    }

    /// One memory byte as the context sees it: its own overlay first,
    /// then the symbolic view of a switch cell, then the shared base.
    fn read_byte(&self, ctx: &Ctx, addr: u64) -> Result<Val, Abort> {
        if let Some(v) = ctx.overlay.get(&addr) {
            return Ok(v.clone());
        }
        for (s, sw) in self.space.switches().iter().enumerate() {
            if addr >= sw.addr && addr < sw.addr + sw.width as u64 {
                let shift = 8 * (addr - sw.addr) as u32;
                let vals = self
                    .space
                    .live_digits(&ctx.leaves, s)
                    .into_iter()
                    .map(|i| (i, (sw.values[i] as u64 >> shift) & 0xFF))
                    .collect();
                return Ok(Val::per_value(s, vals));
            }
        }
        self.mem
            .read_uint(addr, 1)
            .map(Val::Concrete)
            .map_err(Abort::from)
    }

    fn read_mem(&self, ctx: &Ctx, addr: u64, width: usize) -> Result<Val, Abort> {
        let mut acc = Val::Concrete(0);
        for j in 0..width {
            let b = self.read_byte(ctx, addr + j as u64)?;
            let shift = 8 * j as u32;
            acc = Val::zip(&acc, &b, |a, x| a | (x << shift))?;
        }
        Ok(acc)
    }

    fn write_mem(&self, ctx: &mut Ctx, addr: u64, val: Val, width: usize) -> Result<(), Abort> {
        let last = addr + width as u64 - 1;
        for probe in [addr, last] {
            match self.mem.prot_of(probe) {
                Some(p) if p.write => {}
                other => {
                    return Err(Abort::Fault(Fault::Mem(MemError {
                        addr: probe,
                        access: Access::Write,
                        mapped: other.is_some(),
                    })))
                }
            }
        }
        for j in 0..width {
            let shift = 8 * j as u32;
            ctx.overlay
                .insert(addr + j as u64, val.map(|v| (v >> shift) & 0xFF));
        }
        Ok(())
    }

    fn push(&self, ctx: &mut Ctx, v: Val) -> Result<(), Abort> {
        let sp = want_concrete(&ctx.regs[Reg::SP.index()])?.wrapping_sub(8);
        self.write_mem(ctx, sp, v, 8)?;
        ctx.regs[Reg::SP.index()] = Val::Concrete(sp);
        Ok(())
    }

    fn pop(&self, ctx: &mut Ctx) -> Result<Val, Abort> {
        let sp = want_concrete(&ctx.regs[Reg::SP.index()])?;
        let v = self.read_mem(ctx, sp, 8)?;
        ctx.regs[Reg::SP.index()] = Val::Concrete(sp.wrapping_add(8));
        Ok(v)
    }

    fn alu(&self, op: AluOp, a: &Val, b: &Val, at: u64) -> Result<Val, Abort> {
        if matches!(op, AluOp::Divs | AluOp::Divu | AluOp::Rems | AluOp::Remu) {
            match b {
                Val::Concrete(0) => return Err(Abort::Fault(Fault::DivByZero { addr: at })),
                Val::PerValue { sw, vals } if vals.iter().any(|&(_, v)| v == 0) => {
                    // Fault-divergent: some configurations divide by
                    // zero. Materialize; the zero-divisor child then
                    // faults concretely.
                    return Err(Abort::Split(*sw));
                }
                _ => {}
            }
        }
        Ok(Val::zip(a, b, |x, y| alu_f(op, x, y))?)
    }

    // ---- the interpreter --------------------------------------------

    /// Executes one instruction variationally. On [`Err`], `ctx` is
    /// untouched.
    fn exec(&mut self, ctx: &mut Ctx) -> Result<Step, Abort> {
        let pc = ctx.pc;
        let insn = self.decode(ctx, pc)?;
        if matches!(insn, Insn::Trap) {
            return Err(Abort::Fault(Fault::Trap { addr: pc }));
        }
        let next = pc + insn.len() as u64;
        let mut new_pc = next;
        match insn {
            Insn::MovRR { dst, src } => {
                let v = ctx.regs[src.index()].clone();
                ctx.regs[dst.index()] = v;
            }
            Insn::MovRI { dst, imm } => ctx.regs[dst.index()] = Val::Concrete(imm as u64),
            Insn::Lea { dst, addr } => ctx.regs[dst.index()] = Val::Concrete(addr),
            Insn::Load {
                dst,
                base,
                off,
                width,
                signed,
            } => {
                let a = ctx.regs[base.index()].map(|v| v.wrapping_add(off as i64 as u64));
                let a = want_concrete(&a)?;
                let raw = self.read_mem(ctx, a, width.bytes())?;
                ctx.regs[dst.index()] = raw.map(|r| extend(r, width.bytes(), signed) as u64);
            }
            Insn::Store {
                src,
                base,
                off,
                width,
            } => {
                let a = ctx.regs[base.index()].map(|v| v.wrapping_add(off as i64 as u64));
                let a = want_concrete(&a)?;
                let v = ctx.regs[src.index()].clone();
                self.write_mem(ctx, a, v, width.bytes())?;
            }
            Insn::LoadAbs {
                dst,
                addr,
                width,
                signed,
            } => {
                let raw = self.read_mem(ctx, addr, width.bytes())?;
                ctx.regs[dst.index()] = raw.map(|r| extend(r, width.bytes(), signed) as u64);
            }
            Insn::StoreAbs { src, addr, width } => {
                let v = ctx.regs[src.index()].clone();
                self.write_mem(ctx, addr, v, width.bytes())?;
            }
            Insn::AluRR { op, dst, src } => {
                let v = self.alu(op, &ctx.regs[dst.index()], &ctx.regs[src.index()], pc)?;
                ctx.regs[dst.index()] = v;
            }
            Insn::AluRI { op, dst, imm } => {
                let v = self.alu(op, &ctx.regs[dst.index()], &Val::Concrete(imm as u64), pc)?;
                ctx.regs[dst.index()] = v;
            }
            Insn::CmpRR { a, b } => {
                ctx.cmp = (ctx.regs[a.index()].clone(), ctx.regs[b.index()].clone());
            }
            Insn::CmpRI { a, imm } => {
                ctx.cmp = (ctx.regs[a.index()].clone(), Val::Concrete(imm as u64));
            }
            Insn::Setcc { cc, dst } => {
                let v = Val::zip(&ctx.cmp.0, &ctx.cmp.1, |a, b| cc.eval(a, b) as u64)?;
                ctx.regs[dst.index()] = v;
            }
            Insn::Jmp { rel } => new_pc = next.wrapping_add(rel as i64 as u64),
            Insn::Jcc { cc, rel } => {
                let t = Val::zip(&ctx.cmp.0, &ctx.cmp.1, |a, b| cc.eval(a, b) as u64)?;
                match t {
                    Val::Concrete(v) => {
                        if v == 1 {
                            new_pc = next.wrapping_add(rel as i64 as u64);
                        }
                    }
                    Val::PerValue { sw, vals } => {
                        let target = next.wrapping_add(rel as i64 as u64);
                        let children = self.branch_split(ctx, sw, &vals, target, next);
                        return Ok(Step::Split(children));
                    }
                }
            }
            Insn::CallRel { rel } => {
                self.push(ctx, Val::Concrete(next))?;
                ctx.depth += 1;
                new_pc = next.wrapping_add(rel as i64 as u64);
            }
            Insn::CallInd { target } => {
                let t = want_concrete(&ctx.regs[target.index()])?;
                self.push(ctx, Val::Concrete(next))?;
                ctx.depth += 1;
                new_pc = t;
            }
            Insn::CallMem { addr } => {
                let t = self.read_mem(ctx, addr, 8)?;
                let t = want_concrete(&t)?;
                self.push(ctx, Val::Concrete(next))?;
                ctx.depth += 1;
                new_pc = t;
            }
            Insn::Push { src } => {
                let v = ctx.regs[src.index()].clone();
                self.push(ctx, v)?;
            }
            Insn::Pop { dst } => {
                let v = self.pop(ctx)?;
                ctx.regs[dst.index()] = v;
            }
            Insn::Ret => {
                let sp = want_concrete(&ctx.regs[Reg::SP.index()])?;
                let t = self.read_mem(ctx, sp, 8)?;
                let t = want_concrete(&t)?;
                ctx.regs[Reg::SP.index()] = Val::Concrete(sp.wrapping_add(8));
                if t == RET_SENTINEL {
                    ctx.pc = RET_SENTINEL;
                    ctx.terminal = Some(Terminal::Ret);
                    return Ok(Step::Terminal);
                }
                ctx.depth -= 1;
                new_pc = t;
            }
            Insn::Halt => {
                ctx.terminal = Some(Terminal::Halt);
                return Ok(Step::Terminal);
            }
            Insn::Sti | Insn::Cli => ctx.if_flag = matches!(insn, Insn::Sti),
            Insn::Hypercall { nr } => {
                if self.platform == Platform::Native {
                    return Err(Abort::Fault(Fault::InvalidHypercall { addr: pc, nr }));
                }
                match nr {
                    HC_STI => ctx.if_flag = true,
                    HC_CLI => ctx.if_flag = false,
                    _ => return Err(Abort::Fault(Fault::InvalidHypercall { addr: pc, nr })),
                }
            }
            Insn::Rdtsc { .. } => {
                return Err(Abort::Unsupported(
                    "rdtsc (timing is configuration-dependent)",
                ))
            }
            Insn::Pause | Insn::Mfence | Insn::Nop { .. } => {}
            Insn::Out { src } => {
                let v = ctx.regs[src.index()].map(|x| x & 0xFF);
                ctx.out.push(v);
            }
            Insn::XchgLock { val, base } => {
                let a = want_concrete(&ctx.regs[base.index()])?;
                let old = self.read_mem(ctx, a, 8)?;
                let v = ctx.regs[val.index()].clone();
                self.write_mem(ctx, a, v, 8)?;
                ctx.regs[val.index()] = old;
            }
            Insn::Trap => unreachable!("trap aborts before dispatch"),
        }
        ctx.pc = new_pc;
        Ok(Step::Retired)
    }

    /// Splits a context at a configuration-dependent branch: the branch
    /// retires once, shared; the children continue at the taken /
    /// fall-through pcs with their leaf subsets.
    fn branch_split(
        &mut self,
        ctx: &Ctx,
        sw: usize,
        outcomes: &[(usize, u64)],
        taken_pc: u64,
        fall_pc: u64,
    ) -> Vec<Ctx> {
        let n = self.space.leaf_count();
        let mut taken = LeafSet::empty(n);
        let mut fall = LeafSet::empty(n);
        for &(idx, v) in outcomes {
            let m = self.space.mask(sw, idx);
            if v == 1 {
                taken = taken.union(m);
            } else {
                fall = fall.union(m);
            }
        }
        let mut children = Vec::new();
        for (set, pc) in [(taken, taken_pc), (fall, fall_pc)] {
            let set = set.intersect(&ctx.leaves);
            if set.is_empty() {
                continue;
            }
            let mut c = ctx.restricted(self.space, set);
            c.pc = pc;
            children.push(c);
        }
        self.record_split(ctx.pc, sw, children.len());
        children
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SwitchDomain;
    use mvasm::{encode_into, Cond, Width};
    use mvobj::Prot;

    const CODE: u64 = 0x1000;
    const SWITCH: u64 = 0x2000;
    const SCRATCH: u64 = 0x3000;
    const STACK_TOP: u64 = mvvm::machine::STACK_TOP;

    fn setup(code: &[Insn], domains: Vec<SwitchDomain>) -> (Memory, ConfigSpace) {
        let mut mem = Memory::new();
        let mut bytes = Vec::new();
        for i in code {
            encode_into(i, &mut bytes);
        }
        mem.map(CODE, bytes.len().max(1) as u64, Prot::RX);
        mem.write_unchecked(CODE, &bytes);
        mem.map(SWITCH, 4096, Prot::RW);
        mem.map(STACK_TOP - 0x10000, 0x10000, Prot::RW);
        let space = ConfigSpace::new(domains).unwrap();
        (mem, space)
    }

    fn domain(values: &[i64]) -> SwitchDomain {
        SwitchDomain {
            name: "sw".into(),
            addr: SWITCH,
            width: 4,
            signed: true,
            values: values.to_vec(),
        }
    }

    fn regs0() -> [u64; Reg::COUNT] {
        let mut r = [0u64; Reg::COUNT];
        r[Reg::SP.index()] = STACK_TOP;
        r
    }

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn straight_line_never_splits() {
        // r0 = sw * 10; no branch: one shared pass covers all leaves.
        let code = [
            Insn::LoadAbs {
                dst: r(1),
                addr: SWITCH,
                width: Width::W32,
                signed: true,
            },
            Insn::AluRI {
                op: AluOp::Mul,
                dst: r(1),
                imm: 10,
            },
            Insn::MovRR {
                dst: r(0),
                src: r(1),
            },
            Insn::Ret,
        ];
        let (mem, space) = setup(&code, vec![domain(&[1, 2, 3])]);
        let mut vx = Vexec::new(&mem, &space, Platform::Native);
        let rep = vx.run_call(CODE, &[], &regs0(), true).unwrap();
        assert_eq!(rep.leaves.len(), 3);
        for (leaf, want) in [(0u64, 10u64), (1, 20), (2, 30)] {
            assert_eq!(rep.leaves[leaf as usize].exit, want);
        }
        assert_eq!(rep.stats.splits, 0);
        assert!((rep.stats.shared_prefix_ratio() - 3.0).abs() < 1e-9);
    }

    /// `f` branches on the switch; lengths: LoadAbs 11, CmpRI 10, Jcc 6,
    /// MovRI 10, Ret 1.
    fn branchy_fn(at: u64) -> Vec<Insn> {
        let _ = at;
        vec![
            Insn::LoadAbs {
                dst: r(1),
                addr: SWITCH,
                width: Width::W32,
                signed: true,
            },
            Insn::CmpRI { a: r(1), imm: 0 },
            // taken → skip MovRI+Ret (11 bytes)
            Insn::Jcc {
                cc: Cond::Eq,
                rel: 11,
            },
            Insn::MovRI { dst: r(0), imm: 9 },
            Insn::Ret,
            Insn::MovRI { dst: r(0), imm: 5 },
            Insn::Ret,
        ]
    }

    #[test]
    fn branch_splits_and_covers_all_leaves() {
        let (mem, space) = setup(&branchy_fn(CODE), vec![domain(&[0, 1, 2])]);
        let mut vx = Vexec::new(&mem, &space, Platform::Native);
        let rep = vx.run_call(CODE, &[], &regs0(), true).unwrap();
        assert_eq!(rep.leaves.len(), 3);
        assert_eq!(rep.leaves[0].exit, 5); // sw=0 takes the branch
        assert_eq!(rep.leaves[1].exit, 9);
        assert_eq!(rep.leaves[2].exit, 9);
        assert_eq!(rep.stats.splits, 1);
        // Top-frame split: arms return straight through the sentinel,
        // so there is nothing to join.
        assert_eq!(rep.stats.joins, 0);
    }

    #[test]
    fn callee_split_rejoins_at_return() {
        // main: call f; call f; ret — the split inside f merges back at
        // each return, so the second call shares the prefix again.
        let f_at = CODE + 0x40;
        let mut main = vec![
            Insn::CallRel {
                rel: (f_at - (CODE + 5)) as i32,
            },
            Insn::CallRel {
                rel: (f_at - (CODE + 10)) as i32,
            },
            Insn::Ret,
        ];
        // Pad to f's address.
        let main_len: usize = main.iter().map(|i| i.len()).sum();
        for _ in 0..(f_at - CODE) as usize - main_len {
            main.push(Insn::Nop { len: 1 });
        }
        main.extend(branchy_fn(f_at));
        let (mem, space) = setup(&main, vec![domain(&[0, 1])]);
        let mut vx = Vexec::new(&mem, &space, Platform::Native);
        let rep = vx.run_call(CODE, &[], &regs0(), true).unwrap();
        assert_eq!(rep.leaves.len(), 2);
        assert_eq!(rep.leaves[0].exit, 5);
        assert_eq!(rep.leaves[1].exit, 9);
        assert_eq!(rep.stats.splits, 2, "one split per call");
        assert_eq!(rep.stats.joins, 2, "one join per return");
        assert_eq!(rep.stats.max_live, 2);
    }

    #[test]
    fn store_load_roundtrip_keeps_variational_value() {
        // mem[SCRATCH] = sw; r0 = mem[SCRATCH] + 100.
        let code = [
            Insn::LoadAbs {
                dst: r(1),
                addr: SWITCH,
                width: Width::W32,
                signed: true,
            },
            Insn::StoreAbs {
                src: r(1),
                addr: SCRATCH,
                width: Width::W64,
            },
            Insn::LoadAbs {
                dst: r(0),
                addr: SCRATCH,
                width: Width::W64,
                signed: false,
            },
            Insn::AluRI {
                op: AluOp::Add,
                dst: r(0),
                imm: 100,
            },
            Insn::Ret,
        ];
        let (mut mem, space) = setup(&code, vec![domain(&[3, 7])]);
        mem.map(SCRATCH, 4096, Prot::RW);
        let mut vx = Vexec::new(&mem, &space, Platform::Native);
        let rep = vx.run_call(CODE, &[], &regs0(), true).unwrap();
        assert_eq!(rep.stats.splits, 0, "per-value stores do not split");
        assert_eq!(rep.leaves[0].exit, 103);
        assert_eq!(rep.leaves[1].exit, 107);
        // The write shows up in the per-leaf observation.
        assert!(rep.leaves[0].writes.contains(&(SCRATCH, 3)));
        assert!(rep.leaves[1].writes.contains(&(SCRATCH, 7)));
    }

    #[test]
    fn out_stream_is_per_configuration() {
        let code = [
            Insn::LoadAbs {
                dst: r(1),
                addr: SWITCH,
                width: Width::W32,
                signed: true,
            },
            Insn::Out { src: r(1) },
            Insn::Ret,
        ];
        let (mem, space) = setup(&code, vec![domain(&[65, 66])]);
        let mut vx = Vexec::new(&mem, &space, Platform::Native);
        let rep = vx.run_call(CODE, &[], &regs0(), true).unwrap();
        assert_eq!(rep.leaves[0].out, vec![65]);
        assert_eq!(rep.leaves[1].out, vec![66]);
        assert_eq!(rep.stats.splits, 0);
    }

    #[test]
    fn config_dependent_div_by_zero_faults_with_label() {
        let code = [
            Insn::MovRI { dst: r(0), imm: 10 },
            Insn::LoadAbs {
                dst: r(1),
                addr: SWITCH,
                width: Width::W32,
                signed: true,
            },
            Insn::AluRR {
                op: AluOp::Divu,
                dst: r(0),
                src: r(1),
            },
            Insn::Ret,
        ];
        let (mem, space) = setup(&code, vec![domain(&[0, 2])]);
        let mut vx = Vexec::new(&mem, &space, Platform::Native);
        let err = vx.run_call(CODE, &[], &regs0(), true).unwrap_err();
        match err {
            VexecError::Fault { fault, label } => {
                assert!(matches!(fault, Fault::DivByZero { .. }));
                assert_eq!(label, "sw=0");
            }
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn rdtsc_is_refused() {
        let code = [Insn::Rdtsc { dst: r(0) }, Insn::Ret];
        let (mem, space) = setup(&code, vec![domain(&[0, 1])]);
        let mut vx = Vexec::new(&mem, &space, Platform::Native);
        let err = vx.run_call(CODE, &[], &regs0(), true).unwrap_err();
        assert!(matches!(err, VexecError::Unsupported { .. }));
    }

    #[test]
    fn events_are_emitted() {
        let (mem, space) = setup(&branchy_fn(CODE), vec![domain(&[0, 1])]);
        let mut ring = TraceRing::new(64);
        let mut vx = Vexec::new(&mem, &space, Platform::Native).with_trace(&mut ring);
        vx.run_call(CODE, &[], &regs0(), true).unwrap();
        let names: Vec<&str> = ring.events().map(|e| e.kind.name()).collect();
        assert!(names.contains(&"vexec_split"));
        assert!(names.contains(&"vexec_leaf"));
    }
}
