//! Commit-storm: flips arriving faster than commits can land — the
//! control-plane workload behind `BENCH_commit_storm.json`.
//!
//! N worker vCPUs run a loop calling three multiversed functions, each
//! guarded by its own switch, while the host submits a randomized storm
//! of flip requests for those switches. Two drivers are compared:
//!
//! * [`run_storm`] — requests go through the [`CommitDaemon`] control
//!   plane, where a burst of flips for the same switch coalesces into
//!   one queued commit (last writer wins);
//! * [`naive_serial`] — the baseline every system starts with: one
//!   quiesced commit per request, submitted synchronously.
//!
//! The figure of merit is request throughput per guest cycle spent in
//! the control plane. On a coalescible stream the daemon does
//! `switches` commits per burst where the baseline does `burst`, so the
//! speedup is roughly `burst / switches` — the PR's acceptance gate
//! demands ≥ 10×.
//!
//! Correctness oracle: every worker's return value equals its iteration
//! count, no matter how many text rewrites happened mid-flight.

use multiverse::mvrt::{CommitDaemon, CommitStrategy, Lane, MvdConfig, MvdOp, MvdStats, QuiesceOp};
use multiverse::{BuildError, Program, SmpWorld};

/// Three independently-switched functions plus a worker loop that calls
/// all of them every iteration. The worker's return value is its own
/// loop count — exact regardless of racy `sink` writes.
pub const SRC: &str = r#"
    multiverse bool opt_a;
    multiverse bool opt_b;
    multiverse bool opt_c;
    i64 sink;

    multiverse i64 fa(void) {
        if (opt_a) { return 1; }
        return 2;
    }

    multiverse i64 fb(void) {
        if (opt_b) { return 4; }
        return 8;
    }

    multiverse i64 fc(void) {
        if (opt_c) { return 16; }
        return 32;
    }

    i64 worker(i64 iters) {
        i64 i = 0;
        while (i < iters) {
            sink = fa() + fb() + fc();
            i = i + 1;
        }
        return i;
    }

    i64 main(void) { return worker(4); }
"#;

/// The storm's switch names, in submission-stream order.
pub const SWITCHES: [&str; 3] = ["opt_a", "opt_b", "opt_c"];

/// Round budget for draining the workers after the storm.
const MAX_ROUNDS: u64 = 10_000_000;

/// Scheduler rounds stepped between bursts so flips land mid-flight.
const ROUNDS_PER_BURST: u64 = 4;

/// Compiles the storm kernel with multiverse enabled.
pub fn build() -> Result<Program, BuildError> {
    Program::build(&[("commit_storm.c", SRC)])
}

/// Boots `vcpus` workers (spawned, not yet run) for `iters` iterations.
pub fn boot(vcpus: usize, iters: u64, seed: u64) -> Result<SmpWorld, BuildError> {
    let p = build()?;
    let mut w = p.boot_smp(vcpus);
    w.smp.set_seed(seed);
    w.spawn_all("worker", &[iters])?;
    Ok(w)
}

/// Outcome of one storm run (daemon-driven or naive-serial).
#[derive(Clone, Debug)]
pub struct StormReport {
    /// Worker vCPUs.
    pub vcpus: usize,
    /// Flip requests submitted.
    pub requests: u64,
    /// Quiesced commits actually run.
    pub commits: u64,
    /// Guest cycles spent inside control-plane processing (commit
    /// windows only — worker progress between bursts is excluded so
    /// both drivers are charged identically).
    pub commit_cycles: u64,
    /// Per-commit guest-cycle latencies, in commit order.
    pub latencies: Vec<u64>,
    /// `true` iff every worker returned exactly its iteration count.
    pub workers_exact: bool,
    /// Daemon counters (zeroed for the naive baseline).
    pub stats: MvdStats,
}

impl StormReport {
    /// Requests landed per 1000 guest cycles of control-plane work.
    pub fn requests_per_kcycle(&self) -> f64 {
        self.requests as f64 * 1000.0 / (self.commit_cycles.max(1)) as f64
    }
}

/// Cycle-throughput ratio of the daemon run over the naive baseline.
/// Meaningful under [`CommitStrategy::StopMachine`], whose rendezvous
/// charges real guest cycles; a breakpoint window over workers outside
/// the patched regions costs ~0 cycles, so compare
/// [`commit_ratio`] there instead.
pub fn speedup(daemon: &StormReport, naive: &StormReport) -> f64 {
    daemon.requests_per_kcycle() / naive.requests_per_kcycle()
}

/// Commits the baseline ran per commit the daemon ran — the coalescing
/// factor, strategy-independent.
pub fn commit_ratio(daemon: &StormReport, naive: &StormReport) -> f64 {
    naive.commits as f64 / daemon.commits.max(1) as f64
}

/// The deterministic request stream: xorshift64 over `seed`, yielding
/// (switch index, value) pairs. Both drivers replay the same stream.
fn stream(seed: u64, requests: u64) -> Vec<(usize, i64)> {
    let mut x = seed | 1;
    let mut out = Vec::with_capacity(requests as usize);
    for _ in 0..requests {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.push((((x >> 8) as usize) % SWITCHES.len(), ((x >> 32) & 1) as i64));
    }
    out
}

/// Runs the storm through the commit daemon: submit a burst, let the
/// workers advance, drain the queue, repeat.
pub fn run_storm(
    vcpus: usize,
    iters: u64,
    requests: u64,
    burst: u64,
    strategy: CommitStrategy,
    seed: u64,
) -> Result<StormReport, BuildError> {
    let mut w = boot(vcpus, iters, seed)?;
    let addrs: Vec<u64> = SWITCHES
        .iter()
        .map(|s| w.sym(s))
        .collect::<Result<_, _>>()?;
    let mut daemon = CommitDaemon::new(MvdConfig {
        capacity: (2 * burst as usize).max(8),
        strategy,
        ..MvdConfig::default()
    });

    let mut commit_cycles = 0u64;
    let mut latencies = Vec::new();
    for chunk in stream(seed, requests).chunks(burst.max(1) as usize) {
        for &(si, value) in chunk {
            let rt = w.rt.as_mut().expect("multiverse build has a runtime");
            daemon.submit(
                rt,
                MvdOp::Flip {
                    switch: addrs[si],
                    value,
                },
                Lane::Normal,
            );
        }
        for _ in 0..ROUNDS_PER_BURST {
            if w.smp.any_live() {
                w.smp.step_round();
            }
        }
        loop {
            let before = daemon.stats().committed;
            let t0 = w.smp.max_cycles();
            let rt = w.rt.as_mut().expect("runtime");
            if !daemon.step(rt, &mut w.smp) {
                break;
            }
            let dt = w.smp.max_cycles() - t0;
            commit_cycles += dt;
            if daemon.stats().committed > before {
                latencies.push(dt);
            }
        }
    }

    let rets = w.run(MAX_ROUNDS)?;
    let stats = daemon.stats();
    Ok(StormReport {
        vcpus,
        requests,
        commits: stats.committed,
        commit_cycles,
        latencies,
        workers_exact: rets.iter().all(|&r| r == iters),
        stats,
    })
}

/// The baseline: the identical stream, one synchronous quiesced commit
/// per request, with the same worker interleave between bursts.
pub fn naive_serial(
    vcpus: usize,
    iters: u64,
    requests: u64,
    burst: u64,
    strategy: CommitStrategy,
    seed: u64,
) -> Result<StormReport, BuildError> {
    let mut w = boot(vcpus, iters, seed)?;
    let addrs: Vec<u64> = SWITCHES
        .iter()
        .map(|s| w.sym(s))
        .collect::<Result<_, _>>()?;

    let mut commit_cycles = 0u64;
    let mut latencies = Vec::new();
    let mut commits = 0u64;
    for chunk in stream(seed, requests).chunks(burst.max(1) as usize) {
        for _ in 0..ROUNDS_PER_BURST {
            if w.smp.any_live() {
                w.smp.step_round();
            }
        }
        for &(si, value) in chunk {
            let t0 = w.smp.max_cycles();
            let rt = w.rt.as_mut().expect("runtime");
            rt.write_switch(&mut w.smp.machine, addrs[si], value)?;
            rt.run_quiesced(&mut w.smp, QuiesceOp::CommitRefs(addrs[si]), strategy)?;
            let dt = w.smp.max_cycles() - t0;
            commit_cycles += dt;
            latencies.push(dt);
            commits += 1;
        }
    }

    let rets = w.run(MAX_ROUNDS)?;
    Ok(StormReport {
        vcpus,
        requests,
        commits,
        commit_cycles,
        latencies,
        workers_exact: rets.iter().all(|&r| r == iters),
        stats: MvdStats::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_covers_every_switch() {
        let a = stream(0xBEEF, 64);
        assert_eq!(a, stream(0xBEEF, 64));
        for si in 0..SWITCHES.len() {
            assert!(a.iter().any(|&(s, _)| s == si), "switch {si} never hit");
        }
        assert_ne!(a, stream(0xBEE5, 64), "seed changes the stream");
    }

    #[test]
    fn storm_coalesces_and_keeps_workers_exact() {
        let r = run_storm(4, 4000, 48, 24, CommitStrategy::StopMachine, 7).unwrap();
        assert!(r.workers_exact, "a worker lost iterations");
        assert!(
            r.commits < r.requests / 2,
            "coalescing collapsed {} requests into {} commits",
            r.requests,
            r.commits
        );
        assert_eq!(r.stats.submitted, r.requests);
        assert_eq!(r.stats.admitted + r.stats.coalesced, r.requests);
    }

    #[test]
    fn naive_baseline_commits_once_per_request() {
        let r = naive_serial(2, 2000, 12, 6, CommitStrategy::StopMachine, 7).unwrap();
        assert_eq!(r.commits, r.requests);
        assert!(r.workers_exact);
        assert_eq!(r.latencies.len() as u64, r.requests);
    }

    #[test]
    fn daemon_beats_naive_by_an_order_of_magnitude() {
        let daemon = run_storm(4, 6000, 96, 48, CommitStrategy::StopMachine, 42).unwrap();
        let naive = naive_serial(4, 6000, 96, 48, CommitStrategy::StopMachine, 42).unwrap();
        let s = speedup(&daemon, &naive);
        assert!(
            s >= 10.0,
            "coalescing speedup {s:.1}× below the 10× gate \
             ({} vs {} commits)",
            daemon.commits,
            naive.commits
        );
        assert!(commit_ratio(&daemon, &naive) >= 10.0);
    }

    #[test]
    fn breakpoint_storm_coalesces_just_as_hard() {
        let daemon = run_storm(4, 6000, 96, 48, CommitStrategy::Breakpoint, 42).unwrap();
        let naive = naive_serial(4, 6000, 96, 48, CommitStrategy::Breakpoint, 42).unwrap();
        assert!(daemon.workers_exact && naive.workers_exact);
        assert!(commit_ratio(&daemon, &naive) >= 10.0);
    }
}
