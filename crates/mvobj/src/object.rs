//! Relocatable object files — one per translation unit.

use crate::reloc::{Reloc, RelocKind};
use crate::section::{Section, SectionKind};
use crate::symbol::{SymKind, Symbol};

/// A relocatable object file, as produced by the `mvc` compiler for one
/// translation unit.
#[derive(Clone, Debug, Default)]
pub struct Object {
    /// Translation-unit name (for diagnostics).
    pub name: String,
    /// Sections in definition order.
    pub sections: Vec<Section>,
    /// Defined symbols.
    pub symbols: Vec<Symbol>,
    /// Relocations against local or external symbols.
    pub relocs: Vec<Reloc>,
}

impl Object {
    /// Creates an empty object named after its translation unit.
    pub fn new(name: &str) -> Object {
        Object {
            name: name.to_string(),
            ..Object::default()
        }
    }

    /// Returns the section with `name`, if present.
    pub fn section(&self, name: &str) -> Option<&Section> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Returns a mutable reference to the section with `name`, creating it
    /// with the given kind if absent.
    pub fn section_mut(&mut self, name: &str, kind: SectionKind) -> &mut Section {
        if let Some(i) = self.sections.iter().position(|s| s.name == name) {
            &mut self.sections[i]
        } else {
            self.sections
                .push(Section::with_bytes(name, kind, Vec::new()));
            self.sections.last_mut().expect("just pushed")
        }
    }

    /// Appends `bytes` to the section, creating it if needed, and returns
    /// the offset the bytes were placed at.
    pub fn append(&mut self, section: &str, kind: SectionKind, bytes: &[u8]) -> u64 {
        let s = self.section_mut(section, kind);
        let off = s.bytes.len() as u64;
        s.bytes.extend_from_slice(bytes);
        s.size = s.bytes.len() as u64;
        off
    }

    /// Defines a symbol.
    pub fn define(&mut self, sym: Symbol) {
        self.symbols.push(sym);
    }

    /// Adds a relocation.
    pub fn relocate(&mut self, reloc: Reloc) {
        self.relocs.push(reloc);
    }

    /// Convenience: appends a NUL-terminated string to `.rodata` and
    /// returns a unique local symbol naming it.
    pub fn intern_string(&mut self, s: &str) -> String {
        let sym_name = format!("{}.str.{}", self.name, self.symbols.len());
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        let off = self.append(crate::SEC_RODATA, SectionKind::Rodata, &bytes);
        self.define(Symbol::object(&sym_name, crate::SEC_RODATA, off, bytes.len() as u64).local());
        sym_name
    }

    /// Convenience: reserves `size` zeroed bytes in `.bss` under a global
    /// symbol.
    pub fn define_bss(&mut self, name: &str, size: u64) {
        let s = self.section_mut(crate::SEC_BSS, SectionKind::Bss);
        // Keep 8-byte alignment for every object so mixed-width globals
        // never straddle unaligned addresses.
        let aligned = s.size.next_multiple_of(8);
        s.size = aligned + size;
        self.symbols
            .push(Symbol::object(name, crate::SEC_BSS, aligned, size));
    }

    /// Convenience: places initialized data in `.data` under a global
    /// symbol and returns its offset.
    pub fn define_data(&mut self, name: &str, bytes: &[u8]) -> u64 {
        let s = self.section_mut(crate::SEC_DATA, SectionKind::Data);
        while !s.bytes.len().is_multiple_of(8) {
            s.bytes.push(0);
        }
        let off = s.bytes.len() as u64;
        s.bytes.extend_from_slice(bytes);
        s.size = s.bytes.len() as u64;
        self.symbols.push(Symbol::object(
            name,
            crate::SEC_DATA,
            off,
            bytes.len() as u64,
        ));
        off
    }

    /// Convenience: places a 64-bit pointer in `.data` that is relocated to
    /// the address of `target` (used for function-pointer initializers such
    /// as the PV-Ops table).
    pub fn define_data_ptr(&mut self, name: &str, target: &str) {
        let off = self.define_data(name, &0u64.to_le_bytes());
        self.relocs.push(Reloc {
            section: crate::SEC_DATA.to_string(),
            offset: off,
            kind: RelocKind::Abs64,
            symbol: target.to_string(),
            addend: 0,
        });
    }

    /// All symbols of the given kind.
    pub fn symbols_of(&self, kind: SymKind) -> impl Iterator<Item = &Symbol> {
        self.symbols.iter().filter(move |s| s.kind == kind)
    }

    /// A stable 64-bit content fingerprint (FNV-1a) of the whole object:
    /// unit name, every section's kind, size and bytes, and every symbol
    /// and relocation, in emission order.
    ///
    /// Emission order is part of the fingerprint on purpose: the
    /// compiler's parallel pipeline must produce *identical* objects for
    /// any `-j`, so the differential tests compare fingerprints (and the
    /// full structures) rather than some order-insensitive digest that
    /// could mask a scheduling-dependent reordering.
    pub fn fingerprint(&self) -> u64 {
        fn feed(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            // Separator so field boundaries cannot alias.
            h ^= 0xff;
            h.wrapping_mul(0x0000_0100_0000_01b3)
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = feed(h, self.name.as_bytes());
        for s in &self.sections {
            h = feed(h, s.name.as_bytes());
            h = feed(h, format!("{:?}:{}", s.kind, s.size).as_bytes());
            h = feed(h, &s.bytes);
        }
        for s in &self.symbols {
            h = feed(h, format!("{s:?}").as_bytes());
        }
        for r in &self.relocs {
            h = feed(h, format!("{r:?}").as_bytes());
        }
        h
    }

    /// Appends assembled code to `.text` under a global function symbol,
    /// converting the assembler's fixups into relocations.
    ///
    /// Returns the function's offset within this object's `.text` chunk.
    /// The blob's recorded call-site offsets can be turned into
    /// `multiverse.callsites` descriptors by the caller.
    pub fn add_code(&mut self, name: &str, blob: &mvasm::asm::CodeBlob) -> u64 {
        let off = self.append(crate::SEC_TEXT, SectionKind::Text, &blob.bytes);
        self.define(Symbol::func(
            name,
            crate::SEC_TEXT,
            off,
            blob.bytes.len() as u64,
        ));
        for f in &blob.fixups {
            let kind = match f.kind {
                mvasm::FixupKind::Rel32 { next_insn } => RelocKind::Rel32 {
                    next_insn: off + next_insn as u64,
                },
                mvasm::FixupKind::Abs64 => RelocKind::Abs64,
            };
            self.relocs.push(Reloc {
                section: crate::SEC_TEXT.to_string(),
                offset: off + f.offset as u64,
                kind,
                symbol: f.symbol.clone(),
                addend: f.addend,
            });
        }
        off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_creates_and_extends() {
        let mut o = Object::new("tu0");
        let a = o.append(".text", SectionKind::Text, &[1, 2, 3]);
        let b = o.append(".text", SectionKind::Text, &[4]);
        assert_eq!((a, b), (0, 3));
        assert_eq!(o.section(".text").unwrap().bytes, vec![1, 2, 3, 4]);
    }

    #[test]
    fn bss_keeps_eight_byte_alignment() {
        let mut o = Object::new("tu0");
        o.define_bss("a", 1);
        o.define_bss("b", 8);
        let syms: Vec<_> = o.symbols.iter().map(|s| s.offset).collect();
        assert_eq!(syms, vec![0, 8]);
        assert_eq!(o.section(".bss").unwrap().mem_size(), 16);
    }

    #[test]
    fn intern_string_is_nul_terminated() {
        let mut o = Object::new("tu0");
        let sym = o.intern_string("hi");
        let sec = o.section(crate::SEC_RODATA).unwrap();
        assert_eq!(sec.bytes, b"hi\0");
        assert!(o.symbols.iter().any(|s| s.name == sym && !s.global));
    }

    #[test]
    fn fingerprint_tracks_content_and_order() {
        let build = |tag: &str| {
            let mut o = Object::new("tu0");
            o.append(".text", SectionKind::Text, tag.as_bytes());
            o.define_bss("g", 8);
            o.intern_string("name");
            o
        };
        assert_eq!(build("aa").fingerprint(), build("aa").fingerprint());
        assert_ne!(build("aa").fingerprint(), build("ab").fingerprint());
        // Symbol order matters: a reordered but equal-content object is
        // a different (non-deterministic) emission and must not compare
        // equal.
        let mut reordered = build("aa");
        reordered.symbols.swap(0, 1);
        assert_ne!(build("aa").fingerprint(), reordered.fingerprint());
    }

    #[test]
    fn data_ptr_emits_reloc() {
        let mut o = Object::new("tu0");
        o.define_data_ptr("pv_cli", "native_cli");
        assert_eq!(o.relocs.len(), 1);
        assert_eq!(o.relocs[0].symbol, "native_cli");
        assert!(matches!(o.relocs[0].kind, RelocKind::Abs64));
    }
}
