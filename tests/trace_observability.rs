//! End-to-end observability: the runtime's event stream reconstructs
//! real transactions — including the failure paths the journal and
//! retry machinery produce — and the exporters emit well-formed output.

use multiverse::mvrt::RetryPolicy;
use multiverse::mvtrace::{build_spans, ChromeSink, EventKind, JsonlSink, Phase, TraceSink};
use multiverse::mvvm::{FaultOp, FaultPlan};
use multiverse::Program;

const SRC: &str = r#"
    multiverse bool feature;
    multiverse i64 work(void) {
        if (feature) { return 10; }
        return 20;
    }
    i64 caller(void) { return work(); }
    i64 main(void) { return caller(); }
"#;

#[test]
fn faulted_then_retried_commit_leaves_a_full_span_tree() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    {
        let rt = w.rt.as_mut().unwrap();
        rt.enable_tracing(4096);
        rt.retry = RetryPolicy::retries(2);
    }
    // One-shot fault on the first mprotect: attempt 1 fails in apply,
    // rolls back, and the bounded retry drives attempt 2 to success.
    w.machine.inject_fault(FaultPlan::new(FaultOp::Mprotect, 1));
    w.commit().expect("retry heals the one-shot fault");
    assert_eq!(w.call("work", &[]).unwrap(), 10);

    let events = w.rt.as_mut().unwrap().take_trace();
    let forest = build_spans(&events);
    assert_eq!(forest.orphaned, 0);
    assert_eq!(forest.commits.len(), 1);

    let c = &forest.commits[0];
    assert_eq!(c.op, "commit");
    assert!(c.ok, "the transaction succeeded overall");
    assert_eq!(c.attempts.len(), 2, "one failed attempt, one clean");

    // Attempt 1: apply failed, the fault and the rollback are recorded
    // inside that phase, and the attempt is marked as retried.
    let a1 = &c.attempts[0];
    assert_eq!(a1.retry, Some(1));
    assert!(!a1.ok());
    let apply1 = a1.phase(Phase::Apply).expect("apply ran");
    assert!(!apply1.ok);
    let kinds: Vec<&str> = apply1.events.iter().map(|e| e.kind.name()).collect();
    assert!(kinds.contains(&"fault_observed"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"rollback"), "kinds: {kinds:?}");

    // Attempt 2: all three phases ran and succeeded, and the apply phase
    // records actual patch work.
    let a2 = &c.attempts[1];
    assert_eq!(a2.retry, None);
    assert!(a2.ok());
    assert_eq!(a2.phases.len(), 3);
    let apply2 = a2.phase(Phase::Apply).unwrap();
    assert!(apply2.ok);
    assert!(
        apply2
            .events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SitePatched { .. })),
        "the retried apply patched the recorded call site"
    );

    // Every phase duration is contained in the commit's total.
    for phase in [Phase::Plan, Phase::Validate, Phase::Apply] {
        for d in c.phase_durations_ns(phase) {
            assert!(d <= c.duration_ns(), "{phase} fits in the total");
        }
    }
}

#[test]
fn sequence_numbers_stay_monotonic_across_interleaved_transactions() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    // A deliberately tiny ring: interleaved commit+revert rounds emit
    // far more events than 16, so drop-oldest truncation is exercised.
    w.rt.as_mut().unwrap().enable_tracing(16);
    for _ in 0..5 {
        w.commit().unwrap();
        w.revert().unwrap();
    }
    let rt = w.rt.as_ref().unwrap();
    let events = rt.trace_snapshot();
    assert_eq!(events.len(), 16, "ring is full and bounded");
    assert!(
        rt.tracer.as_ref().unwrap().dropped() > 0,
        "oldest were dropped"
    );
    for pair in events.windows(2) {
        assert!(
            pair[0].seq < pair[1].seq,
            "seq strictly increases: {} !< {}",
            pair[0].seq,
            pair[1].seq
        );
        assert!(pair[0].ts_ns <= pair[1].ts_ns, "time never goes backwards");
    }
    // The truncated stream still reconstructs: whatever opens mid-commit
    // is counted as orphaned rather than misattributed.
    let forest = build_spans(&events);
    assert!(forest.commits.len() + usize::from(forest.orphaned > 0) > 0);
}

#[test]
fn chrome_export_is_structurally_balanced() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    w.rt.as_mut().unwrap().enable_tracing(4096);
    w.commit().unwrap();
    w.revert().unwrap();
    let events = w.rt.as_mut().unwrap().take_trace();

    let chrome = ChromeSink::default().export_string(&events);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with("]}"));
    let opens = chrome.matches("\"ph\":\"B\"").count();
    let closes = chrome.matches("\"ph\":\"E\"").count();
    assert_eq!(opens, closes, "every B has its E");
    // 2 transactions (commit + revert), each with 3 phases.
    assert_eq!(opens, 2 + 2 * 3);

    // The JSONL view carries every event as exactly one line.
    let jsonl = JsonlSink::default().export_string(&events);
    assert_eq!(jsonl.lines().count(), events.len());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"seq\":") && line.ends_with('}'));
    }
}

#[test]
fn disabled_tracing_records_nothing() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    // No enable_tracing call: the runtime holds no ring, so commits run
    // exactly as before the observability layer existed.
    w.commit().unwrap();
    w.revert().unwrap();
    let rt = w.rt.as_mut().unwrap();
    assert!(rt.tracer.is_none());
    assert!(rt.take_trace().is_empty());
}
