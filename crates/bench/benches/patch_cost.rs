//! §6.1 — patching cost: commit wall time as a function of call-site
//! count (the kernel recorded 1161 spinlock sites and patched them in
//! ≈16 ms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiverse::Program;
use std::time::{Duration, Instant};

/// Batched commit+revert timing at `n_sites` with the journal toggled.
/// The per-sample criterion rows below are one-shot and noisy at kernel
/// scale; this takes the best of several 20-iteration batches, which is
/// stable enough to report the undo log's happy-path overhead.
fn journal_batch(journal: bool, n_sites: usize) -> Duration {
    let src = mv_bench::many_callsites_src(n_sites);
    let program = Program::build(&[("sites.c", &src)]).expect("build");
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    w.rt.as_mut().unwrap().journal = journal;
    for _ in 0..5 {
        w.commit().expect("warmup commit");
        w.revert().expect("warmup revert");
    }
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..20 {
            w.commit().expect("commit");
            w.revert().expect("revert");
        }
        best = best.min(start.elapsed() / 20);
    }
    best
}

fn bench(c: &mut Criterion) {
    let r = mv_bench::patch_stats_data(1161);
    println!("## §6.1 — patch statistics at kernel scale (1161 sites)");
    println!("commit wall time: {:?}", r.commit_time);
    println!(
        "image overhead:   {} B (multiverse {} vs dynamic {})\n",
        r.mv_image - r.dyn_image,
        r.mv_image,
        r.dyn_image
    );

    println!("## journal overhead on the happy path (commit+revert, batched)");
    for n_sites in [16usize, 128, 1161] {
        let with = journal_batch(true, n_sites);
        let without = journal_batch(false, n_sites);
        let overhead = with.as_secs_f64() / without.as_secs_f64() - 1.0;
        println!(
            "{n_sites:>5} sites: journal {with:>10.2?}  no-journal {without:>10.2?}  overhead {:+.1}%",
            overhead * 100.0
        );
    }
    println!();

    println!("## tracing overhead on the commit path (commit+revert, batched)");
    for n_sites in [16usize, 128, 1161] {
        let (baseline, recording, disabled) = mv_bench::tracing_overhead(n_sites);
        let rec = recording.as_secs_f64() / baseline.as_secs_f64() - 1.0;
        let dis = disabled.as_secs_f64() / baseline.as_secs_f64() - 1.0;
        println!(
            "{n_sites:>5} sites: baseline {baseline:>10.2?}  recording {recording:>10.2?} ({:+.1}%)  disabled {disabled:>10.2?} ({:+.1}%)",
            rec * 100.0,
            dis * 100.0
        );
    }
    println!();

    println!("## metrics overhead on the commit path (commit+revert, batched; gate ≤5%)");
    for n_sites in [16usize, 128, 1161] {
        let (baseline, enabled, disabled) = mv_bench::metrics_overhead(n_sites);
        let en = enabled.as_secs_f64() / baseline.as_secs_f64() - 1.0;
        let dis = disabled.as_secs_f64() / baseline.as_secs_f64() - 1.0;
        println!(
            "{n_sites:>5} sites: baseline {baseline:>10.2?}  metrics_overhead {enabled:>10.2?} ({:+.1}%)  disabled {disabled:>10.2?} ({:+.1}%)",
            en * 100.0,
            dis * 100.0
        );
    }
    println!();

    println!("## page batching vs per-site apply, first commit vs re-commit (1161 sites)");
    println!(
        "{:>9}  {:>11} {:>9} {:>7} {:>7} | {:>11} {:>7} {:>12}",
        "mode", "first", "mprotect", "flush", "pages", "re-commit", "writes", "sites-skip"
    );
    for row in mv_bench::fast_path_data(1161) {
        println!(
            "{:>9}  {:>11.2?} {:>9} {:>7} {:>7} | {:>11.2?} {:>7} {:>12}",
            row.mode,
            row.first_time,
            row.first.mprotects,
            row.first.icache_flushes,
            row.first.pages_touched,
            row.recommit_time,
            row.recommit.bytes_written,
            format!("{}/{}", row.recommit.sites_skipped, row.call_sites),
        );
    }
    println!();

    println!("## §6.1 — per-phase commit latency from the trace ring (50 rounds, 1161 sites)");
    print!(
        "{}",
        mv_bench::render_latency_table(&mv_bench::commit_latency_percentiles(1161, 50))
    );
    println!();

    let mut g = c.benchmark_group("patch_cost");
    // Journal on (default) vs. off (validated but unjournaled apply):
    // the undo log's happy-path overhead, reported as its own column.
    for journal in [true, false] {
        let label = if journal { "commit+journal" } else { "commit" };
        for n_sites in [16usize, 128, 1161] {
            let src = mv_bench::many_callsites_src(n_sites);
            let program = Program::build(&[("sites.c", &src)]).expect("build");
            let mut w = program.boot();
            w.set("feature", 1).unwrap();
            w.rt.as_mut().unwrap().journal = journal;
            g.bench_with_input(BenchmarkId::new(label, n_sites), &n_sites, |b, _| {
                b.iter(|| {
                    w.commit().expect("commit");
                    w.revert().expect("revert");
                })
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
