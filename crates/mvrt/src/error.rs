//! Run-time library errors.

use mvobj::descriptor::DescError;
use mvvm::MemError;
use std::fmt;

/// Errors of the multiverse run-time library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RtError {
    /// Guest memory access failed.
    Mem(MemError),
    /// A descriptor section is malformed.
    Desc(DescError),
    /// No multiversed function with this generic address.
    UnknownFunction(u64),
    /// No configuration switch at this address.
    UnknownVariable(u64),
    /// A guard references a switch with no variable descriptor.
    UnknownGuardVariable {
        /// Generic address of the guarded function.
        function: u64,
        /// Unresolvable switch address.
        var_addr: u64,
    },
    /// A call site did not contain the instruction the runtime expected —
    /// the "check if they point to a expected call target" step of §4.
    SiteVerifyFailed {
        /// Address of the call site.
        site: u64,
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// A generic function body is smaller than the 5-byte entry jump that
    /// completeness patching must place over it.
    GenericTooSmall {
        /// Generic entry address.
        function: u64,
        /// Its body size.
        size: u32,
    },
    /// A function-pointer switch holds a value that is not a function
    /// entry the runtime knows how to reach.
    BadFnPtrTarget {
        /// Switch address.
        var_addr: u64,
        /// Pointer value found.
        target: u64,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Mem(e) => write!(f, "{e}"),
            RtError::Desc(e) => write!(f, "{e}"),
            RtError::UnknownFunction(a) => write!(f, "no multiversed function at {a:#x}"),
            RtError::UnknownVariable(a) => write!(f, "no configuration switch at {a:#x}"),
            RtError::UnknownGuardVariable { function, var_addr } => write!(
                f,
                "function {function:#x} guarded by unknown switch {var_addr:#x}"
            ),
            RtError::SiteVerifyFailed { site, what } => {
                write!(f, "call-site verification failed at {site:#x}: {what}")
            }
            RtError::GenericTooSmall { function, size } => write!(
                f,
                "generic body of {function:#x} is {size} bytes, smaller than an entry jump"
            ),
            RtError::BadFnPtrTarget { var_addr, target } => write!(
                f,
                "function pointer at {var_addr:#x} holds unreachable target {target:#x}"
            ),
        }
    }
}

impl std::error::Error for RtError {}

impl From<MemError> for RtError {
    fn from(e: MemError) -> RtError {
        RtError::Mem(e)
    }
}

impl From<DescError> for RtError {
    fn from(e: DescError) -> RtError {
        RtError::Desc(e)
    }
}
