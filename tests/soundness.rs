//! §7.4 soundness, property-based: for *every* switch assignment, a
//! committed program computes exactly what the dynamic build computes —
//! variants are behaviour-preserving specializations.
//!
//! Programs are generated from a small random expression/statement
//! grammar over two switches and one integer parameter; each generated
//! program is compiled three ways (dynamic, multiverse, static) and
//! compared pointwise.

use multiverse::mvc::Options;
use multiverse::Program;
use proptest::prelude::*;

/// A randomly generated pure expression over `a_`, `b_` (switch reads)
/// and `x` (the parameter).
#[derive(Clone, Debug)]
enum E {
    Const(i8),
    SwitchA,
    SwitchB,
    Param,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    If(Box<E>, Box<E>, Box<E>),
}

impl E {
    fn to_mvc(&self) -> String {
        match self {
            E::Const(c) => format!("{c}"),
            E::SwitchA => "a_".into(),
            E::SwitchB => "b_".into(),
            E::Param => "x".into(),
            E::Add(l, r) => format!("({} + {})", l.to_mvc(), r.to_mvc()),
            E::Sub(l, r) => format!("({} - {})", l.to_mvc(), r.to_mvc()),
            E::Mul(l, r) => format!("({} * {})", l.to_mvc(), r.to_mvc()),
            E::Lt(l, r) => format!("({} < {})", l.to_mvc(), r.to_mvc()),
            E::And(l, r) => format!("({} & {})", l.to_mvc(), r.to_mvc()),
            E::If(c, t, f) => {
                // Statement-level if, expressed via a helper pattern the
                // generator wraps; here inline with arithmetic selection:
                // cond != 0 ? t : f  ==  sel*t + (1-sel)*f with sel in
                // {0,1}.
                format!(
                    "(({c} != 0) * {t} + (({c} != 0) == 0) * {f})",
                    c = c.to_mvc(),
                    t = t.to_mvc(),
                    f = f.to_mvc()
                )
            }
        }
    }

    fn eval(&self, a: i64, b: i64, x: i64) -> i64 {
        match self {
            E::Const(c) => *c as i64,
            E::SwitchA => a,
            E::SwitchB => b,
            E::Param => x,
            E::Add(l, r) => l.eval(a, b, x).wrapping_add(r.eval(a, b, x)),
            E::Sub(l, r) => l.eval(a, b, x).wrapping_sub(r.eval(a, b, x)),
            E::Mul(l, r) => l.eval(a, b, x).wrapping_mul(r.eval(a, b, x)),
            E::Lt(l, r) => (l.eval(a, b, x) < r.eval(a, b, x)) as i64,
            E::And(l, r) => l.eval(a, b, x) & r.eval(a, b, x),
            E::If(c, t, f) => {
                let sel = (c.eval(a, b, x) != 0) as i64;
                sel * t.eval(a, b, x) + (1 - sel) * f.eval(a, b, x)
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(E::Const),
        Just(E::SwitchA),
        Just(E::SwitchB),
        Just(E::Param),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Lt(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, f)| E::If(
                Box::new(c),
                Box::new(t),
                Box::new(f)
            )),
        ]
    })
}

fn program_src(e: &E) -> String {
    format!(
        r#"
        multiverse(0, 1, 2) i32 a_;
        multiverse(0, 1) i32 b_;
        multiverse i64 compute(i64 x) {{
            return {};
        }}
        i64 main(void) {{ return 0; }}
        "#,
        e.to_mvc()
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// The generated function computes the same value (= the Rust oracle)
    /// in the dynamic build, in the multiverse build before commit, and
    /// in the multiverse build after committing every in-domain
    /// assignment — including re-commits.
    #[test]
    fn committed_variants_preserve_behaviour(
        e in arb_expr(),
        xs in proptest::collection::vec(-8i64..8, 1..4),
    ) {
        let src = program_src(&e);
        let dynamic = Program::build_with(&[("t.c", &src)], &Options::dynamic()).unwrap();
        let mv = Program::build(&[("t.c", &src)]).unwrap();
        let mut wd = dynamic.boot();
        let mut wm = mv.boot();

        for a in 0..3i64 {
            for b in 0..2i64 {
                // Back to the generic binding before testing the
                // pre-commit behaviour of this assignment.
                wm.revert().unwrap();
                wd.set("a_", a).unwrap();
                wd.set("b_", b).unwrap();
                wm.set("a_", a).unwrap();
                wm.set("b_", b).unwrap();
                // Pre-commit (generic) and post-commit (variant) both
                // match the oracle.
                for &x in &xs {
                    let oracle = e.eval(a, b, x) as u64;
                    let got_dyn = wd.call("compute", &[x as u64]).unwrap();
                    prop_assert_eq!(got_dyn, oracle, "dynamic a={} b={} x={}", a, b, x);
                    let got_generic = wm.call("compute", &[x as u64]).unwrap();
                    prop_assert_eq!(got_generic, oracle, "generic a={} b={} x={}", a, b, x);
                }
                wm.commit().unwrap();
                for &x in &xs {
                    let oracle = e.eval(a, b, x) as u64;
                    let got = wm.call("compute", &[x as u64]).unwrap();
                    prop_assert_eq!(got, oracle, "committed a={} b={} x={}", a, b, x);
                }
            }
        }

        // Revert restores dynamic behaviour for an out-of-domain value.
        wm.revert().unwrap();
        wm.set("a_", 7).unwrap();
        wm.set("b_", -3).unwrap();
        for &x in &xs {
            let oracle = e.eval(7, -3, x) as u64;
            prop_assert_eq!(wm.call("compute", &[x as u64]).unwrap(), oracle);
        }
    }

    /// The optimizer never changes observable results (dynamic build,
    /// optimized vs. unoptimized).
    #[test]
    fn optimizer_preserves_behaviour(
        e in arb_expr(),
        a in 0i64..3,
        b in 0i64..2,
        x in -8i64..8,
    ) {
        let src = program_src(&e);
        let opt = Program::build_with(&[("t.c", &src)], &Options::dynamic()).unwrap();
        let unopt = Program::build_with(
            &[("t.c", &src)],
            &Options { optimize: false, ..Options::dynamic() },
        )
        .unwrap();
        let mut wo = opt.boot();
        let mut wu = unopt.boot();
        for w in [&mut wo, &mut wu] {
            w.set("a_", a).unwrap();
            w.set("b_", b).unwrap();
        }
        let oracle = e.eval(a, b, x) as u64;
        prop_assert_eq!(wo.call("compute", &[x as u64]).unwrap(), oracle);
        prop_assert_eq!(wu.call("compute", &[x as u64]).unwrap(), oracle);
    }

    /// The `#ifdef` build (binding A) agrees with the dynamic build at
    /// the configured point.
    #[test]
    fn static_build_agrees_at_config_point(
        e in arb_expr(),
        a in 0i64..3,
        b in 0i64..2,
        x in -8i64..8,
    ) {
        let src = program_src(&e);
        let st = Program::build_with(
            &[("t.c", &src)],
            &Options::static_build(&[("a_", a), ("b_", b)]),
        )
        .unwrap();
        let mut w = st.boot();
        let oracle = e.eval(a, b, x) as u64;
        prop_assert_eq!(w.call("compute", &[x as u64]).unwrap(), oracle);
    }
}
