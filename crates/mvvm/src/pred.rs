//! Branch prediction: 2-bit-counter conditional predictor, branch target
//! buffer for indirect calls, and a return-stack buffer.
//!
//! The paper's motivating observation (§1, §6.1) is that a dynamic feature
//! test is nearly free in a warm tight loop — the predictor learns it — but
//! costs 16–20 cycles whenever it mispredicts on real execution paths. The
//! predictors here make that observable: benchmarks can run warm, or call
//! [`Predictors::flush`] between iterations to model a cold BTB (the E10
//! ablation).

use std::collections::HashMap;

/// Depth of the return-stack buffer (16, as on Skylake-class cores).
pub const RSB_DEPTH: usize = 16;

/// All predictor state of the core.
#[derive(Default)]
pub struct Predictors {
    /// 2-bit saturating counters, keyed by branch address.
    /// 0,1 = predict not-taken; 2,3 = predict taken.
    cond: HashMap<u64, u8>,
    /// Last observed target per indirect call/jump site.
    btb: HashMap<u64, u64>,
    /// Return-stack buffer.
    rsb: Vec<u64>,
}

impl Predictors {
    /// Creates empty (cold) predictor state.
    pub fn new() -> Predictors {
        Predictors::default()
    }

    /// Predicts and trains the conditional predictor for the branch at
    /// `pc` with actual outcome `taken`. Returns `true` if the prediction
    /// was correct.
    ///
    /// A branch never seen before predicts not-taken (counter 1), as on a
    /// cold BHT.
    pub fn cond_branch(&mut self, pc: u64, taken: bool) -> bool {
        let ctr = self.cond.entry(pc).or_insert(1);
        let predicted = *ctr >= 2;
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = ctr.saturating_sub(1);
        }
        predicted == taken
    }

    /// Predicts and trains the BTB for the indirect transfer at `pc` with
    /// actual target `target`. Returns `true` on a correct prediction.
    pub fn indirect(&mut self, pc: u64, target: u64) -> bool {
        let hit = self.btb.get(&pc) == Some(&target);
        self.btb.insert(pc, target);
        hit
    }

    /// Records a call's return address on the RSB.
    pub fn push_ret(&mut self, ret_addr: u64) {
        if self.rsb.len() == RSB_DEPTH {
            self.rsb.remove(0);
        }
        self.rsb.push(ret_addr);
    }

    /// Pops the RSB for a `ret` to `actual`. Returns `true` if predicted
    /// correctly.
    pub fn pop_ret(&mut self, actual: u64) -> bool {
        self.rsb.pop() == Some(actual)
    }

    /// Flushes all predictor state (cold-BTB ablation, context-switch
    /// model).
    pub fn flush(&mut self) {
        self.cond.clear();
        self.btb.clear();
        self.rsb.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_predictor_warms_up() {
        let mut p = Predictors::new();
        // Cold: predicts not-taken (counter 1), so a taken branch
        // mispredicts once and is learned immediately.
        assert!(!p.cond_branch(0x40, true));
        for _ in 0..100 {
            assert!(p.cond_branch(0x40, true));
        }
        // One glitch does not untrain a saturated counter.
        assert!(!p.cond_branch(0x40, false));
        assert!(p.cond_branch(0x40, true));
    }

    #[test]
    fn cold_not_taken_is_free() {
        let mut p = Predictors::new();
        assert!(p.cond_branch(0x40, false));
    }

    #[test]
    fn btb_learns_single_target() {
        let mut p = Predictors::new();
        assert!(!p.indirect(0x80, 0x1000));
        assert!(p.indirect(0x80, 0x1000));
        // Target change (e.g. a function-pointer reconfiguration)
        // mispredicts once.
        assert!(!p.indirect(0x80, 0x2000));
        assert!(p.indirect(0x80, 0x2000));
    }

    #[test]
    fn rsb_matches_nested_calls() {
        let mut p = Predictors::new();
        p.push_ret(0xA);
        p.push_ret(0xB);
        assert!(p.pop_ret(0xB));
        assert!(p.pop_ret(0xA));
        assert!(!p.pop_ret(0xC)); // empty RSB mispredicts
    }

    #[test]
    fn rsb_overflow_drops_oldest() {
        let mut p = Predictors::new();
        for i in 0..(RSB_DEPTH as u64 + 1) {
            p.push_ret(i);
        }
        for i in (1..=RSB_DEPTH as u64).rev() {
            assert!(p.pop_ret(i));
        }
        assert!(!p.pop_ret(0)); // overwritten entry
    }

    #[test]
    fn flush_forgets_everything() {
        let mut p = Predictors::new();
        for _ in 0..4 {
            p.cond_branch(0x40, true);
        }
        p.indirect(0x80, 0x1000);
        p.flush();
        assert!(!p.cond_branch(0x40, true));
        assert!(!p.indirect(0x80, 0x1000));
    }
}
