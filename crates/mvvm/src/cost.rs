//! The cycle cost model.
//!
//! Default values are calibrated so the mechanisms measured by the paper
//! produce comparable magnitudes on a Skylake-class core (the paper used an
//! i5-6400/i5-7400): a mispredicted branch costs ≈16 cycles (footnote 1), a
//! bus-locked exchange is far more expensive on a multicore than on a
//! unicore, privileged instructions inside a paravirtualized guest cost a
//! trap, and a hypercall is cheaper than a trap but much more expensive
//! than a native `sti`/`cli`.

/// Per-instruction-class cycle costs charged by the interpreter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU op / register move / immediate move.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// Data load (L1 hit).
    pub load: u64,
    /// Data store.
    pub store: u64,
    /// `lea` (address materialization).
    pub lea: u64,
    /// `cmp`.
    pub cmp: u64,
    /// Conditional branch, correctly predicted and not fused.
    pub branch: u64,
    /// Conditional branch that directly follows its `cmp` (macro-fusion):
    /// charged instead of `cmp + branch`.
    pub fused_cmp_branch: u64,
    /// Penalty added on a mispredicted branch / indirect call / return.
    pub mispredict: u64,
    /// Direct `call rel32` (includes the return-address push).
    pub call: u64,
    /// Indirect call through a register (BTB-predicted).
    pub call_ind: u64,
    /// Extra cost of an indirect call through memory (the pointer load).
    pub call_mem_extra: u64,
    /// `ret` with a return-stack-buffer hit.
    pub ret: u64,
    /// Unconditional direct `jmp`.
    pub jmp: u64,
    /// `push` / `pop`.
    pub push_pop: u64,
    /// Bus-locked atomic exchange on a unicore (no coherence traffic).
    pub atomic_up: u64,
    /// Bus-locked atomic exchange on a multicore.
    pub atomic_smp: u64,
    /// `sti` / `cli` executed natively.
    pub sti_cli: u64,
    /// Penalty for executing a privileged instruction inside a guest
    /// (emulation trap / VM exit).
    pub guest_priv_trap: u64,
    /// An explicit hypercall.
    pub hypercall: u64,
    /// `rdtsc` (with ordering fence, as `rdtsc_ordered()`).
    pub rdtsc: u64,
    /// `pause` spin hint.
    pub pause: u64,
    /// `out` byte to the host sink.
    pub out: u64,
    /// `mfence`.
    pub fence: u64,
    /// Any NOP instruction (regardless of width).
    pub nop: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            alu: 1,
            mul: 3,
            div: 21,
            load: 2,
            store: 1,
            lea: 1,
            cmp: 1,
            branch: 1,
            fused_cmp_branch: 1,
            mispredict: 16,
            call: 2,
            call_ind: 3,
            call_mem_extra: 2,
            ret: 2,
            jmp: 1,
            push_pop: 1,
            // An uncontended bus-locked exchange costs ≈17–20 cycles on
            // Skylake even with one CPU online; multicore adds a little
            // coherence traffic. The UP benefit in the paper comes from
            // *eliding* the atomic, not from a cheaper atomic.
            atomic_up: 17,
            atomic_smp: 19,
            sti_cli: 1,
            guest_priv_trap: 260,
            hypercall: 28,
            rdtsc: 24,
            pause: 1,
            out: 8,
            fence: 4,
            nop: 1,
        }
    }
}

impl CostModel {
    /// A zero-cost model: every instruction costs one cycle, no penalties.
    /// Useful for functional tests where cycle accounting is noise.
    pub fn uniform() -> CostModel {
        CostModel {
            alu: 1,
            mul: 1,
            div: 1,
            load: 1,
            store: 1,
            lea: 1,
            cmp: 1,
            branch: 1,
            fused_cmp_branch: 1,
            mispredict: 0,
            call: 1,
            call_ind: 1,
            call_mem_extra: 0,
            ret: 1,
            jmp: 1,
            push_pop: 1,
            atomic_up: 1,
            atomic_smp: 1,
            sti_cli: 1,
            guest_priv_trap: 1,
            hypercall: 1,
            rdtsc: 1,
            pause: 1,
            out: 1,
            fence: 1,
            nop: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reflects_paper_magnitudes() {
        let c = CostModel::default();
        // Footnote 1: misprediction penalty 16.5/19–20 cycles on Skylake.
        assert!((15..=20).contains(&c.mispredict));
        // Atomics are expensive in both modes (the win is eliding them),
        // with SMP paying a little extra coherence.
        assert!((15..=25).contains(&c.atomic_up));
        assert!(c.atomic_smp >= c.atomic_up);
        // Hypercall ≪ trap, hypercall ≫ native sti/cli.
        assert!(c.hypercall < c.guest_priv_trap / 4);
        assert!(c.hypercall > 8 * c.sti_cli);
    }
}
