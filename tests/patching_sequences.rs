//! Model-based property test of the run-time library: arbitrary
//! interleavings of switch writes, commits, reverts, per-function and
//! per-switch operations must always leave every function computing what
//! an abstract binding model predicts — and a final universal revert must
//! restore the text segment byte-for-byte.

use multiverse::{mvvx, Program, World};
use proptest::prelude::*;

const SRC: &str = r#"
    multiverse(0, 1, 2) i32 a_;
    multiverse(0, 1) i32 b_;

    multiverse i64 f1(void) { return a_ * 10 + 1; }
    multiverse i64 f2(void) { return b_ * 100 + 2; }
    multiverse i64 f3(void) { return a_ * 1000 + b_ * 10000; }

    i64 main(void) { return 0; }
"#;

/// Operations the fuzzer may apply.
#[derive(Clone, Copy, Debug)]
enum Op {
    SetA(i64),
    SetB(i64),
    Commit,
    Revert,
    CommitFunc(u8),
    RevertFunc(u8),
    CommitRefsA,
    CommitRefsB,
    RevertRefsA,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..5).prop_map(Op::SetA), // 3, 4 are out of domain
        (0i64..4).prop_map(Op::SetB), // 2, 3 are out of domain
        Just(Op::Commit),
        Just(Op::Revert),
        (0u8..3).prop_map(Op::CommitFunc),
        (0u8..3).prop_map(Op::RevertFunc),
        Just(Op::CommitRefsA),
        Just(Op::CommitRefsB),
        Just(Op::RevertRefsA),
    ]
}

/// The abstract model: per function, the switch values it is bound to
/// (`None` = generic, evaluates dynamically).
#[derive(Default)]
struct Model {
    a: i64,
    b: i64,
    /// Bound (a, b) per function, if committed.
    bound: [Option<(i64, i64)>; 3],
}

impl Model {
    fn in_domain_a(&self) -> bool {
        (0..=2).contains(&self.a)
    }
    fn in_domain_b(&self) -> bool {
        (0..=1).contains(&self.b)
    }

    /// Commit semantics for one function: bind if the referenced switches
    /// are in domain, else fall back to generic.
    fn commit_fn(&mut self, i: usize) {
        let ok = match i {
            0 => self.in_domain_a(),
            1 => self.in_domain_b(),
            _ => self.in_domain_a() && self.in_domain_b(),
        };
        self.bound[i] = ok.then_some((self.a, self.b));
    }

    fn expected(&self, i: usize) -> i64 {
        let (a, b) = self.bound[i].unwrap_or((self.a, self.b));
        match i {
            0 => a * 10 + 1,
            1 => b * 100 + 2,
            _ => a * 1000 + b * 10000,
        }
    }
}

const FNS: [&str; 3] = ["f1", "f2", "f3"];
/// Which functions reference which switch (f1: a, f2: b, f3: both).
const REFS_A: [usize; 2] = [0, 2];
const REFS_B: [usize; 2] = [1, 2];

fn apply(world: &mut World, model: &mut Model, op: Op) {
    match op {
        Op::SetA(v) => {
            world.set("a_", v).unwrap();
            model.a = v;
        }
        Op::SetB(v) => {
            world.set("b_", v).unwrap();
            model.b = v;
        }
        Op::Commit => {
            world.commit().unwrap();
            for i in 0..3 {
                model.commit_fn(i);
            }
        }
        Op::Revert => {
            world.revert().unwrap();
            model.bound = [None; 3];
        }
        Op::CommitFunc(i) => {
            world.commit_func(FNS[i as usize]).unwrap();
            model.commit_fn(i as usize);
        }
        Op::RevertFunc(i) => {
            let addr = world.sym(FNS[i as usize]).unwrap();
            let rt = world.rt.as_mut().unwrap();
            rt.revert_func(&mut world.machine, addr).unwrap();
            model.bound[i as usize] = None;
        }
        Op::CommitRefsA => {
            world.commit_refs("a_").unwrap();
            for i in REFS_A {
                model.commit_fn(i);
            }
        }
        Op::CommitRefsB => {
            world.commit_refs("b_").unwrap();
            for i in REFS_B {
                model.commit_fn(i);
            }
        }
        Op::RevertRefsA => {
            let addr = world.sym("a_").unwrap();
            let rt = world.rt.as_mut().unwrap();
            rt.revert_refs(&mut world.machine, addr).unwrap();
            for i in REFS_A {
                model.bound[i] = None;
            }
        }
    }
}

/// The fault-schedule dimension: for **every** position of every fault
/// op in a multi-function commit, an injected fault must surface as
/// `Err` with the text segment byte-identical to its pre-commit state —
/// and once the (one-shot) fault heals, the identical commit succeeds.
#[test]
fn fault_schedule_sweep_preserves_atomicity() {
    use multiverse::mvrt::CommitPhase;
    use multiverse::mvvm::{FaultOp, FaultPlan};

    // Like SRC, but with callers so the commit also patches recorded
    // call sites — more positions for the schedule to hit.
    const SWEEP_SRC: &str = r#"
        multiverse(0, 1, 2) i32 a_;
        multiverse(0, 1) i32 b_;

        multiverse i64 f1(void) { return a_ * 10 + 1; }
        multiverse i64 f2(void) { return b_ * 100 + 2; }
        multiverse i64 f3(void) { return a_ * 1000 + b_ * 10000; }

        i64 g1(void) { return f1(); }
        i64 g2(void) { return f2(); }
        i64 g3(void) { return f1() + f3(); }

        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", SWEEP_SRC)]).unwrap();
    let (taddr, tsize) = program.exe().section(multiverse::mvobj::SEC_TEXT);
    let text = |world: &World| world.machine.mem.read_vec(taddr, tsize as usize).unwrap();
    let boot_configured = || {
        let mut world = program.boot();
        world.set("a_", 1).unwrap();
        world.set("b_", 1).unwrap();
        world
    };

    // Probe: count the ops one clean full commit performs.
    let mut probe = boot_configured();
    probe.commit().unwrap();
    let d = probe.rt.as_ref().unwrap().stats;
    let schedule = [
        (FaultOp::TextWrite, d.journal_entries), // every text write journals
        (FaultOp::Mprotect, d.mprotects),
        (FaultOp::IcacheFlush, d.icache_flushes),
    ];
    assert!(
        d.journal_entries >= 4,
        "need a multi-write commit to sweep meaningfully ({} writes)",
        d.journal_entries
    );

    for (op, count) in schedule {
        for n in 1..=count {
            let mut world = boot_configured();
            let pristine = text(&world);

            world.machine.inject_fault(FaultPlan::new(op, n));
            let err = world
                .commit()
                .expect_err(&format!("{op:?} fault at position {n} must surface"));
            let rt_err = match &err {
                multiverse::BuildError::Rt(e) => e,
                other => panic!("unexpected error {other:?}"),
            };
            assert_eq!(
                rt_err.commit_phase(),
                Some(CommitPhase::Apply),
                "{op:?}@{n}: {rt_err:?}"
            );
            assert!(rt_err.is_transient(), "{op:?}@{n}: {rt_err:?}");
            assert_eq!(
                text(&world),
                pristine,
                "{op:?} fault at position {n} tore the text segment"
            );
            let rt = world.rt.as_ref().unwrap();
            assert_eq!(rt.stats.rollbacks, 1, "{op:?}@{n}");

            // The functions still behave generically (nothing committed).
            assert_eq!(world.call("f1", &[]).unwrap() as i64, 11);
            assert_eq!(world.call("f2", &[]).unwrap() as i64, 102);

            // One-shot fault has fired; the identical commit now succeeds
            // and the committed image behaves identically.
            let report = world.commit().unwrap();
            assert_eq!(report.variants_committed, 3, "{op:?}@{n}");
            assert_ne!(text(&world), pristine);
            assert_eq!(world.call("f1", &[]).unwrap() as i64, 11);
            assert_eq!(world.call("f2", &[]).unwrap() as i64, 102);
            assert_eq!(world.call("f3", &[]).unwrap() as i64, 11000);
        }
    }
}

/// What the model predicts `FNS[i]` returns in the world-as-patched when
/// the switch *cells* hold `(a, b)`: committed functions ignore the
/// cells (their values are burned into the specialist), generics read
/// them dynamically.
fn expected_at(model: &Model, i: usize, a: i64, b: i64) -> i64 {
    let (a, b) = model.bound[i].unwrap_or((a, b));
    match i {
        0 => a * 10 + 1,
        1 => b * 100 + 2,
        _ => a * 1000 + b * 10000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn random_patching_sequences_match_the_model(
        ops in proptest::collection::vec(arb_op(), 1..24),
    ) {
        let program = Program::build(&[("t.c", SRC)]).unwrap();
        let mut world = program.boot();
        let (taddr, tsize) = program.exe().section(multiverse::mvobj::SEC_TEXT);
        let pristine = world.machine.mem.read_vec(taddr, tsize as usize).unwrap();

        // The declared cross product, built by hand: the sequence may
        // park the *cells* out of domain (a_=3), which must not leak
        // into the leaf enumeration.
        let domain = |name: &str, hi: i64| mvvx::SwitchDomain {
            name: name.into(),
            addr: world.sym(name).unwrap(),
            width: 4,
            signed: true,
            values: (0..=hi).collect(),
        };
        let space =
            mvvx::ConfigSpace::new(vec![domain("a_", 2), domain("b_", 1)]).unwrap();
        prop_assert_eq!(space.leaf_count(), 6);

        let mut model = Model::default();
        for (n, &op) in ops.iter().enumerate() {
            apply(&mut world, &mut model, op);

            // Cross-check the patched image against the model over the
            // WHOLE declared cross product in one variational pass per
            // function: committed bindings must be leaf-invariant,
            // generic bodies must track each leaf's cell values.
            #[allow(clippy::needless_range_loop)] // index is shared with the model
            for i in 0..3 {
                let report = world.vexec_in(&space, FNS[i], &[]).unwrap();
                prop_assert_eq!(report.leaves.len(), 6);
                for leaf in &report.leaves {
                    let (la, lb) = (leaf.assignment[0].1, leaf.assignment[1].1);
                    prop_assert_eq!(
                        leaf.exit as i64,
                        expected_at(&model, i, la, lb),
                        "{} at leaf (a_={}, b_={}) after {:?} (history {:?})",
                        FNS[i], la, lb, op, ops
                    );
                }
            }

            // Sampled direct rerun as the fallback oracle: one rotating
            // function per op, run with the *actual* cell values — this
            // is the only path that exercises out-of-domain cells.
            let i = n % 3;
            let got = world.call(FNS[i], &[]).unwrap() as i64;
            prop_assert_eq!(
                got,
                model.expected(i),
                "{} after {:?} (history {:?})",
                FNS[i],
                op,
                ops
            );
        }

        // A final universal revert restores the pristine text segment.
        world.revert().unwrap();
        let restored = world.machine.mem.read_vec(taddr, tsize as usize).unwrap();
        prop_assert_eq!(pristine, restored);
    }
}

/// One full SMP contention run with quiesced flips: returns the final
/// text image, the per-vCPU cycle counters and the shared counter.
fn smp_flip_run(
    program: &Program,
    vcpus: usize,
    seed: u64,
    strategy: multiverse::mvrt::CommitStrategy,
    flips: usize,
    tier: multiverse::mvvm::ExecTier,
) -> (Vec<u8>, Vec<u64>, i64) {
    const ITERS: u64 = 64;
    let (taddr, tsize) = program.exe().section(multiverse::mvobj::SEC_TEXT);
    let mut w = program.boot_smp(vcpus);
    w.smp.set_seed(seed);
    w.smp.set_tier(tier);
    w.set("config_smp", 1).unwrap();
    w.spawn_all("worker", &[ITERS]).unwrap();
    let mut committed = false;
    for _ in 0..flips {
        for _ in 0..4 {
            w.smp.step_round();
        }
        if committed {
            w.revert_quiesced(strategy).unwrap();
        } else {
            w.commit_quiesced(strategy).unwrap();
        }
        committed = !committed;
    }
    w.run(10_000_000).unwrap();
    let text = w.smp.machine.mem.read_vec(taddr, tsize as usize).unwrap();
    let cycles = (0..vcpus).map(|i| w.smp.cycles_of(i)).collect();
    (text, cycles, w.get("counter").unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// SMP extension of the model fuzz: at random vCPU counts (2–8),
    /// random scheduler seeds, random quiesced flip counts and a random
    /// execution tier, under both protocols, the machine must land
    /// byte-identical to a single-core world applying the same
    /// commit/revert sequence, the locked counter must stay exact — and
    /// the same seed must reproduce the same interleaving
    /// cycle-for-cycle, with the tiered run indistinguishable from the
    /// tierless one.
    #[test]
    fn smp_quiesced_flips_match_single_core_image(
        vcpus in 2usize..=8,
        seed in any::<u64>(),
        breakpoint in any::<bool>(),
        flips in 1usize..5,
        tier_idx in 0usize..3,
    ) {
        use multiverse::mvrt::CommitStrategy;
        use multiverse::mvvm::ExecTier;
        use mv_workloads::smp_contention;

        let strategy = if breakpoint {
            CommitStrategy::Breakpoint
        } else {
            CommitStrategy::StopMachine
        };
        let tier = [ExecTier::Tierless, ExecTier::Block, ExecTier::Superblock][tier_idx];
        let program = smp_contention::build().unwrap();
        let (text, cycles, counter) = smp_flip_run(&program, vcpus, seed, strategy, flips, tier);
        prop_assert_eq!(counter, (vcpus as i64) * 64, "lost a locked increment");

        // Single-core twin: same commit/revert sequence on an idle world.
        let (taddr, tsize) = program.exe().section(multiverse::mvobj::SEC_TEXT);
        let mut sw = program.boot();
        sw.set("config_smp", 1).unwrap();
        let mut committed = false;
        for _ in 0..flips {
            if committed {
                sw.revert().unwrap();
            } else {
                sw.commit().unwrap();
            }
            committed = !committed;
        }
        let single = sw.machine.mem.read_vec(taddr, tsize as usize).unwrap();
        prop_assert_eq!(&text, &single, "SMP image diverged from single-core");

        // Determinism: replaying the identical seed reproduces the exact
        // interleaving (identical per-vCPU cycle counters and image) —
        // and the tierless twin of a tiered run must be byte- and
        // cycle-identical, the differential oracle for the block engine.
        let twin = if tier == ExecTier::Tierless { tier } else { ExecTier::Tierless };
        let (text2, cycles2, counter2) = smp_flip_run(&program, vcpus, seed, strategy, flips, twin);
        prop_assert_eq!(text, text2);
        prop_assert_eq!(cycles, cycles2);
        prop_assert_eq!(counter, counter2);
    }
}
