//! Enum-typed configuration switches end to end (§3: "for enumeration
//! types, we choose all declared enumeration items as specialization
//! values"), including the non-contiguous-domain case where merged
//! variants need multiple point-guard descriptor entries.

use multiverse::{enumerate_check, oracle_check, Program};

const SRC: &str = r#"
    // Non-contiguous enumerator values, as real kernels have.
    enum io_scheduler { IO_NOOP = 0, IO_DEADLINE = 3, IO_CFQ = 7 };
    multiverse enum io_scheduler sched;

    u64 submitted;

    multiverse i64 submit(i64 n) {
        submitted = submitted + 1;
        if (sched == 3) {
            return n * 10;     // deadline: weighted
        }
        if (sched == 7) {
            return n * 100;    // cfq: heavily weighted
        }
        return n;              // noop (and any other value)
    }

    i64 main(void) { return 0; }
"#;

#[test]
fn all_enumerators_get_variants() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let exe = program.exe();
    // Domain = {0, 3, 7}: three assignments, three distinct bodies.
    assert!(exe.symbol("submit.sched=0").is_some());
    assert!(exe.symbol("submit.sched=3").is_some());
    assert!(exe.symbol("submit.sched=7").is_some());
}

#[test]
fn each_enumerator_commits_to_its_specialist() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let w = program.boot();

    // One variational pass covers the whole enumerator domain {0, 3, 7}
    // at once, replacing the per-value rerun loop this test used to be.
    let space = w.config_space().unwrap();
    assert_eq!(space.leaf_count(), 3);
    let report = w.vexec_in(&space, "submit", &[5]).unwrap();
    for leaf in &report.leaves {
        let sched = leaf.assignment[0].1;
        let expect = match sched {
            3 => 50,
            7 => 500,
            _ => 5,
        };
        assert_eq!(leaf.exit, expect, "sched={sched}");
    }
    // The commit oracle replays each leaf via set → commit → call,
    // asserting the committed specialists observe the same results.
    let chk = oracle_check(&program, &space, "submit", &[5], &report).unwrap();
    assert_eq!(chk.leaves_checked, 3);
    enumerate_check(&program, &space, "submit", &[5], &report).unwrap();

    // Keep one direct in-domain commit as a plain-path sanity check.
    let mut w = program.boot();
    w.set("sched", 3).unwrap();
    let r = w.commit().unwrap();
    assert_eq!(r.generic_fallbacks, 0, "sched=3 is in domain");
    assert_eq!(w.call("submit", &[5]).unwrap(), 50);

    // A value between enumerators is out of domain → generic fallback,
    // still correct dynamically. (The vexec space cannot express this
    // leaf — its domains come from the declared enumerators — which is
    // exactly why the direct path stays.)
    w.set("sched", 4).unwrap();
    let r = w.commit().unwrap();
    assert_eq!(r.generic_fallbacks, 1);
    assert_eq!(w.call("submit", &[5]).unwrap(), 5);
}

#[test]
fn non_contiguous_merge_uses_point_guards() {
    // A function where IO_NOOP and IO_CFQ collapse to the same body:
    // {0, 7} is not a contiguous range, so the merged variant must carry
    // two point-guard descriptor entries — and both must select it.
    let src = r#"
        enum io_scheduler { IO_NOOP = 0, IO_DEADLINE = 3, IO_CFQ = 7 };
        multiverse enum io_scheduler sched;
        multiverse i64 needs_sort(void) {
            if (sched == 3) { return 1; }
            return 0;
        }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let exe = program.exe();
    // One merged body covers 0 and 7 (named after the first + count).
    let merged = exe
        .symbols
        .keys()
        .find(|n| n.starts_with("needs_sort.sched=") && n.contains('+'))
        .expect("merged non-box variant exists");
    assert!(
        merged.ends_with("+1"),
        "{merged}: covers one extra assignment"
    );

    // One vexec pass over {0, 3, 7} shows the merged-body leaves (0 and
    // 7) and the specialist leaf (3) at once; the commit oracle then
    // proves the point guards route each leaf to the right variant.
    let w = program.boot();
    let space = w.config_space().unwrap();
    let report = w.vexec_in(&space, "needs_sort", &[]).unwrap();
    assert_eq!(report.leaves.len(), 3);
    for leaf in &report.leaves {
        let sched = leaf.assignment[0].1;
        assert_eq!(leaf.exit, u64::from(sched == 3), "sched={sched}");
    }
    oracle_check(&program, &space, "needs_sort", &[], &report).unwrap();

    // The oracle compares observations but not binding decisions: also
    // assert that 0 and 7 bind the merged body without generic fallback.
    let mut w = program.boot();
    for value in [0i64, 7] {
        w.set("sched", value).unwrap();
        let r = w.commit().unwrap();
        assert_eq!(
            r.generic_fallbacks, 0,
            "sched={value} selects the merged body"
        );
    }

    let mut w = program.boot();
    w.set("sched", 3).unwrap();
    let r = w.commit().unwrap();
    assert_eq!(r.generic_fallbacks, 0, "sched=3 selects the specialist");
    assert_eq!(w.call("needs_sort", &[]).unwrap(), 1);
    // Value 5 sits inside [0, 7] but matches no point guard: the range
    // must NOT admit it (that is why non-box merges cannot use ranges).
    w.set("sched", 5).unwrap();
    let r = w.commit().unwrap();
    assert_eq!(r.generic_fallbacks, 1, "5 is not admitted by any guard");
}
