#![warn(missing_docs)]
//! MVVM — the MV64 virtual machine.
//!
//! The Multiverse paper's evaluation quantities are *microarchitectural*
//! relative effects: the cost of a conditional branch that may mispredict
//! (footnote 1: ≈16–20 cycles on Skylake), of a bus-locked atomic exchange
//! in UP vs. SMP mode, of an indirect call through a function pointer, of a
//! privileged instruction trapping inside a paravirtualized guest versus an
//! explicit hypercall, and of plain call/return overhead. This crate
//! executes MV64 binaries under an explicit cycle [`cost`] model that
//! reproduces those mechanisms:
//!
//! * a 2-bit-counter conditional-branch predictor, BTB for indirect calls
//!   and a return-stack buffer ([`pred`]), with a configurable
//!   misprediction penalty;
//! * cmp+jcc macro-fusion, so a *predicted* feature test costs what it
//!   costs on real hardware — almost nothing in a tight microbenchmark
//!   loop, which is exactly the warm-BTB effect §6.1 discusses;
//! * paged memory with R/W/X protection and an explicitly flushed
//!   instruction cache ([`mem`]): patching a page that was not made
//!   writable faults, and patched bytes are not *executed* until the
//!   icache is flushed — both observable, both tested;
//! * machine modes: unicore/multicore ([`MachineMode`]) switching the
//!   atomic-operation cost, and native/Xen-guest ([`Platform`]) making
//!   `sti`/`cli` trap while `hypercall` stays cheap.
//!
//! The [`Machine`] loads a linked [`mvobj::Executable`] and interprets it,
//! keeping per-run [`Stats`] (instructions, branches, mispredictions,
//! atomics, …) that the benchmark harness reports alongside cycle counts.

pub mod block;
pub mod cost;
pub mod cpu;
pub mod fault;
pub mod machine;
pub mod mem;
pub mod metrics;
pub mod native;
pub mod pred;
pub mod profile;
pub mod smp;
pub mod stats;
pub mod tier0;
pub mod trace;

pub use block::{BlockCacheStats, DecodedBlock, ExecTier};
pub use cost::CostModel;
pub use fault::{FaultMode, FaultOp, FaultPlan};
pub use machine::{CpuContext, Fault, Machine, MachineConfig, MachineMode, Platform};
pub use mem::{MemError, Memory, PAGE_SIZE};
pub use metrics::VmMetrics;
pub use native::NativeStats;
pub use profile::{FnCounters, FnProfile, FnRange, Profiler};
pub use smp::{SmpMachine, TrapDisposition, VcpuState};
pub use stats::Stats;
pub use tier0::BlockCache;
pub use trace::Trace;
