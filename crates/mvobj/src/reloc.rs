//! Relocations: symbol references patched by the linker.

/// Relocation field kinds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RelocKind {
    /// 64-bit absolute address (`S + A`), little-endian.
    Abs64,
    /// 32-bit displacement relative to the end of the containing
    /// instruction: `S + A - P_next`, where `P_next` is the address right
    /// after the instruction (x86 `R_X86_64_PC32`-style, as used by `call
    /// rel32`).
    Rel32 {
        /// Offset (within the same section, pre-concatenation) of the first
        /// byte after the instruction that contains the field.
        next_insn: u64,
    },
}

/// One relocation record.
#[derive(Clone, Debug)]
pub struct Reloc {
    /// Section whose bytes are patched.
    pub section: String,
    /// Offset of the field inside that section (pre-concatenation).
    pub offset: u64,
    /// Field kind.
    pub kind: RelocKind,
    /// Referenced symbol.
    pub symbol: String,
    /// Constant addend.
    pub addend: i64,
}
