//! Scale and representation coverage: many translation units through the
//! linker, and configuration switches of every integer width through the
//! descriptor machinery.

use multiverse::mvc::Options;
use multiverse::Program;

#[test]
fn fifty_translation_units_link_and_commit() {
    // One config unit + 49 library units, each with a multiversed
    // function and a call site — the §5 separate-compilation story at a
    // size where descriptor concatenation order actually matters.
    let config = "multiverse bool turbo;".to_string();
    let mut units: Vec<(String, String)> = vec![("config.c".into(), config)];
    for i in 0..49 {
        units.push((
            format!("lib{i}.c"),
            format!(
                "extern multiverse bool turbo;\n\
                 multiverse i64 f{i}(void) {{ if (turbo) {{ return {i} + 1000; }} return {i}; }}\n\
                 i64 call{i}(void) {{ return f{i}(); }}\n"
            ),
        ));
    }
    units.push(("main.c".into(), "i64 main(void) { return 0; }".into()));
    let refs: Vec<(&str, &str)> = units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let program = Program::build(&refs).unwrap();
    let mut w = program.boot();

    let rt = w.rt.as_ref().unwrap();
    assert_eq!(rt.num_variables(), 1);
    assert_eq!(rt.num_functions(), 49);
    assert_eq!(rt.num_callsites(), 49);

    w.set("turbo", 1).unwrap();
    let report = w.commit().unwrap();
    assert_eq!(report.variants_committed, 49);
    for i in [0u64, 7, 23, 48] {
        assert_eq!(w.call(&format!("call{i}"), &[]).unwrap(), i + 1000);
    }
    w.revert().unwrap();
    w.set("turbo", 0).unwrap();
    assert_eq!(w.call("call48", &[]).unwrap(), 48);
}

#[test]
fn switches_of_every_width_select_correctly() {
    // u8/i16/u32/i64 switches: the runtime must read each with its
    // declared width and signedness when evaluating guards.
    let src = r#"
        multiverse u8  s8;
        multiverse i16 s16;
        multiverse u32 s32;
        multiverse i64 s64;

        multiverse i64 f8(void)  { if (s8)  { return 1; } return 0; }
        multiverse i64 f16(void) { if (s16) { return 1; } return 0; }
        multiverse i64 f32(void) { if (s32) { return 1; } return 0; }
        multiverse i64 f64(void) { if (s64) { return 1; } return 0; }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build(&[("t.c", src)]).unwrap();
    let mut w = program.boot();
    for (var, func) in [("s8", "f8"), ("s16", "f16"), ("s32", "f32"), ("s64", "f64")] {
        w.set(var, 1).unwrap();
        w.commit_refs(var).unwrap();
        assert_eq!(w.call(func, &[]).unwrap(), 1, "{var} on");
        w.set(var, 0).unwrap();
        w.commit_refs(var).unwrap();
        assert_eq!(w.call(func, &[]).unwrap(), 0, "{var} off");
    }

    // Width isolation: writing a 1-byte switch must not clobber its
    // neighbours in the BSS (the descriptors carry the width).
    w.set("s8", 1).unwrap();
    w.set("s16", 0).unwrap();
    assert_eq!(w.get("s8").unwrap(), 1);
    assert_eq!(w.get("s16").unwrap(), 0);
}

#[test]
fn negative_switch_values_respect_signedness() {
    // A signed switch with a negative domain value: guards are signed
    // ranges, and a sign-extending read must match them.
    let src = r#"
        multiverse(-1, 0, 1) i32 bias;
        multiverse i64 apply(i64 x) {
            if (bias < 0) { return x - 10; }
            if (bias > 0) { return x + 10; }
            return x;
        }
        i64 main(void) { return 0; }
    "#;
    let program = Program::build_with(&[("t.c", src)], &Options::default()).unwrap();
    let mut w = program.boot();
    for (v, expect) in [(-1i64, 32u64), (0, 42), (1, 52)] {
        w.set("bias", v).unwrap();
        let r = w.commit().unwrap();
        assert_eq!(r.generic_fallbacks, 0, "bias={v} in domain");
        assert_eq!(w.call("apply", &[42]).unwrap(), expect, "bias={v}");
    }
}
