//! Recursive-descent parser for MVC.

use crate::ast::*;
use crate::error::CompileError;
use crate::token::{Kw, Pos, Tok, Token, P};
use crate::types::{EnumDef, Type};

/// The machine intrinsics of MVC. Other `__`-prefixed names are ordinary
/// identifiers (musl uses `__lock` and friends as function names).
pub fn is_intrinsic(name: &str) -> bool {
    matches!(
        name,
        "__xchg"
            | "__cli"
            | "__sti"
            | "__hypercall"
            | "__rdtsc"
            | "__out"
            | "__pause"
            | "__mfence"
            | "__halt"
    )
}

/// Parses a translation unit.
pub fn parse(tokens: &[Token]) -> Result<Unit, CompileError> {
    let mut p = Parser { toks: tokens, i: 0 };
    p.unit()
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.i + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.i].tok.clone();
        if self.i + 1 < self.toks.len() {
            self.i += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        Err(CompileError::Parse {
            msg: msg.into(),
            pos: self.pos(),
        })
    }

    fn eat_p(&mut self, p: P) -> Result<(), CompileError> {
        if self.peek() == &Tok::P(p) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {p:?}, found {:?}", self.peek()))
        }
    }

    fn at_p(&mut self, p: P) -> bool {
        if self.peek() == &Tok::P(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => {
                self.i -= 1;
                self.err(format!("expected identifier, found {other:?}"))
            }
        }
    }

    fn int_lit(&mut self) -> Result<i64, CompileError> {
        let neg = self.at_p(P::Minus);
        match self.bump() {
            Tok::Int(v) => Ok(if neg { -v } else { v }),
            other => {
                self.i -= 1;
                self.err(format!("expected integer, found {other:?}"))
            }
        }
    }

    fn unit(&mut self) -> Result<Unit, CompileError> {
        let mut items = Vec::new();
        while self.peek() != &Tok::Eof {
            items.push(self.item()?);
        }
        Ok(Unit { items })
    }

    fn attrs(&mut self) -> Result<Attrs, CompileError> {
        let mut a = Attrs::default();
        loop {
            match self.peek() {
                Tok::Kw(Kw::Multiverse) => {
                    self.bump();
                    a.multiverse = true;
                    if self.at_p(P::LParen) {
                        // Either a value domain `multiverse(0, 1, 2)` or a
                        // partial-specialization list `multiverse(bind(a, b))`.
                        if matches!(self.peek(), Tok::Ident(s) if s == "bind") {
                            self.bump();
                            self.eat_p(P::LParen)?;
                            let mut names = vec![self.ident()?];
                            while self.at_p(P::Comma) {
                                names.push(self.ident()?);
                            }
                            self.eat_p(P::RParen)?;
                            a.bind = Some(names);
                        } else {
                            let mut dom = vec![self.int_lit()?];
                            while self.at_p(P::Comma) {
                                dom.push(self.int_lit()?);
                            }
                            a.domain = Some(dom);
                        }
                        self.eat_p(P::RParen)?;
                    }
                }
                Tok::Kw(Kw::PvopCc) => {
                    self.bump();
                    a.pvop_cc = true;
                }
                Tok::Kw(Kw::Extern) => {
                    self.bump();
                    a.is_extern = true;
                }
                Tok::Kw(Kw::Static) => {
                    self.bump();
                    a.is_static = true;
                }
                _ => break,
            }
        }
        Ok(a)
    }

    fn base_type(&mut self) -> Result<Type, CompileError> {
        let t = match self.bump() {
            Tok::Kw(Kw::Void) => Type::Void,
            Tok::Kw(Kw::Bool) => Type::Bool,
            Tok::Kw(Kw::I8) => Type::Int {
                width: 1,
                signed: true,
            },
            Tok::Kw(Kw::I16) => Type::Int {
                width: 2,
                signed: true,
            },
            Tok::Kw(Kw::I32) => Type::Int {
                width: 4,
                signed: true,
            },
            Tok::Kw(Kw::I64) => Type::Int {
                width: 8,
                signed: true,
            },
            Tok::Kw(Kw::U8) => Type::Int {
                width: 1,
                signed: false,
            },
            Tok::Kw(Kw::U16) => Type::Int {
                width: 2,
                signed: false,
            },
            Tok::Kw(Kw::U32) => Type::Int {
                width: 4,
                signed: false,
            },
            Tok::Kw(Kw::U64) => Type::Int {
                width: 8,
                signed: false,
            },
            Tok::Kw(Kw::Fnptr) => Type::Fnptr,
            Tok::Kw(Kw::Enum) => Type::Enum(self.ident()?),
            Tok::Ident(name) => Type::Enum(name), // resolved to an enum in sema
            other => {
                self.i -= 1;
                return self.err(format!("expected type, found {other:?}"));
            }
        };
        Ok(t)
    }

    fn full_type(&mut self) -> Result<Type, CompileError> {
        let mut t = self.base_type()?;
        while self.at_p(P::Star) {
            t = Type::Ptr(Box::new(t));
        }
        Ok(t)
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(
                Kw::Void
                    | Kw::Bool
                    | Kw::I8
                    | Kw::I16
                    | Kw::I32
                    | Kw::I64
                    | Kw::U8
                    | Kw::U16
                    | Kw::U32
                    | Kw::U64
                    | Kw::Fnptr
                    | Kw::Enum
            )
        )
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        // enum declaration?
        if self.peek() == &Tok::Kw(Kw::Enum) && matches!(self.peek2(), Tok::Ident(_)) {
            // Look ahead for `{` to distinguish `enum X {` from `enum X var;`.
            let save = self.i;
            self.bump(); // enum
            let name = self.ident()?;
            if self.peek() == &Tok::P(P::LBrace) {
                self.bump();
                let mut items = Vec::new();
                let mut next = 0i64;
                while self.peek() != &Tok::P(P::RBrace) {
                    let item = self.ident()?;
                    if self.at_p(P::Assign) {
                        next = self.int_lit()?;
                    }
                    items.push((item, next));
                    next += 1;
                    if !self.at_p(P::Comma) {
                        break;
                    }
                }
                self.eat_p(P::RBrace)?;
                self.eat_p(P::Semi)?;
                return Ok(Item::Enum(EnumDef { name, items }));
            }
            self.i = save;
        }

        let pos = self.pos();
        let attrs = self.attrs()?;
        let ty = self.full_type()?;
        let name = self.ident()?;

        if self.peek() == &Tok::P(P::LParen) {
            // Function.
            self.bump();
            let mut params = Vec::new();
            if self.peek() == &Tok::Kw(Kw::Void) && self.peek2() == &Tok::P(P::RParen) {
                self.bump();
            }
            while self.peek() != &Tok::P(P::RParen) {
                let pty = self.full_type()?;
                let pname = self.ident()?;
                params.push((pname, pty));
                if !self.at_p(P::Comma) {
                    break;
                }
            }
            self.eat_p(P::RParen)?;
            let body = if self.at_p(P::Semi) {
                None
            } else {
                Some(self.block()?)
            };
            return Ok(Item::Func(Func {
                name,
                ret: ty,
                params,
                body,
                attrs,
                pos,
            }));
        }

        // Global variable.
        let array = if self.at_p(P::LBracket) {
            let n = self.int_lit()?;
            self.eat_p(P::RBracket)?;
            if n < 0 {
                return self.err("negative array length");
            }
            Some(n as u64)
        } else {
            None
        };
        let init = if self.at_p(P::Assign) {
            Some(self.expr()?)
        } else {
            None
        };
        self.eat_p(P::Semi)?;
        Ok(Item::Global(Global {
            name,
            ty,
            array,
            init,
            attrs,
            pos,
        }))
    }

    fn block(&mut self) -> Result<Block, CompileError> {
        self.eat_p(P::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::P(P::RBrace) {
            if self.peek() == &Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        match self.peek() {
            Tok::P(P::LBrace) => Ok(Stmt::Block(self.block()?)),
            Tok::Kw(Kw::If) => {
                self.bump();
                self.eat_p(P::LParen)?;
                let cond = self.expr()?;
                self.eat_p(P::RParen)?;
                let then = self.block_or_single()?;
                let els = if self.peek() == &Tok::Kw(Kw::Else) {
                    self.bump();
                    if self.peek() == &Tok::Kw(Kw::If) {
                        Some(Block {
                            stmts: vec![self.stmt()?],
                        })
                    } else {
                        Some(self.block_or_single()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::Kw(Kw::While) => {
                self.bump();
                self.eat_p(P::LParen)?;
                let cond = self.expr()?;
                self.eat_p(P::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                self.eat_p(P::LParen)?;
                let init = if self.peek() == &Tok::P(P::Semi) {
                    self.bump();
                    None
                } else {
                    Some(Box::new(self.simple_stmt_semi()?))
                };
                let cond = if self.peek() == &Tok::P(P::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_p(P::Semi)?;
                let step = if self.peek() == &Tok::P(P::RParen) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_p(P::RParen)?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let e = if self.peek() == &Tok::P(P::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat_p(P::Semi)?;
                Ok(Stmt::Return(e))
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.eat_p(P::Semi)?;
                Ok(Stmt::Break(pos))
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.eat_p(P::Semi)?;
                Ok(Stmt::Continue(pos))
            }
            _ => self.simple_stmt_semi(),
        }
    }

    /// A local declaration or expression statement, consuming the `;`.
    fn simple_stmt_semi(&mut self) -> Result<Stmt, CompileError> {
        let pos = self.pos();
        if self.is_type_start() {
            let ty = self.full_type()?;
            let name = self.ident()?;
            let init = if self.at_p(P::Assign) {
                Some(self.expr()?)
            } else {
                None
            };
            self.eat_p(P::Semi)?;
            return Ok(Stmt::Local {
                name,
                ty,
                init,
                pos,
            });
        }
        let e = self.expr()?;
        self.eat_p(P::Semi)?;
        Ok(Stmt::Expr(e))
    }

    fn block_or_single(&mut self) -> Result<Block, CompileError> {
        if self.peek() == &Tok::P(P::LBrace) {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    // Expressions: precedence climbing.
    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.bin_expr(0)?;
        let pos = self.pos();
        if self.at_p(P::Assign) {
            let rhs = self.assign_expr()?;
            return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs), pos));
        }
        if self.at_p(P::PlusEq) {
            let rhs = self.assign_expr()?;
            let sum = Expr::Bin(BinOp::Add, Box::new(lhs.clone()), Box::new(rhs), pos);
            return Ok(Expr::Assign(Box::new(lhs), Box::new(sum), pos));
        }
        if self.at_p(P::MinusEq) {
            let rhs = self.assign_expr()?;
            let dif = Expr::Bin(BinOp::Sub, Box::new(lhs.clone()), Box::new(rhs), pos);
            return Ok(Expr::Assign(Box::new(lhs), Box::new(dif), pos));
        }
        Ok(lhs)
    }

    fn bin_prec(p: &P) -> Option<(BinOp, u8)> {
        Some(match p {
            P::OrOr => (BinOp::LogOr, 1),
            P::AndAnd => (BinOp::LogAnd, 2),
            P::Pipe => (BinOp::Or, 3),
            P::Caret => (BinOp::Xor, 4),
            P::Amp => (BinOp::And, 5),
            P::EqEq => (BinOp::Eq, 6),
            P::Ne => (BinOp::Ne, 6),
            P::Lt => (BinOp::Lt, 7),
            P::Le => (BinOp::Le, 7),
            P::Gt => (BinOp::Gt, 7),
            P::Ge => (BinOp::Ge, 7),
            P::Shl => (BinOp::Shl, 8),
            P::Shr => (BinOp::Shr, 8),
            P::Plus => (BinOp::Add, 9),
            P::Minus => (BinOp::Sub, 9),
            P::Star => (BinOp::Mul, 10),
            P::Slash => (BinOp::Div, 10),
            P::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    #[allow(clippy::while_let_loop)] // the match arms are clearer than a while-let chain
    fn bin_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::P(p) => match Self::bin_prec(p) {
                    Some(x) if x.1 >= min_prec => x,
                    _ => break,
                },
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        if self.at_p(P::Minus) {
            return Ok(Expr::Un(UnOp::Neg, Box::new(self.unary_expr()?), pos));
        }
        if self.at_p(P::Bang) {
            return Ok(Expr::Un(UnOp::Not, Box::new(self.unary_expr()?), pos));
        }
        if self.at_p(P::Tilde) {
            return Ok(Expr::Un(UnOp::BitNot, Box::new(self.unary_expr()?), pos));
        }
        if self.at_p(P::Amp) {
            let name = self.ident()?;
            return Ok(Expr::AddrOf(name, pos));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            let pos = self.pos();
            if self.at_p(P::LBracket) {
                let idx = self.expr()?;
                self.eat_p(P::RBracket)?;
                e = Expr::Index(Box::new(e), Box::new(idx), pos);
            } else if self.at_p(P::PlusPlus) {
                let one = Expr::Int(1, pos);
                let sum = Expr::Bin(BinOp::Add, Box::new(e.clone()), Box::new(one), pos);
                e = Expr::Assign(Box::new(e), Box::new(sum), pos);
            } else if self.at_p(P::MinusMinus) {
                let one = Expr::Int(1, pos);
                let dif = Expr::Bin(BinOp::Sub, Box::new(e.clone()), Box::new(one), pos);
                e = Expr::Assign(Box::new(e), Box::new(dif), pos);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let pos = self.pos();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v, pos)),
            Tok::Kw(Kw::True) => Ok(Expr::Int(1, pos)),
            Tok::Kw(Kw::False) => Ok(Expr::Int(0, pos)),
            Tok::P(P::LParen) => {
                let e = self.expr()?;
                self.eat_p(P::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.at_p(P::LParen) {
                    let mut args = Vec::new();
                    while self.peek() != &Tok::P(P::RParen) {
                        args.push(self.expr()?);
                        if !self.at_p(P::Comma) {
                            break;
                        }
                    }
                    self.eat_p(P::RParen)?;
                    if is_intrinsic(&name) {
                        Ok(Expr::Intrinsic { name, args, pos })
                    } else {
                        Ok(Expr::Call {
                            callee: name,
                            args,
                            pos,
                        })
                    }
                } else {
                    Ok(Expr::Ident(name, pos))
                }
            }
            other => {
                self.i -= 1;
                self.err(format!("expected expression, found {other:?}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_ok(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_fig1_style_source() {
        let u = parse_ok(
            r#"
            multiverse bool config_smp;
            i64 lock_word;

            multiverse void spin_irq_lock(void) {
                __cli();
                if (config_smp) {
                    while (__xchg(&lock_word, 1) != 0) { __pause(); }
                }
            }
            "#,
        );
        assert_eq!(u.items.len(), 3);
        let Item::Global(g) = &u.items[0] else {
            panic!()
        };
        assert!(g.attrs.multiverse);
        let Item::Func(f) = &u.items[2] else { panic!() };
        assert!(f.attrs.multiverse);
        assert_eq!(f.params.len(), 0);
        assert!(f.body.is_some());
    }

    #[test]
    fn parses_explicit_domain() {
        let u = parse_ok("multiverse(0, 1, 2) i32 mode;");
        let Item::Global(g) = &u.items[0] else {
            panic!()
        };
        assert_eq!(g.attrs.domain, Some(vec![0, 1, 2]));
    }

    #[test]
    fn parses_enum_and_enum_typed_global() {
        let u = parse_ok("enum hv { HV_NATIVE, HV_XEN = 5, HV_KVM }; multiverse enum hv which;");
        let Item::Enum(e) = &u.items[0] else { panic!() };
        assert_eq!(
            e.items,
            vec![
                ("HV_NATIVE".into(), 0),
                ("HV_XEN".into(), 5),
                ("HV_KVM".into(), 6)
            ]
        );
        let Item::Global(g) = &u.items[1] else {
            panic!()
        };
        assert_eq!(g.ty, Type::Enum("hv".into()));
    }

    #[test]
    fn parses_for_loop_with_increments() {
        let u = parse_ok("void f(void) { for (i64 i = 0; i < 10; i++) { g(i); } }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        let Stmt::For {
            init, cond, step, ..
        } = &f.body.as_ref().unwrap().stmts[0]
        else {
            panic!()
        };
        assert!(init.is_some() && cond.is_some() && step.is_some());
    }

    #[test]
    fn parses_fnptr_and_addr_of() {
        let u = parse_ok("multiverse fnptr op = &impl_a; void f(void) { op(); }");
        let Item::Global(g) = &u.items[0] else {
            panic!()
        };
        assert_eq!(g.ty, Type::Fnptr);
        assert!(matches!(g.init, Some(Expr::AddrOf(_, _))));
    }

    #[test]
    fn intrinsics_are_recognized() {
        let u = parse_ok("void f(void) { __cli(); __out('x'); }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        assert!(matches!(
            &f.body.as_ref().unwrap().stmts[0],
            Stmt::Expr(Expr::Intrinsic { name, .. }) if name == "__cli"
        ));
    }

    #[test]
    fn precedence_binds_correctly() {
        let u = parse_ok("i64 x = 1 + 2 * 3;");
        let Item::Global(g) = &u.items[0] else {
            panic!()
        };
        let Some(Expr::Bin(BinOp::Add, _, rhs, _)) = &g.init else {
            panic!()
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn compound_assignment_desugars() {
        let u = parse_ok("void f(void) { i64 a = 0; a += 3; }");
        let Item::Func(f) = &u.items[0] else { panic!() };
        assert!(matches!(
            &f.body.as_ref().unwrap().stmts[1],
            Stmt::Expr(Expr::Assign(_, _, _))
        ));
    }

    #[test]
    fn else_if_chains() {
        parse_ok("void f(i64 x) { if (x == 1) { } else if (x == 2) { } else { } }");
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse(&lex("void f( {").unwrap()).is_err());
        assert!(parse(&lex("i32 = 4;").unwrap()).is_err());
    }

    #[test]
    fn array_globals() {
        let u = parse_ok("u8 buf[4096];");
        let Item::Global(g) = &u.items[0] else {
            panic!()
        };
        assert_eq!(g.array, Some(4096));
    }
}
