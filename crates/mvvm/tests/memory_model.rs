//! Model-based property tests of the guest memory: reads, writes,
//! protection changes and icache flushes are checked against a simple
//! byte-map reference model.

use mvobj::Prot;
use mvvm::{Memory, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::HashMap;

const BASE: u64 = 0x10000;
const SPAN: u64 = 4 * PAGE_SIZE;

#[derive(Clone, Debug)]
enum MemOp {
    Write { off: u64, data: Vec<u8> },
    Read { off: u64, len: usize },
    Protect { page: u64, prot: u8 },
    Flush { page: u64 },
}

fn arb_op() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (0..SPAN - 64, proptest::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(off, data)| MemOp::Write { off, data }),
        (0..SPAN - 64, 1usize..64).prop_map(|(off, len)| MemOp::Read { off, len }),
        (0u64..4, 0u8..3).prop_map(|(page, prot)| MemOp::Protect { page, prot }),
        (0u64..4).prop_map(|page| MemOp::Flush { page }),
    ]
}

fn prot_of(code: u8) -> Prot {
    match code {
        0 => Prot::R,
        1 => Prot::RW,
        _ => Prot::RX,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every successful write is visible to every later read; writes that
    /// fault leave memory untouched; protection gates writes exactly.
    #[test]
    fn memory_matches_byte_map_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut mem = Memory::new();
        mem.map(BASE, SPAN, Prot::RW);
        let mut model: HashMap<u64, u8> = HashMap::new();
        let mut prot = [Prot::RW; 4];

        for op in &ops {
            match op {
                MemOp::Write { off, data } => {
                    let addr = BASE + off;
                    let first = off / PAGE_SIZE;
                    let last = (off + data.len() as u64 - 1) / PAGE_SIZE;
                    let allowed = (first..=last).all(|p| prot[p as usize].write);
                    let r = mem.write(addr, data);
                    prop_assert_eq!(r.is_ok(), allowed, "write gating at {:#x}", addr);
                    if allowed {
                        for (i, &b) in data.iter().enumerate() {
                            model.insert(addr + i as u64, b);
                        }
                    }
                }
                MemOp::Read { off, len } => {
                    let addr = BASE + off;
                    let got = mem.read_vec(addr, *len).unwrap();
                    for (i, &b) in got.iter().enumerate() {
                        let expect = model.get(&(addr + i as u64)).copied().unwrap_or(0);
                        prop_assert_eq!(b, expect, "byte at {:#x}", addr + i as u64);
                    }
                }
                MemOp::Protect { page, prot: p } => {
                    let pr = prot_of(*p);
                    mem.mprotect(BASE + page * PAGE_SIZE, PAGE_SIZE, pr).unwrap();
                    prot[*page as usize] = pr;
                }
                MemOp::Flush { page } => {
                    let addr = BASE + page * PAGE_SIZE;
                    let before = mem.code_version(addr);
                    mem.flush_icache(addr, 1);
                    prop_assert_eq!(mem.code_version(addr), before + 1);
                }
            }
        }
    }

    /// Failed cross-page writes are atomic: no partial bytes land.
    #[test]
    fn failed_writes_are_atomic(
        data in proptest::collection::vec(any::<u8>(), 2..32),
        tail in 1u64..16,
    ) {
        let mut mem = Memory::new();
        mem.map(BASE, 2 * PAGE_SIZE, Prot::RW);
        mem.mprotect(BASE + PAGE_SIZE, PAGE_SIZE, Prot::R).unwrap();
        // Straddle the boundary so the second page faults.
        let addr = BASE + PAGE_SIZE - tail.min(data.len() as u64 - 1);
        let before = mem.read_vec(addr, data.len()).unwrap();
        prop_assert!(mem.write(addr, &data).is_err());
        prop_assert_eq!(mem.read_vec(addr, data.len()).unwrap(), before);
    }
}
