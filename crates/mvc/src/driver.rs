//! The compiler driver: source → object, and multi-unit source → linked
//! executable.
//!
//! Since the staged-pipeline refactor this module is a thin façade: it
//! owns [`Options`] and forwards to [`crate::pipeline::Pipeline`], which
//! runs the lower → mv-expand → optimize → merge → codegen stages with
//! timing, tracing, parallelism and the compile cache.

use crate::error::{CompileError, Warning};
use crate::pipeline::Pipeline;
use mvobj::{Executable, Object};
use std::collections::HashMap;

/// Compilation options selecting the paper's binding modes.
#[derive(Clone, Debug)]
pub struct Options {
    /// Enable the multiverse pass and descriptor emission (binding C).
    /// With `false`, switches stay ordinary globals evaluated dynamically
    /// (binding B).
    pub multiverse: bool,
    /// Fix these globals to compile-time constants in *every* function —
    /// the `#ifdef` build (binding A). Reads are replaced; the variables
    /// keep their storage.
    pub static_config: HashMap<String, i64>,
    /// Maximum variants per function before
    /// [`CompileError::VariantExplosion`].
    pub variant_limit: usize,
    /// Run the optimizer (constant folding, DCE, CFG cleanup).
    pub optimize: bool,
    /// Inline small non-multiverse functions (§7.1: multiversed
    /// functions are never inlined; everything else may be).
    pub inline: bool,
    /// Worker threads for the optimize/codegen pipeline stages: 1 =
    /// sequential, 0 = all available cores. Output is byte-identical
    /// for every value.
    pub jobs: usize,
    /// Consult (and populate) the process-wide compile cache keyed by
    /// (pre-expand body hash, switch-domain signature).
    pub cache: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            multiverse: true,
            static_config: HashMap::new(),
            variant_limit: 64,
            optimize: true,
            inline: true,
            jobs: 1,
            cache: true,
        }
    }
}

impl Options {
    /// Binding B: plain dynamic evaluation, no multiverse machinery.
    pub fn dynamic() -> Options {
        Options {
            multiverse: false,
            ..Options::default()
        }
    }

    /// Binding A: `#ifdef`-style static configuration.
    pub fn static_build(config: &[(&str, i64)]) -> Options {
        Options {
            multiverse: false,
            static_config: config.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            ..Options::default()
        }
    }
}

/// Compiles one translation unit to a relocatable object.
pub fn compile(
    source: &str,
    unit_name: &str,
    opts: &Options,
) -> Result<(Object, Vec<Warning>), CompileError> {
    Pipeline::new(opts.clone()).compile_unit(source, unit_name)
}

/// Compiles several translation units and links them into an executable.
pub fn compile_and_link(
    units: &[(&str, &str)],
    opts: &Options,
) -> Result<(Executable, Vec<Warning>), CompileError> {
    Pipeline::new(opts.clone()).build(units)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvvm::Machine;

    #[test]
    fn end_to_end_arithmetic() {
        let src = r#"
            i64 fib(i64 n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            i64 main(void) { i64 r = fib(10); __halt(); return r; }
        "#;
        // `__halt` stops the machine; main's return value is in r0 after
        // the returns unwound... halt happens before return, so compute
        // into r0 via the call result directly.
        let src2 = r#"
            i64 fib(i64 n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            i64 main(void) { return fib(10); }
        "#;
        let _ = src;
        let (exe, _) = compile_and_link(&[("t", src2)], &Options::default()).unwrap();
        let mut m = Machine::boot(&exe);
        let main = exe.symbol("main").unwrap();
        assert_eq!(m.call(main, &[]).unwrap(), 55);
    }

    #[test]
    fn globals_arrays_and_loops() {
        let src = r#"
            u64 tab[16];
            i64 main(void) {
                for (i64 i = 0; i < 16; i++) { tab[i] = i * i; }
                i64 sum = 0;
                for (i64 i = 0; i < 16; i++) { sum += tab[i]; }
                return sum;
            }
        "#;
        let (exe, _) = compile_and_link(&[("t", src)], &Options::default()).unwrap();
        let mut m = Machine::boot(&exe);
        let main = exe.symbol("main").unwrap();
        assert_eq!(m.call(main, &[]).unwrap(), 1240);
    }

    #[test]
    fn static_build_fixes_switches() {
        let src = r#"
            multiverse bool feature;
            i64 main(void) { if (feature) { return 1; } return 2; }
        "#;
        let on = Options::static_build(&[("feature", 1)]);
        let off = Options::static_build(&[("feature", 0)]);
        let (exe_on, _) = compile_and_link(&[("t", src)], &on).unwrap();
        let (exe_off, _) = compile_and_link(&[("t", src)], &off).unwrap();
        let mut m = Machine::boot(&exe_on);
        assert_eq!(m.call(exe_on.entry, &[]).unwrap(), 1);
        let mut m = Machine::boot(&exe_off);
        assert_eq!(m.call(exe_off.entry, &[]).unwrap(), 2);
        // Static builds carry no descriptors.
        assert_eq!(exe_on.section(mvobj::SEC_MV_FUNCTIONS), (0, 0));
    }

    #[test]
    fn multiverse_build_emits_descriptors() {
        let src = r#"
            multiverse bool a;
            multiverse i64 use_a(void) { if (a) { return 1; } return 0; }
            i64 main(void) { return use_a(); }
        "#;
        let (exe, _) = compile_and_link(&[("t", src)], &Options::default()).unwrap();
        let (_, vsz) = exe.section(mvobj::SEC_MV_VARIABLES);
        let (_, fsz) = exe.section(mvobj::SEC_MV_FUNCTIONS);
        let (_, csz) = exe.section(mvobj::SEC_MV_CALLSITES);
        assert_eq!(vsz, 32);
        assert!(fsz >= 48 + 2 * 32 + 2 * 16, "two variants with guards");
        assert_eq!(csz, 16, "one call site");
        // Variant symbols exist.
        assert!(exe.symbol("use_a.a=0").is_some());
        assert!(exe.symbol("use_a.a=1").is_some());
    }

    #[test]
    fn dynamic_build_emits_nothing() {
        let src = r#"
            multiverse bool a;
            multiverse i64 f(void) { if (a) { return 1; } return 0; }
            i64 main(void) { return f(); }
        "#;
        let (exe, _) = compile_and_link(&[("t", src)], &Options::dynamic()).unwrap();
        assert_eq!(exe.section(mvobj::SEC_MV_VARIABLES), (0, 0));
        assert!(exe.symbol("f.a=1").is_none());
    }

    #[test]
    fn separate_compilation_links() {
        let config = "multiverse bool dbg;";
        let lib = r#"
            extern multiverse bool dbg;
            multiverse i64 get(void) { if (dbg) { return 42; } return 7; }
        "#;
        let main = r#"
            extern i64 get(void);
            i64 main(void) { return get(); }
        "#;
        let (exe, _) = compile_and_link(
            &[("config.c", config), ("lib.c", lib), ("main.c", main)],
            &Options::default(),
        )
        .unwrap();
        let mut m = Machine::boot(&exe);
        assert_eq!(m.call(exe.entry, &[]).unwrap(), 7);
        // The switch descriptor comes from the defining unit only.
        assert_eq!(exe.section(mvobj::SEC_MV_VARIABLES).1, 32);
    }

    #[test]
    fn behaviour_is_identical_across_bindings() {
        // Soundness sanity: the same program computes the same result in
        // dynamic and multiverse builds (before any commit).
        let src = r#"
            multiverse(0,1,2) i32 mode;
            multiverse i64 classify(i64 x) {
                if (mode == 0) { return x * 2; }
                if (mode == 1) { return x + 100; }
                return x - 1;
            }
            i64 main(void) {
                mode = 1;
                return classify(5);
            }
        "#;
        for opts in [Options::default(), Options::dynamic()] {
            let (exe, _) = compile_and_link(&[("t", src)], &opts).unwrap();
            let mut m = Machine::boot(&exe);
            assert_eq!(m.call(exe.entry, &[]).unwrap(), 105, "{opts:?}");
        }
    }

    #[test]
    fn unoptimized_build_still_runs() {
        let src = "i64 main(void) { i64 x = 3; if (x > 1) { x = x * 7; } return x; }";
        let opts = Options {
            optimize: false,
            ..Options::default()
        };
        let (exe, _) = compile_and_link(&[("t", src)], &opts).unwrap();
        let mut m = Machine::boot(&exe);
        assert_eq!(m.call(exe.entry, &[]).unwrap(), 21);
    }

    #[test]
    fn warning_surfaces_switch_write() {
        let src = r#"
            multiverse bool a;
            multiverse void f(void) { if (a) { a = 0; } }
            i64 main(void) { f(); return 0; }
        "#;
        let (_, warnings) = compile_and_link(&[("t", src)], &Options::default()).unwrap();
        assert!(!warnings.is_empty());
    }

    #[test]
    fn recursion_and_params_spill_correctly() {
        // Forces live temps across calls (spill/reload path).
        let src = r#"
            i64 mix(i64 a, i64 b) { return a * 31 + b; }
            i64 chain(i64 n) {
                if (n == 0) { return 1; }
                i64 left = chain(n - 1);
                i64 right = mix(left, n);
                return left + right;
            }
            i64 main(void) { return chain(5); }
        "#;
        let (exe, _) = compile_and_link(&[("t", src)], &Options::default()).unwrap();
        let mut m = Machine::boot(&exe);
        // Reference computed in Rust:
        fn mix(a: i64, b: i64) -> i64 {
            a * 31 + b
        }
        fn chain(n: i64) -> i64 {
            if n == 0 {
                return 1;
            }
            let left = chain(n - 1);
            left + mix(left, n)
        }
        assert_eq!(m.call(exe.entry, &[]).unwrap() as i64, chain(5));
    }
}

#[cfg(test)]
mod static_tests {
    use super::*;
    use mvvm::Machine;

    #[test]
    fn static_globals_do_not_collide_across_units() {
        let unit = |ret: i64| {
            format!(
                "static i64 counter;\n\
                 static i64 helper(void) {{ counter = counter + 1; return {ret}; }}\n"
            )
        };
        let a = format!("{} i64 use_a(void) {{ return helper(); }}", unit(1));
        let b = format!(
            "{} i64 use_b(void) {{ return helper(); }} i64 main(void) {{ return 0; }}",
            unit(2)
        );
        let (exe, _) = compile_and_link(&[("a.c", &a), ("b.c", &b)], &Options::default()).unwrap();
        let mut m = Machine::boot(&exe);
        assert_eq!(m.call(exe.symbol("use_a").unwrap(), &[]).unwrap(), 1);
        assert_eq!(m.call(exe.symbol("use_b").unwrap(), &[]).unwrap(), 2);
        // The statics are not exported.
        assert!(exe.symbol("counter").is_none());
        assert!(exe.symbol("helper").is_none());
    }
}
