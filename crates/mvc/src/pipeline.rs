//! The staged compile pipeline.
//!
//! The driver used to be one monolithic function; this module makes the
//! §3 structure explicit. Every unit flows through five named stages:
//!
//! ```text
//!   lower ──► mv-expand ──► optimize ──► merge ──► codegen
//!   parse,    switch          clone+fold   content-    generic +
//!   lower,    discovery,      per assign-  addressed   variant
//!   inline    cross product,  ment (par-   dedup +     machine code,
//!             cache lookup    allel, -j)   guards      object assembly
//! ```
//!
//! The [`Pipeline`] owns per-stage wall-clock timing and counters
//! ([`PipelineStats`]), an optional [`TraceRing`] that receives
//! `stage_begin`/`stage_end`/`cache_query` events for mvtrace's sinks,
//! and the knobs from [`Options`]:
//!
//! * **Parallelism** (`Options::jobs`): the optimize and codegen stages
//!   fan their per-function / per-assignment work items out over a
//!   scoped `std::thread` pool. Work is claimed by atomic index and the
//!   results are collected *by index*, so the output is byte-identical
//!   to the sequential path regardless of scheduling.
//! * **Content-addressed merge**: structurally identical optimized
//!   clones are bucketed by the FNV-1a hash of their canonical key
//!   (full-key compare within a bucket), replacing the seed's pairwise
//!   O(n²) scan. See [`crate::mv::merge_clones`].
//! * **Compile cache** (`Options::cache`): a process-wide map keyed by
//!   (pre-expand canonical body key, switch-domain signature). The
//!   canonical key excludes the function name, so the cached variant
//!   set is stored name-independently (suffix + name-cleared IR) and a
//!   hit re-binds it to the requesting function — re-lowered bodies and
//!   repeated driver invocations skip the whole expand/optimize/merge
//!   middle of the pipeline.

use crate::codegen::{gen_function, GenFn};
use crate::driver::Options;
use crate::error::{CompileError, Warning};
use crate::ir::{FuncIr, Inst, IrBin, Operand};
use crate::lexer::lex;
use crate::lower::{lower_unit, Ctx, Lowered};
use crate::mv::{self, ExpandPlan, SpecializedBody, VariantInfo};
use crate::parser::parse;
use crate::passes::optimize;
use crate::types::Type;
use mvobj::descriptor::{
    emit_callsite, emit_function, emit_variable, CallsiteDescSym, FnDescSym, GuardSym, VarDescSym,
    VariantDescSym,
};
use mvobj::{link, Executable, Layout, Object};
use mvtrace::{Event, EventKind, TraceRing};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Accumulated wall time and item count for one named stage.
#[derive(Clone, Copy, Debug)]
pub struct StageStats {
    /// Stage name (`lower`, `mv-expand`, `optimize`, `merge`, `codegen`).
    pub name: &'static str,
    /// Total wall-clock nanoseconds spent in the stage.
    pub wall_ns: u64,
    /// Total work items the stage processed (functions, clones, …).
    pub items: u64,
}

/// Counters and timings the pipeline gathers; accumulated across every
/// unit compiled through one [`Pipeline`].
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Per-stage totals, in stage order of first execution.
    pub stages: Vec<StageStats>,
    /// Functions compiled.
    pub functions: u64,
    /// Of those, functions that produced at least one variant.
    pub mv_functions: u64,
    /// Raw specialized clones materialized (pre-merge; cache hits
    /// materialize none).
    pub clones: u64,
    /// Variants emitted post-merge (including cache-replayed ones).
    pub variants: u64,
    /// Compile-cache hits.
    pub cache_hits: u64,
    /// Compile-cache misses (entry inserted after merge).
    pub cache_misses: u64,
    /// Variants replayed from the cache instead of re-specialized.
    pub cached_variants: u64,
    /// Effective worker count of the parallel stages.
    pub jobs: usize,
}

impl PipelineStats {
    fn add_stage(&mut self, name: &'static str, wall_ns: u64, items: u64) {
        match self.stages.iter_mut().find(|s| s.name == name) {
            Some(s) => {
                s.wall_ns += wall_ns;
                s.items += items;
            }
            None => self.stages.push(StageStats {
                name,
                wall_ns,
                items,
            }),
        }
    }

    /// Total wall time across all stages.
    pub fn total_wall_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ns).sum()
    }

    /// Fraction of materialized clones eliminated by the merge stage
    /// (Fig. 2's sharing); 0 when nothing was cloned.
    pub fn merge_rate(&self) -> f64 {
        let merged_from = self.clones + self.cached_variants;
        if merged_from == 0 || self.variants >= self.clones {
            // All-cached builds have no meaningful clone count.
            if self.clones == 0 {
                return 0.0;
            }
        }
        1.0 - self.variants.saturating_sub(self.cached_variants) as f64 / self.clones.max(1) as f64
    }

    /// Human-readable multi-line report (the `mvcc build --stats` body).
    pub fn report(&self) -> String {
        fn ms(ns: u64) -> String {
            format!("{:.3}", ns as f64 / 1e6)
        }
        let mut out = String::new();
        out.push_str(&format!(
            "pipeline: {} stage(s), jobs={}\n",
            self.stages.len(),
            self.jobs
        ));
        out.push_str("  stage       wall (ms)      items\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<10} {:>10} {:>10}\n",
                s.name,
                ms(s.wall_ns),
                s.items
            ));
        }
        out.push_str(&format!(
            "  {:<10} {:>10}\n",
            "total",
            ms(self.total_wall_ns())
        ));
        out.push_str(&format!(
            "functions: {} ({} multiversed)\n",
            self.functions, self.mv_functions
        ));
        out.push_str(&format!(
            "clones: {} -> variants: {} (merge rate {:.1}%)\n",
            self.clones,
            self.variants,
            self.merge_rate() * 100.0
        ));
        out.push_str(&format!(
            "cache: {} hit(s), {} miss(es), {} variant(s) replayed\n",
            self.cache_hits, self.cache_misses, self.cached_variants
        ));
        out
    }
}

// ---------------------------------------------------------------------
// Compile cache
// ---------------------------------------------------------------------

/// (pre-expand canonical body key, switch-domain signature).
type CacheKey = (String, String);

/// One variant stored name-independently: the mangled suffix (e.g.
/// `.A=0.B=0-1`) plus the body with its name cleared. A hit re-binds
/// both to the requesting function's symbol.
#[derive(Clone)]
struct CachedVariant {
    suffix: String,
    ir: FuncIr,
    guard_sets: Vec<Vec<GuardSym>>,
    assignments: Vec<Vec<(String, i64)>>,
}

#[derive(Clone, Default)]
struct CacheEntry {
    variants: Vec<CachedVariant>,
}

/// The process-wide compile cache. Keyed by content, so it is safe to
/// share across units, drivers, and threads; entries are never
/// invalidated (a changed body is a different key).
fn global_cache() -> &'static Mutex<HashMap<CacheKey, CacheEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<CacheKey, CacheEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops every cached entry (test isolation / memory pressure).
pub fn clear_compile_cache() {
    global_cache().lock().unwrap().clear();
}

/// Number of entries currently cached (tests/tooling).
pub fn compile_cache_len() -> usize {
    global_cache().lock().unwrap().len()
}

// ---------------------------------------------------------------------
// Parallel map
// ---------------------------------------------------------------------

/// Maps `f` over `items` on `workers` scoped threads.
///
/// Work is claimed by a shared atomic index and each result lands in
/// the slot of its input, so the returned vector is in input order —
/// callers observe identical results for any worker count, which is
/// what makes `-j N` byte-identical to `-j 1`.
fn parallel_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let input: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let output: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = input[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each index is claimed exactly once");
                *output[i].lock().unwrap() = Some(f(item));
            });
        }
    });
    output
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("worker filled its slot"))
        .collect()
}

/// Resolves `Options::jobs`: 0 means "all available cores".
fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    }
}

// ---------------------------------------------------------------------
// Shared lowering helpers (moved from the monolithic driver)
// ---------------------------------------------------------------------

/// Demotes a just-defined symbol to unit-local visibility (`static`).
fn mark_local(obj: &mut Object, name: &str) {
    if let Some(sym) = obj.symbols.iter_mut().rev().find(|s| s.name == name) {
        sym.global = false;
    }
}

/// Replaces reads of statically configured globals with constants —
/// the compile-time binding of Fig. 1 A.
fn apply_static_config(f: &mut FuncIr, config: &HashMap<String, i64>) {
    if config.is_empty() {
        return;
    }
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            if let Inst::LoadGlobal { dst, global, .. } = inst {
                if let Some(&v) = config.get(global) {
                    *inst = Inst::Bin {
                        op: IrBin::Add,
                        dst: *dst,
                        a: Operand::Const(v),
                        b: Operand::Const(0),
                    };
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// The pipeline
// ---------------------------------------------------------------------

/// How the mv middle stages handle one function.
enum MvWork {
    /// Not multiversed, or no switches referenced: generic body only.
    None,
    /// Needs clone + fold + merge; `cache_key` is `Some` when the
    /// result should be inserted into the compile cache afterwards.
    Expand {
        plan: ExpandPlan,
        cache_key: Option<CacheKey>,
    },
    /// Compile-cache hit: variants replayed, expand/optimize/merge
    /// skipped for this function.
    Cached(Vec<VariantInfo>),
}

/// The merge stage's per-function output.
struct FnVariants {
    variants: Vec<VariantInfo>,
}

/// Per-function state threaded between stages.
struct FnWork {
    name: String,
    /// Pre-optimize body (post static-config); replaced by the
    /// optimized body after the optimize stage.
    generic: FuncIr,
    mv: MvWork,
}

/// The staged compiler. One instance accumulates stats (and optionally
/// a trace) across every unit it compiles.
pub struct Pipeline {
    opts: Options,
    stats: PipelineStats,
    tracer: Option<TraceRing>,
}

impl Pipeline {
    /// Creates a pipeline with the given options.
    pub fn new(opts: Options) -> Pipeline {
        let stats = PipelineStats {
            jobs: effective_jobs(opts.jobs),
            ..PipelineStats::default()
        };
        Pipeline {
            opts,
            stats,
            tracer: None,
        }
    }

    /// Installs a bounded event ring; subsequent compiles emit
    /// `stage_begin`/`stage_end`/`cache_query` events into it (only
    /// while [`mvtrace::enabled`] is on, mirroring the runtime).
    pub fn enable_tracing(&mut self, cap: usize) {
        self.tracer = Some(TraceRing::new(cap));
    }

    /// Uninstalls the ring and returns everything it buffered.
    pub fn take_trace(&mut self) -> Vec<Event> {
        self.tracer.take().map(|r| r.snapshot()).unwrap_or_default()
    }

    /// The accumulated counters and timings.
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    #[inline]
    fn emit(&mut self, kind: impl FnOnce() -> EventKind) {
        if let Some(ring) = self.tracer.as_mut() {
            if mvtrace::enabled() {
                ring.record(kind());
            }
        }
    }

    /// Runs `f` as the named stage: emits the span events and records
    /// wall time plus the item count `items` extracts from the result.
    fn run_stage<T>(
        &mut self,
        name: &'static str,
        f: impl FnOnce(&mut Pipeline) -> T,
        items: impl Fn(&T) -> u64,
    ) -> T {
        self.emit(|| EventKind::StageBegin { stage: name });
        let t0 = Instant::now();
        let out = f(self);
        let wall = t0.elapsed().as_nanos() as u64;
        let n = items(&out);
        self.stats.add_stage(name, wall, n);
        self.emit(|| EventKind::StageEnd {
            stage: name,
            items: n,
        });
        out
    }

    /// Compiles one translation unit to a relocatable object.
    pub fn compile_unit(
        &mut self,
        source: &str,
        unit_name: &str,
    ) -> Result<(Object, Vec<Warning>), CompileError> {
        let opts = self.opts.clone();
        let jobs = effective_jobs(opts.jobs);
        let mut warnings: Vec<Warning> = Vec::new();

        // Stage 1: lower — parse, lower, inline.
        let lowered: Lowered = self.run_stage(
            "lower",
            |_| -> Result<Lowered, CompileError> {
                let unit = parse(&lex(source)?)?;
                let mut lowered = lower_unit(&unit)?;
                if opts.inline && opts.optimize {
                    crate::passes::inline::run_unit(&mut lowered.funcs);
                }
                Ok(lowered)
            },
            |r| r.as_ref().map(|l| l.funcs.len() as u64).unwrap_or(0),
        )?;
        let ctx = lowered.ctx;
        self.stats.functions += lowered.funcs.len() as u64;

        // Stage 2: mv-expand — static config, switch discovery, cross
        // product, cache lookup. Sequential: this is the cheap,
        // error-reporting part.
        let mut work: Vec<FnWork> = self.run_stage(
            "mv-expand",
            |p| -> Result<Vec<FnWork>, CompileError> {
                let mut out = Vec::with_capacity(lowered.funcs.len());
                for f in &lowered.funcs {
                    let mut generic = f.clone();
                    apply_static_config(&mut generic, &opts.static_config);
                    let plan = if opts.multiverse {
                        mv::plan_expansion(&generic, &ctx, opts.variant_limit)?
                    } else {
                        None
                    };
                    let mv_work = match plan {
                        None => MvWork::None,
                        Some(plan) => {
                            warnings.extend(plan.warnings.iter().cloned());
                            if plan.switches.is_empty() {
                                MvWork::None
                            } else if opts.cache {
                                let key = (generic.canonical_key(), plan.domain_signature());
                                let hit = global_cache().lock().unwrap().get(&key).cloned();
                                match hit {
                                    Some(entry) => {
                                        let n = entry.variants.len() as u64;
                                        p.emit(|| EventKind::CacheQuery {
                                            hit: true,
                                            variants: n,
                                        });
                                        p.stats.cache_hits += 1;
                                        p.stats.cached_variants += n;
                                        let variants = entry
                                            .variants
                                            .into_iter()
                                            .map(|cv| {
                                                let name = format!("{}{}", generic.name, cv.suffix);
                                                let mut ir = cv.ir;
                                                ir.name = name.clone();
                                                ir.attrs = generic.attrs.clone();
                                                VariantInfo {
                                                    name,
                                                    ir,
                                                    guard_sets: cv.guard_sets,
                                                    assignments: cv.assignments,
                                                }
                                            })
                                            .collect();
                                        MvWork::Cached(variants)
                                    }
                                    None => {
                                        p.emit(|| EventKind::CacheQuery {
                                            hit: false,
                                            variants: 0,
                                        });
                                        p.stats.cache_misses += 1;
                                        MvWork::Expand {
                                            plan,
                                            cache_key: Some(key),
                                        }
                                    }
                                }
                            } else {
                                MvWork::Expand {
                                    plan,
                                    cache_key: None,
                                }
                            }
                        }
                    };
                    out.push(FnWork {
                        name: f.name.clone(),
                        generic,
                        mv: mv_work,
                    });
                }
                Ok(out)
            },
            |r| {
                r.as_ref()
                    .map(|w| {
                        w.iter()
                            .map(|f| match &f.mv {
                                MvWork::Expand { plan, .. } => plan.assignments.len() as u64,
                                _ => 0,
                            })
                            .sum()
                    })
                    .unwrap_or(0)
            },
        )?;

        // Stage 3: optimize — the expensive middle. One work item per
        // generic body plus one per assignment clone, fanned out over
        // the thread pool and collected by index.
        enum Job {
            Generic(usize),
            Clone(usize, usize),
        }
        enum JobOut {
            Generic(FuncIr),
            Clone(SpecializedBody),
        }
        let mut clone_results: Vec<Vec<Option<SpecializedBody>>> = work
            .iter()
            .map(|f| match &f.mv {
                MvWork::Expand { plan, .. } => (0..plan.assignments.len()).map(|_| None).collect(),
                _ => Vec::new(),
            })
            .collect();
        {
            let mut job_list: Vec<Job> = Vec::new();
            for (i, f) in work.iter().enumerate() {
                if opts.optimize {
                    job_list.push(Job::Generic(i));
                }
                if let MvWork::Expand { plan, .. } = &f.mv {
                    for a in 0..plan.assignments.len() {
                        job_list.push(Job::Clone(i, a));
                    }
                }
            }
            let n_jobs = job_list.len() as u64;
            let work_ref = &work;
            let outs: Vec<(Job, JobOut)> = self.run_stage(
                "optimize",
                move |_| {
                    parallel_map(jobs, job_list, |job| {
                        let out = match &job {
                            Job::Generic(i) => {
                                let mut g = work_ref[*i].generic.clone();
                                optimize(&mut g);
                                JobOut::Generic(g)
                            }
                            Job::Clone(i, a) => {
                                let MvWork::Expand { plan, .. } = &work_ref[*i].mv else {
                                    unreachable!("clone job for non-expand function")
                                };
                                JobOut::Clone(mv::specialize_clone(
                                    &work_ref[*i].generic,
                                    plan.assignments[*a].clone(),
                                ))
                            }
                        };
                        (job, out)
                    })
                },
                move |_| n_jobs,
            );
            for (job, out) in outs {
                match (job, out) {
                    (Job::Generic(i), JobOut::Generic(g)) => work[i].generic = g,
                    (Job::Clone(i, a), JobOut::Clone(sb)) => {
                        self.stats.clones += 1;
                        clone_results[i][a] = Some(sb);
                    }
                    _ => unreachable!("job/result kinds always match"),
                }
            }
        }

        // Stage 4: merge — content-addressed dedup + guard synthesis,
        // and cache population on misses.
        let merged: Vec<FnVariants> = self.run_stage(
            "merge",
            |p| {
                let mut out = Vec::with_capacity(work.len());
                for (i, f) in work.iter().enumerate() {
                    let variants = match &f.mv {
                        MvWork::None => Vec::new(),
                        MvWork::Cached(vs) => vs.clone(),
                        MvWork::Expand { plan, cache_key } => {
                            let bodies: Vec<SpecializedBody> = clone_results[i]
                                .iter_mut()
                                .map(|s| s.take().expect("optimize stage filled every slot"))
                                .collect();
                            let groups = mv::merge_clones(&bodies);
                            let variants =
                                mv::assemble_variants(&f.name, &plan.switches, &bodies, &groups);
                            if let Some(key) = cache_key {
                                let entry = CacheEntry {
                                    variants: variants
                                        .iter()
                                        .map(|v| CachedVariant {
                                            suffix: v.name[f.name.len()..].to_string(),
                                            ir: {
                                                let mut ir = v.ir.clone();
                                                ir.name.clear();
                                                ir
                                            },
                                            guard_sets: v.guard_sets.clone(),
                                            assignments: v.assignments.clone(),
                                        })
                                        .collect(),
                                };
                                global_cache().lock().unwrap().insert(key.clone(), entry);
                            }
                            variants
                        }
                    };
                    p.stats.variants += variants.len() as u64;
                    if !variants.is_empty() {
                        p.stats.mv_functions += 1;
                    }
                    out.push(FnVariants { variants });
                }
                out
            },
            |r| r.iter().map(|f| f.variants.len() as u64).sum(),
        );

        // Stage 5: codegen — machine code for generics and variants
        // (parallel, pure), then sequential object assembly.
        let obj = self.run_stage(
            "codegen",
            |_| -> Result<Object, CompileError> {
                // (fn index, None = generic | Some(variant index)).
                let mut gen_jobs: Vec<(usize, Option<usize>)> = Vec::new();
                for (i, f) in merged.iter().enumerate() {
                    gen_jobs.push((i, None));
                    for v in 0..f.variants.len() {
                        gen_jobs.push((i, Some(v)));
                    }
                }
                let work_ref = &work;
                let merged_ref = &merged;
                let ctx_ref = &ctx;
                type GenResult = ((usize, Option<usize>), Result<GenFn, CompileError>);
                let results: Vec<GenResult> = parallel_map(jobs, gen_jobs, |(i, v)| {
                    let ir = match v {
                        None => &work_ref[i].generic,
                        Some(v) => &merged_ref[i].variants[v].ir,
                    };
                    ((i, v), gen_function(ir, ctx_ref, opts.multiverse))
                });
                let mut generics: Vec<Option<GenFn>> = (0..work.len()).map(|_| None).collect();
                let mut vgens: Vec<Vec<Option<GenFn>>> = merged
                    .iter()
                    .map(|f| (0..f.variants.len()).map(|_| None).collect())
                    .collect();
                for ((i, v), r) in results {
                    let g = r?;
                    match v {
                        None => generics[i] = Some(g),
                        Some(v) => vgens[i][v] = Some(g),
                    }
                }

                assemble_object(
                    unit_name,
                    &ctx,
                    &work,
                    &merged,
                    &generics,
                    &vgens,
                    opts.multiverse,
                )
            },
            |r| r.as_ref().map(|o| o.symbols.len() as u64).unwrap_or(0),
        )?;

        // Unit-level, order-preserving warning dedup: a diagnostic is
        // reported once no matter how many clones or replays touch it.
        let mut seen: HashSet<Warning> = HashSet::new();
        warnings.retain(|w| seen.insert(w.clone()));

        Ok((obj, warnings))
    }

    /// Compiles several units and links them into an executable.
    pub fn build(
        &mut self,
        units: &[(&str, &str)],
    ) -> Result<(Executable, Vec<Warning>), CompileError> {
        let mut objects = Vec::new();
        let mut warnings = Vec::new();
        for (name, src) in units {
            let (o, w) = self.compile_unit(src, name)?;
            objects.push(o);
            warnings.extend(w);
        }
        let exe =
            link(&objects, &Layout::default()).map_err(|e| CompileError::Link(e.to_string()))?;
        Ok((exe, warnings))
    }
}

/// Sequential object assembly: globals, code, descriptors — emission
/// order is fully determined by function order and `BTreeMap` key
/// order, which is what keeps objects byte-identical across `-j`.
#[allow(clippy::too_many_arguments)]
fn assemble_object(
    unit_name: &str,
    ctx: &Ctx,
    work: &[FnWork],
    merged: &[FnVariants],
    generics: &[Option<GenFn>],
    vgens: &[Vec<Option<GenFn>>],
    multiverse: bool,
) -> Result<Object, CompileError> {
    let mut obj = Object::new(unit_name);

    // Globals: deterministic order.
    let globals: BTreeMap<&String, _> = ctx.globals.iter().collect();
    for (name, g) in &globals {
        if g.attrs.is_extern {
            continue;
        }
        if let Some(target) = &g.init_addr_of {
            obj.define_data_ptr(name, target);
        } else if let Some(v) = g.init_const {
            let bytes = (v as u64).to_le_bytes();
            obj.define_data(name, &bytes[..g.ty.size() as usize]);
        } else {
            obj.define_bss(name, g.size().max(1));
        }
        if g.attrs.is_static {
            // `static` globals are unit-local: two units may define the
            // same name without a link-time collision.
            mark_local(&mut obj, name);
        }
    }

    // Which functions have their address taken (potential fn-ptr
    // targets)? They get registration descriptors so the runtime can
    // inline them at indirect sites.
    let mut addr_taken: HashSet<String> = HashSet::new();
    for g in ctx.globals.values() {
        if let Some(t) = &g.init_addr_of {
            addr_taken.insert(t.clone());
        }
    }
    for f in work {
        for b in &f.generic.blocks {
            for i in &b.insts {
                if let Inst::AddrOf { symbol, .. } = i {
                    if ctx.funcs.contains_key(symbol) {
                        addr_taken.insert(symbol.clone());
                    }
                }
            }
        }
    }

    // Emit code and gather call-site records.
    let mut all_mv_sites: Vec<(String, u32, String)> = Vec::new(); // (caller, off, callee)
    let mut all_ptr_sites: Vec<(String, u32, String)> = Vec::new();
    for (i, f) in work.iter().enumerate() {
        let gen = generics[i].as_ref().expect("generic codegen ran");
        obj.add_code(&f.name, &gen.blob);
        if ctx
            .funcs
            .get(&f.name)
            .is_some_and(|sig| sig.attrs.is_static)
        {
            mark_local(&mut obj, &f.name);
        }
        for (off, callee) in &gen.mv_callsites {
            all_mv_sites.push((f.name.clone(), *off, callee.clone()));
        }
        for (off, ptr) in &gen.ptr_callsites {
            all_ptr_sites.push((f.name.clone(), *off, ptr.clone()));
        }
        for (v, variant) in merged[i].variants.iter().enumerate() {
            let vgen = vgens[i][v].as_ref().expect("variant codegen ran");
            obj.add_code(&variant.name, &vgen.blob);
            for (off, callee) in &vgen.mv_callsites {
                all_mv_sites.push((variant.name.clone(), *off, callee.clone()));
            }
            for (off, ptr) in &vgen.ptr_callsites {
                all_ptr_sites.push((variant.name.clone(), *off, ptr.clone()));
            }
        }
    }

    if multiverse {
        // Variable descriptors for switches defined in this unit.
        for (name, g) in &globals {
            if !g.is_switch() || g.attrs.is_extern {
                continue;
            }
            let name_sym = obj.intern_string(name);
            emit_variable(
                &mut obj,
                &VarDescSym {
                    symbol: (*name).clone(),
                    width: g.ty.size() as u32,
                    signed: g.ty.signed(),
                    fn_ptr: g.ty == Type::Fnptr,
                    name_sym: Some(name_sym),
                },
            );
        }

        // Function descriptors: multiversed functions (with variants) and
        // address-taken pointer targets (registration only).
        for (i, f) in work.iter().enumerate() {
            let is_mv = !merged[i].variants.is_empty();
            if !is_mv && !addr_taken.contains(&f.name) {
                continue;
            }
            let gen = generics[i].as_ref().expect("generic codegen ran");
            let name_sym = obj.intern_string(&f.name);
            emit_function(
                &mut obj,
                &FnDescSym {
                    symbol: f.name.clone(),
                    generic_size: gen.blob.bytes.len() as u32,
                    generic_inline_len: gen.inline_len,
                    name_sym: Some(name_sym),
                    variants: merged[i]
                        .variants
                        .iter()
                        .enumerate()
                        .flat_map(|(v, variant)| {
                            let vgen = vgens[i][v].as_ref().expect("variant codegen ran");
                            // One descriptor entry per guard set; merged
                            // bodies share the symbol.
                            variant.guard_sets.iter().map(move |gs| VariantDescSym {
                                symbol: variant.name.clone(),
                                body_size: vgen.blob.bytes.len() as u32,
                                inline_len: vgen.inline_len,
                                guards: gs.clone(),
                            })
                        })
                        .collect(),
                },
            );
        }

        // Call-site descriptors.
        for (caller, off, callee) in &all_mv_sites {
            emit_callsite(
                &mut obj,
                &CallsiteDescSym {
                    callee: callee.clone(),
                    caller: caller.clone(),
                    offset: *off,
                },
            );
        }
        for (caller, off, ptr) in &all_ptr_sites {
            emit_callsite(
                &mut obj,
                &CallsiteDescSym {
                    callee: ptr.clone(),
                    caller: caller.clone(),
                    offset: *off,
                },
            );
        }
    }

    Ok(obj)
}
