//! Offline shim for the subset of `criterion` 0.5 this workspace uses.
//!
//! Runs each benchmark a small, fixed number of iterations and prints a
//! single `name ... median` line. It is intentionally NOT a rigorous
//! statistical harness — it exists so `cargo bench` compiles and produces
//! comparable wall-clock numbers in an offline container.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching criterion's API.
pub use std::hint::black_box;

/// The benchmark manager. Builder methods mirror criterion's but most
/// only tune how many timed iterations the shim runs.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(50),
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration (the shim runs one warm-up iteration
    /// regardless; the duration caps repeated warm-ups).
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement-time budget (caps total sampling time).
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Configures this instance from command-line args (no-op shim).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        run_one(self, &name, f);
        self
    }
}

/// A named group of benchmarks, created by [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `group/name`.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(self.c, &full, f);
        self
    }

    /// Benchmarks `f` with an input value, labelled by a [`BenchmarkId`].
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        run_one(self.c, &full, |b| f(b, input));
        self
    }

    /// Sets group sample size (shim: forwards to the parent Criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    /// Sets group measurement time (shim: forwards to the parent).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement_time = d;
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifier combining a function name and an input parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("commit", 64)` → label `commit/64`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Label from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing driver passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples (or until the
    /// measurement budget is exhausted).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warm-up run, untimed.
        black_box(routine());
        let began = Instant::now();
        for i in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if i >= 1 && began.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn run_one<F>(c: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size: c.sample_size,
        budget: c.measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{name:<48} median {median:>12?}  min {min:>12?}  max {max:>12?}  ({} samples)",
        b.samples.len()
    );
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_benchmarks_and_collects_samples() {
        let mut c = Criterion::default().sample_size(4);
        let mut ran = 0;
        c.bench_function("unit/t", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        assert!(ran >= 4);
    }

    #[test]
    fn group_and_id_labels() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 7), &7usize, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
