//! Fig. 4 (right) — PV-Ops `sti`+`cli` under the current kernel patching
//! mechanism, multiverse, and with paravirtualization compiled out, on
//! native hardware and inside a Xen PV guest.

use criterion::{criterion_group, criterion_main, Criterion};
use multiverse::bench::render_table;
use multiverse::mvvm::Platform;
use mv_workloads::pvops::{boot, measure, PvBuild};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render_table(
            "Fig. 4 (right) — PV-Ops sti+cli avg. cycles",
            &mv_bench::fig4_pvops_data()
        )
    );

    let mut g = c.benchmark_group("fig4_pvops");
    for build in [
        PvBuild::Current,
        PvBuild::Multiverse,
        PvBuild::IfdefDisabled,
    ] {
        for platform in [Platform::Native, Platform::XenGuest] {
            let name = format!("{:?}_{:?}", build, platform);
            let mut w = boot(build, platform).expect("boot");
            g.bench_function(&name, |b| b.iter(|| measure(&mut w, 100).expect("measure")));
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
