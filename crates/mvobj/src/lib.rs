#![warn(missing_docs)]
//! MVO — the object-file format, linker and executable image of the
//! Multiverse reproduction.
//!
//! §5 of the EuroSys'19 paper relies on three properties of ELF that this
//! crate reproduces:
//!
//! 1. **Per-descriptor-type sections.** The compiler plugin stores variable,
//!    function and call-site descriptors in dedicated sections
//!    (`multiverse.variables`, `multiverse.functions`,
//!    `multiverse.callsites`). Because the linker concatenates same-named
//!    sections from all translation units, the run-time library can address
//!    each descriptor type as one contiguous array.
//! 2. **Relocations.** Descriptors reference functions and variables with
//!    the address-of operator; the compiler emits relocation entries and the
//!    linker injects the numerical addresses, giving relocatable and
//!    position-independent images for free.
//! 3. **Size model.** Descriptors cost 32 bytes per configuration switch,
//!    16 bytes per call site and `48 + #variants·(32 + #guards·16)` bytes
//!    per multiversed function ([`descriptor`] enforces these sizes with
//!    compile-time constants and tests).
//!
//! The flow is: `mvc` produces an [`Object`] per translation unit →
//! [`link()`](link()) concatenates sections, lays them out in pages, resolves
//! relocations → the resulting [`Executable`] is loaded into an `mvvm`
//! machine and interpreted, while `mvrt` reads the descriptor sections out
//! of the loaded image.

pub mod descriptor;
pub mod image;
pub mod link;
pub mod mvo;
pub mod object;
pub mod reloc;
pub mod section;
pub mod symbol;

pub use image::{Executable, Segment};
pub use link::{link, Layout, LinkError};
pub use mvo::{read_object, write_object, MvoError};
pub use object::Object;
pub use reloc::{Reloc, RelocKind};
pub use section::{Prot, Section, SectionKind};
pub use symbol::{SymKind, Symbol};

/// Name of the code section.
pub const SEC_TEXT: &str = ".text";
/// Name of the initialized-data section.
pub const SEC_DATA: &str = ".data";
/// Name of the zero-initialized data section.
pub const SEC_BSS: &str = ".bss";
/// Name of the read-only string/constant section.
pub const SEC_RODATA: &str = ".rodata";
/// Descriptor section for configuration switches (32-byte records).
pub const SEC_MV_VARIABLES: &str = "multiverse.variables";
/// Descriptor section for multiversed functions (variable-length records).
pub const SEC_MV_FUNCTIONS: &str = "multiverse.functions";
/// Descriptor section for recorded call sites (16-byte records).
pub const SEC_MV_CALLSITES: &str = "multiverse.callsites";
