//! Paged guest memory with R/W/X protection and icache versioning.

use crate::fault::{FaultOp, FaultPlan};
use mvobj::{Executable, Prot};
use std::collections::HashMap;
use std::fmt;

/// Page size of the guest address space. Matches the linker's default so
/// each section's protection can be changed independently.
pub const PAGE_SIZE: u64 = 4096;

/// Memory access classes, for fault reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

/// A memory fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemError {
    /// Faulting guest address.
    pub addr: u64,
    /// The attempted access.
    pub access: Access,
    /// `true` if the page is mapped but the protection forbids the access
    /// (e.g. a write to the R-X text segment); `false` if unmapped.
    pub mapped: bool,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.access {
            Access::Read => "read",
            Access::Write => "write",
            Access::Exec => "execute",
        };
        if self.mapped {
            write!(f, "protection fault: {what} at {:#x}", self.addr)
        } else {
            write!(f, "unmapped {what} at {:#x}", self.addr)
        }
    }
}

impl std::error::Error for MemError {}

struct Page {
    bytes: Box<[u8]>,
    prot: Prot,
    /// Bumped by [`Memory::flush_icache`]; the CPU's decode cache keys on
    /// it. Writing patched bytes without flushing leaves stale decoded
    /// instructions visible — exactly the hazard the paper's run-time
    /// library avoids by flushing after patching (§4).
    code_version: u64,
    /// Set once the page has ever been mapped or mprotected executable,
    /// never cleared. Distinguishes patching-path writes (which fault
    /// plans target) from ordinary guest data stores even while the
    /// W^X dance has the page temporarily RW.
    text: bool,
}

impl Page {
    fn new(prot: Prot) -> Page {
        Page {
            bytes: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
            prot,
            code_version: 0,
            text: prot.exec,
        }
    }
}

/// The guest physical/virtual memory (flat, demand-populated pages).
#[derive(Default)]
pub struct Memory {
    pages: HashMap<u64, Page>,
    fault: Option<FaultPlan>,
    /// Bumped by every icache flush that takes effect (see
    /// [`Memory::flush_epoch`]).
    flush_epoch: u64,
}

impl Memory {
    /// Creates empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_no(addr: u64) -> u64 {
        addr / PAGE_SIZE
    }

    /// Maps `len` bytes at `addr` with protection `prot`, zero-filled.
    /// Extends/overwrites protection of already-mapped pages in the range.
    pub fn map(&mut self, addr: u64, len: u64, prot: Prot) {
        if len == 0 {
            return;
        }
        let first = Self::page_no(addr);
        let last = Self::page_no(addr + len - 1);
        for p in first..=last {
            let page = self.pages.entry(p).or_insert_with(|| Page::new(prot));
            page.prot = prot;
            page.text |= prot.exec;
        }
    }

    /// Installs a deterministic fault schedule (see [`crate::fault`]).
    /// Replaces any existing plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Removes the fault schedule, returning it (with its counters) so
    /// tests can assert how far it got.
    pub fn clear_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Consults the installed fault schedule for one operation of class
    /// `op` at `addr`, counting it and reporting whether it must fail.
    ///
    /// Memory's own primitives call this internally; it is public so
    /// higher layers can put *their* operation classes (trap plants,
    /// remote shootdowns) under the same deterministic schedule — the
    /// plan lives here because `Memory` is the one object every layer
    /// of the stack can reach. Address-less operations report `0`.
    pub fn trip_fault(&mut self, op: FaultOp, addr: u64) -> bool {
        match &mut self.fault {
            Some(plan) => plan.trips(op, addr),
            None => false,
        }
    }

    /// Whether any page in `[addr, addr+len)` is (or ever was) text.
    fn touches_text(&self, addr: u64, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        let first = Self::page_no(addr);
        let last = Self::page_no(addr + len as u64 - 1);
        (first..=last).any(|p| self.pages.get(&p).is_some_and(|pg| pg.text))
    }

    /// Loads all segments of a linked executable.
    pub fn load(&mut self, exe: &Executable) {
        for seg in &exe.segments {
            self.map(seg.addr, seg.bytes.len().max(1) as u64, seg.prot);
            self.write_unchecked(seg.addr, &seg.bytes);
        }
    }

    /// Changes the protection of every page overlapping `[addr, addr+len)`
    /// — the guest-side `mprotect`.
    ///
    /// Returns the number of pages affected. Unmapped pages in the range
    /// fault.
    pub fn mprotect(&mut self, addr: u64, len: u64, prot: Prot) -> Result<u64, MemError> {
        if len == 0 {
            return Ok(0);
        }
        let first = Self::page_no(addr);
        let last = Self::page_no(addr + len - 1);
        for p in first..=last {
            if !self.pages.contains_key(&p) {
                return Err(MemError {
                    addr: p * PAGE_SIZE,
                    access: Access::Write,
                    mapped: false,
                });
            }
        }
        if self.trip_fault(FaultOp::Mprotect, addr) {
            // Injected transient protection-change failure (indistinguishable
            // from a real one: the range is mapped, nothing was changed).
            return Err(MemError {
                addr,
                access: Access::Write,
                mapped: true,
            });
        }
        for p in first..=last {
            let page = self.pages.get_mut(&p).expect("checked above");
            page.prot = prot;
            page.text |= prot.exec;
        }
        Ok(last - first + 1)
    }

    /// Current protection of the page containing `addr`.
    pub fn prot_of(&self, addr: u64) -> Option<Prot> {
        self.pages.get(&Self::page_no(addr)).map(|p| p.prot)
    }

    /// Invalidates cached decoded instructions for `[addr, addr+len)`.
    ///
    /// An installed [`FaultPlan`] targeting flushes makes this silently
    /// drop the request — versions are not bumped and stale decoded
    /// instructions keep executing, the classic missing-flush hazard.
    pub fn flush_icache(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        if self.trip_fault(FaultOp::IcacheFlush, addr) {
            return;
        }
        self.flush_epoch += 1;
        let first = Self::page_no(addr);
        let last = Self::page_no(addr + len - 1);
        for p in first..=last {
            if let Some(page) = self.pages.get_mut(&p) {
                page.code_version += 1;
            }
        }
    }

    /// Monotonic count of icache flushes that took effect. A caller who
    /// requested a flush and sees the epoch unchanged knows the flush
    /// was lost (e.g. dropped by a [`FaultPlan`]) and that stale decoded
    /// instructions may keep executing.
    pub fn flush_epoch(&self) -> u64 {
        self.flush_epoch
    }

    /// Code version of the page containing `addr` (0 for unmapped).
    pub fn code_version(&self, addr: u64) -> u64 {
        self.pages
            .get(&Self::page_no(addr))
            .map_or(0, |p| p.code_version)
    }

    fn access(
        &self,
        addr: u64,
        len: usize,
        access: Access,
        check: impl Fn(Prot) -> bool,
    ) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let first = Self::page_no(addr);
        let last = Self::page_no(addr + len as u64 - 1);
        for p in first..=last {
            match self.pages.get(&p) {
                None => {
                    return Err(MemError {
                        addr: if p == first { addr } else { p * PAGE_SIZE },
                        access,
                        mapped: false,
                    })
                }
                Some(page) if !check(page.prot) => {
                    return Err(MemError {
                        addr: if p == first { addr } else { p * PAGE_SIZE },
                        access,
                        mapped: true,
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    fn copy_out(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let page = self.pages.get(&Self::page_no(a)).expect("checked");
            let po = (a % PAGE_SIZE) as usize;
            let n = (buf.len() - done).min(PAGE_SIZE as usize - po);
            buf[done..done + n].copy_from_slice(&page.bytes[po..po + n]);
            done += n;
        }
    }

    fn copy_in(&mut self, addr: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let a = addr + done as u64;
            let page = self.pages.get_mut(&Self::page_no(a)).expect("checked");
            let po = (a % PAGE_SIZE) as usize;
            let n = (data.len() - done).min(PAGE_SIZE as usize - po);
            page.bytes[po..po + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Reads `buf.len()` bytes at `addr` (data access).
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        self.access(addr, buf.len(), Access::Read, |p| p.read)?;
        self.copy_out(addr, buf);
        Ok(())
    }

    /// Reads into a fresh vector.
    pub fn read_vec(&self, addr: u64, len: usize) -> Result<Vec<u8>, MemError> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v)?;
        Ok(v)
    }

    /// Writes `data` at `addr` (data access, respects protection).
    ///
    /// A [`FaultPlan`] targeting text writes can fail the call even
    /// though protection allows it — modelling a transient fault in the
    /// middle of a patching sequence. Only writes touching a text page
    /// consume the plan's counter; guest data stores are never affected.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        self.access(addr, data.len(), Access::Write, |p| p.write)?;
        if self.touches_text(addr, data.len()) && self.trip_fault(FaultOp::TextWrite, addr) {
            return Err(MemError {
                addr,
                access: Access::Write,
                mapped: true,
            });
        }
        self.copy_in(addr, data);
        Ok(())
    }

    /// Writes ignoring protection — loader use only.
    pub fn write_unchecked(&mut self, addr: u64, data: &[u8]) {
        // Ensure pages exist (loader may write into fresh mappings only).
        if data.is_empty() {
            return;
        }
        let first = Self::page_no(addr);
        let last = Self::page_no(addr + data.len() as u64 - 1);
        for p in first..=last {
            self.pages.entry(p).or_insert_with(|| Page::new(Prot::RW));
        }
        self.copy_in(addr, data);
    }

    /// Fetches up to `len` bytes for execution at `addr`.
    pub fn fetch(&self, addr: u64, buf: &mut [u8]) -> Result<usize, MemError> {
        self.access(addr, 1, Access::Exec, |p| p.exec)?;
        // Fetch as many bytes as are executable and mapped; decode decides
        // whether that is enough.
        let mut n = 0usize;
        while n < buf.len() {
            let a = addr + n as u64;
            match self.pages.get(&Self::page_no(a)) {
                Some(p) if p.prot.exec => {
                    let po = (a % PAGE_SIZE) as usize;
                    let take = (buf.len() - n).min(PAGE_SIZE as usize - po);
                    buf[n..n + take].copy_from_slice(&p.bytes[po..po + take]);
                    n += take;
                }
                _ => break,
            }
        }
        Ok(n)
    }

    /// Reads a little-endian unsigned integer of `width` bytes.
    pub fn read_uint(&self, addr: u64, width: usize) -> Result<u64, MemError> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf[..width])?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads a little-endian integer of `width` bytes, sign-extending if
    /// `signed`.
    pub fn read_int(&self, addr: u64, width: usize, signed: bool) -> Result<i64, MemError> {
        let raw = self.read_uint(addr, width)?;
        Ok(extend(raw, width, signed))
    }

    /// Writes the low `width` bytes of `value`, little-endian.
    pub fn write_int(&mut self, addr: u64, value: u64, width: usize) -> Result<(), MemError> {
        self.write(addr, &value.to_le_bytes()[..width])
    }
}

/// Sign- or zero-extends the low `width` bytes of `raw` to 64 bits.
pub fn extend(raw: u64, width: usize, signed: bool) -> i64 {
    let bits = width * 8;
    if bits >= 64 {
        return raw as i64;
    }
    let masked = raw & ((1u64 << bits) - 1);
    if signed {
        let shift = 64 - bits;
        ((masked << shift) as i64) >> shift
    } else {
        masked as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_read_write_roundtrip() {
        let mut m = Memory::new();
        m.map(0x1000, 100, Prot::RW);
        m.write(0x1010, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_vec(0x1010, 3).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn write_to_text_faults() {
        let mut m = Memory::new();
        m.map(0x1000, 100, Prot::RX);
        let e = m.write(0x1000, &[0x90]).unwrap_err();
        assert!(e.mapped);
        assert_eq!(e.access, Access::Write);
        // After mprotect the write succeeds (the patching dance).
        m.mprotect(0x1000, 100, Prot::RW).unwrap();
        m.write(0x1000, &[0x90]).unwrap();
        m.mprotect(0x1000, 100, Prot::RX).unwrap();
        assert!(m.write(0x1000, &[0x90]).is_err());
    }

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new();
        let e = m.read_vec(0xdead_0000, 1).unwrap_err();
        assert!(!e.mapped);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut m = Memory::new();
        m.map(0x1000, 2 * PAGE_SIZE, Prot::RW);
        let data: Vec<u8> = (0..=255).collect();
        let addr = 0x1000 + PAGE_SIZE - 100;
        m.write(addr, &data).unwrap();
        assert_eq!(m.read_vec(addr, 256).unwrap(), data);
    }

    #[test]
    fn cross_page_fault_is_atomic() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Prot::RW); // second page unmapped
        let addr = 0x1000 + PAGE_SIZE - 2;
        let before = m.read_vec(addr, 2).unwrap();
        assert!(m.write(addr, &[7, 7, 7, 7]).is_err());
        // Nothing was partially written.
        assert_eq!(m.read_vec(addr, 2).unwrap(), before);
    }

    #[test]
    fn icache_version_bumps_only_on_flush() {
        let mut m = Memory::new();
        m.map(0x1000, PAGE_SIZE, Prot::RW);
        assert_eq!(m.code_version(0x1000), 0);
        m.write(0x1000, &[1]).unwrap();
        assert_eq!(m.code_version(0x1000), 0);
        m.flush_icache(0x1000, 1);
        assert_eq!(m.code_version(0x1000), 1);
        assert_eq!(m.code_version(0x1000 + PAGE_SIZE), 0);
    }

    #[test]
    fn extend_signs_correctly() {
        assert_eq!(extend(0xFF, 1, true), -1);
        assert_eq!(extend(0xFF, 1, false), 255);
        assert_eq!(extend(0x8000, 2, true), -32768);
        assert_eq!(extend(0x7FFF_FFFF, 4, true), i32::MAX as i64);
        assert_eq!(extend(0xFFFF_FFFF, 4, true), -1);
        assert_eq!(extend(u64::MAX, 8, false), -1);
    }

    #[test]
    fn read_int_widths() {
        let mut m = Memory::new();
        m.map(0, 16, Prot::RW);
        m.write_int(0, 0xFFFF_FFFF_FFFF_FFFE, 4).unwrap();
        assert_eq!(m.read_int(0, 4, true).unwrap(), -2);
        assert_eq!(m.read_int(0, 4, false).unwrap(), 0xFFFF_FFFE);
        assert_eq!(m.read_int(0, 8, false).unwrap(), 0xFFFF_FFFE);
    }

    #[test]
    fn mprotect_unmapped_fails() {
        let mut m = Memory::new();
        assert!(m.mprotect(0x5000, 10, Prot::RW).is_err());
    }
}
