//! The staged compile pipeline (§3): parallel clone+fold must be
//! *byte-identical* to the sequential build, the compile cache must
//! replay — not re-derive — variants, and the content-addressed merge
//! must keep guards covering exactly the assignments it merged.
//!
//! The differential tests serialize whole `.mvo` objects and compare the
//! bytes; the property tests drive random switch domains (contiguous and
//! not) through build → commit and through the merge/guard synthesis
//! directly.

use multiverse::mvc::pipeline::{self};
use multiverse::mvc::{CompileError, Options, Pipeline};
use multiverse::mvobj::write_object;
use multiverse::Program;
use proptest::prelude::*;

/// Three units with cross-unit calls, switch extern declarations, merging
/// opportunities (`c` values 1 and 2 collapse) and a non-contiguous
/// domain (`{0, 2, 5}`) that forces point guards.
const CONFIG: &str = r#"
    multiverse bool dbg;
    multiverse(0, 1, 2) i32 c;
    multiverse(0, 2, 5) i32 mode;
"#;
const LIB: &str = r#"
    extern multiverse bool dbg;
    extern multiverse(0, 1, 2) i32 c;
    multiverse i64 get(i64 x) {
        i64 acc = x;
        if (dbg) { acc = acc + 100; }
        if (c) { acc = acc * 2; }
        return acc;
    }
"#;
const MAIN: &str = r#"
    extern multiverse(0, 2, 5) i32 mode;
    extern multiverse i64 get(i64 x);
    multiverse i64 pick(i64 x) {
        if (mode < 3) { return x + 1; }
        return x - 1;
    }
    i64 main(void) { return get(3) + pick(4); }
"#;

fn units() -> Vec<(&'static str, &'static str)> {
    vec![("config.c", CONFIG), ("lib.c", LIB), ("main.c", MAIN)]
}

fn opts(jobs: usize, cache: bool) -> Options {
    Options {
        variant_limit: 64,
        jobs,
        cache,
        ..Options::default()
    }
}

/// `-j N` must produce the same serialized `.mvo` bytes — code,
/// descriptors, symbols, relocations — as `-j 1`, unit by unit, along
/// with the same warnings in the same order.
#[test]
fn parallel_objects_are_byte_identical() {
    let mut baseline = Vec::new();
    for (name, src) in units() {
        let (obj, warn) = Pipeline::new(opts(1, false))
            .compile_unit(src, name)
            .expect("sequential build");
        baseline.push((name, write_object(&obj), obj.fingerprint(), warn));
    }
    for jobs in [2usize, 4, 8] {
        for (i, (name, src)) in units().into_iter().enumerate() {
            let (obj, warn) = Pipeline::new(opts(jobs, false))
                .compile_unit(src, name)
                .expect("parallel build");
            let (bname, bbytes, bfp, bwarn) = &baseline[i];
            assert_eq!(*bname, name);
            assert_eq!(obj.fingerprint(), *bfp, "{name}: -j {jobs} fingerprint");
            assert_eq!(&write_object(&obj), bbytes, "{name}: -j {jobs} .mvo bytes");
            assert_eq!(&warn, bwarn, "{name}: -j {jobs} warnings");
        }
    }
}

/// A warm build replays every variant from the compile cache (no clones
/// re-specialized) and still serializes to the cold build's exact bytes —
/// even when the warm build is parallel.
#[test]
fn cached_build_is_byte_identical_and_skips_cloning() {
    pipeline::clear_compile_cache();
    let mut cold = Pipeline::new(opts(1, true));
    let mut cold_bytes = Vec::new();
    for (name, src) in units() {
        let (obj, _) = cold.compile_unit(src, name).expect("cold build");
        cold_bytes.push(write_object(&obj));
    }
    assert!(cold.stats().cache_misses > 0, "cold build must miss");
    assert_eq!(cold.stats().cache_hits, 0);

    let mut warm = Pipeline::new(opts(4, true));
    for (i, (name, src)) in units().into_iter().enumerate() {
        let (obj, _) = warm.compile_unit(src, name).expect("warm build");
        assert_eq!(write_object(&obj), cold_bytes[i], "{name}: warm .mvo bytes");
    }
    assert_eq!(warm.stats().cache_hits, cold.stats().cache_misses);
    assert_eq!(warm.stats().clones, 0, "hits must not re-specialize");
    assert!(warm.stats().cached_variants > 0);
}

/// The whole-program entry points agree too: `Program` built through an
/// explicit parallel pipeline behaves like the default build.
#[test]
fn program_through_pipeline_matches_default_build() {
    let p_default = Program::build(&units()).expect("default build");
    let mut pl = Pipeline::new(opts(4, false));
    let p_pipe = Program::build_with_pipeline(&units(), &mut pl, true).expect("pipeline build");
    let mut wd = p_default.boot();
    let mut wp = p_pipe.boot();
    for (a, b, m) in [(0i64, 0i64, 0i64), (1, 2, 5), (1, 1, 2)] {
        for w in [&mut wd, &mut wp] {
            w.revert().unwrap();
            w.set("dbg", a).unwrap();
            w.set("c", b).unwrap();
            w.set("mode", m).unwrap();
            w.commit().unwrap();
        }
        assert_eq!(
            wd.call("get", &[9]).unwrap(),
            wp.call("get", &[9]).unwrap(),
            "dbg={a} c={b}"
        );
        assert_eq!(
            wd.call("pick", &[9]).unwrap(),
            wp.call("pick", &[9]).unwrap(),
            "mode={m}"
        );
    }
}

/// The explosion error names every offending switch with its domain
/// size, so the user knows exactly which factors to restrict.
#[test]
fn explosion_error_names_the_offending_switches() {
    let src = r#"
        multiverse(1, 2, 3, 4, 5, 6, 7, 8) i32 big_a;
        multiverse(1, 2, 3, 4, 5, 6, 7, 8) i32 big_b;
        multiverse void f(void) { if (big_a + big_b) { __out(1); } }
        i64 main(void) { return 0; }
    "#;
    let err = Pipeline::new(Options {
        variant_limit: 32,
        ..Options::default()
    })
    .compile_unit(src, "t.c")
    .expect_err("must explode");
    match &err {
        CompileError::VariantExplosion {
            function,
            variants,
            limit,
            switches,
        } => {
            assert_eq!(function, "f");
            assert_eq!((*variants, *limit), (64, 32));
            assert_eq!(
                switches,
                &vec![("big_a".to_string(), 8), ("big_b".to_string(), 8)]
            );
        }
        other => panic!("wrong error: {other:?}"),
    }
    let msg = err.to_string();
    for needle in [
        "`f`",
        "64 variants",
        "limit 32",
        "`big_a` (8 values)",
        "`big_b` (8 values)",
        "×",
    ] {
        assert!(msg.contains(needle), "missing {needle:?} in: {msg}");
    }
}

/// Writing the same switch twice in one function — or the compiler
/// visiting a function through more than one path — must not duplicate
/// the diagnostic.
#[test]
fn repeated_warnings_are_deduplicated() {
    let src = r#"
        multiverse bool w;
        multiverse void f(void) {
            if (w) { w = 0; }
            w = 1;
        }
        i64 main(void) { return 0; }
    "#;
    let (_, warnings) = Pipeline::new(opts(1, false))
        .compile_unit(src, "t.c")
        .expect("build");
    let writes: Vec<_> = warnings
        .iter()
        .filter(|w| matches!(w, multiverse::mvc::Warning::SwitchWrittenInVariant { .. }))
        .collect();
    assert_eq!(writes.len(), 1, "one warning for two writes: {warnings:?}");
    // No exact duplicates anywhere in the unit's diagnostics.
    for (i, a) in warnings.iter().enumerate() {
        assert!(!warnings[i + 1..].contains(a), "duplicated warning: {a:?}");
    }
}

/// A random domain as written in a `multiverse(v1, v2, …)` attribute:
/// 1–4 distinct sorted values in a small range, frequently
/// non-contiguous.
fn arb_domain() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(0i64..10, 1..5).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

fn domain_src(name: &str, dom: &[i64]) -> String {
    let vals: Vec<String> = dom.iter().map(|v| v.to_string()).collect();
    format!("multiverse({}) i32 {name};\n", vals.join(", "))
}

/// Oracle for the generated function body below.
fn oracle(s0: i64, s1: i64, t0: i64, t1: i64, x: i64) -> i64 {
    let mut acc = x;
    if t0 < s0 {
        acc = acc.wrapping_add(3);
    }
    if t1 < s1 {
        acc = acc.wrapping_mul(2);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// End-to-end merge/guard soundness: for random (often
    /// non-contiguous) domains, committing every in-domain assignment
    /// dispatches to a variant that computes exactly what the dynamic
    /// build computes. Thresholded bodies make distinct assignments
    /// collapse, so range guards, point-guard fallbacks and merged
    /// bodies are all on the committed path.
    #[test]
    fn random_domains_commit_to_the_right_variant(
        d0 in arb_domain(),
        d1 in arb_domain(),
        t0 in 0i64..10,
        t1 in 0i64..10,
    ) {
        let src = format!(
            "{}{}multiverse i64 f(i64 x) {{\n\
                 i64 acc = x;\n\
                 if ({t0} < s0) {{ acc = acc + 3; }}\n\
                 if ({t1} < s1) {{ acc = acc * 2; }}\n\
                 return acc;\n\
             }}\n\
             i64 main(void) {{ return 0; }}\n",
            domain_src("s0", &d0),
            domain_src("s1", &d1),
        );
        let dynamic =
            Program::build_with(&[("t.c", &src)], &Options::dynamic()).unwrap();
        let mv = Program::build_with(&[("t.c", &src)], &opts(2, false)).unwrap();
        let mut wd = dynamic.boot();
        let mut wm = mv.boot();
        for &a in &d0 {
            for &b in &d1 {
                wm.revert().unwrap();
                for w in [&mut wd, &mut wm] {
                    w.set("s0", a).unwrap();
                    w.set("s1", b).unwrap();
                }
                wm.commit().unwrap();
                for x in [-3i64, 0, 7] {
                    let want = oracle(a, b, t0, t1, x) as u64;
                    prop_assert_eq!(wd.call("f", &[x as u64]).unwrap(), want,
                        "dynamic s0={} s1={} x={}", a, b, x);
                    prop_assert_eq!(wm.call("f", &[x as u64]).unwrap(), want,
                        "committed s0={} s1={} x={}", a, b, x);
                }
            }
        }
    }

    /// Merge/guard synthesis invariants, checked against the descriptor
    /// data itself: variants partition the cross product, and each
    /// variant's guard sets match exactly its own assignments — no
    /// over- or under-covering, for boxes and point-guard fallbacks
    /// alike.
    #[test]
    fn guards_cover_exactly_the_merged_assignments(
        d0 in arb_domain(),
        d1 in arb_domain(),
        t0 in 0i64..10,
        t1 in 0i64..10,
    ) {
        use multiverse::mvc::{lexer::lex, lower::lower_unit, mv, parser::parse};
        let src = format!(
            "{}{}multiverse i64 f(i64 x) {{\n\
                 i64 acc = x;\n\
                 if ({t0} < s0) {{ acc = acc + 3; }}\n\
                 if ({t1} < s1) {{ acc = acc * 2; }}\n\
                 return acc;\n\
             }}\n",
            domain_src("s0", &d0),
            domain_src("s1", &d1),
        );
        let l = lower_unit(&parse(&lex(&src).unwrap()).unwrap()).unwrap();
        let f = l.funcs.iter().find(|f| f.name == "f").unwrap();
        let r = mv::generate_variants(f, &l.ctx, 64).unwrap().unwrap();

        // The variants partition the cross product.
        let mut covered: Vec<Vec<(String, i64)>> = Vec::new();
        for v in &r.variants {
            for a in &v.assignments {
                prop_assert!(!covered.contains(a), "assignment in two variants: {:?}", a);
                covered.push(a.clone());
            }
        }
        prop_assert_eq!(covered.len(), d0.len() * d1.len());

        // Guard sets accept an assignment iff the variant owns it.
        let matches = |guards: &[multiverse::mvobj::descriptor::GuardSym],
                       assign: &[(String, i64)]| {
            guards.iter().all(|g| {
                assign
                    .iter()
                    .any(|(n, v)| *n == g.var_symbol && g.low as i64 <= *v && *v <= g.high as i64)
            })
        };
        for v in &r.variants {
            for assign in &covered {
                let accepted = v.guard_sets.iter().any(|gs| matches(gs, assign));
                let owned = v.assignments.contains(assign);
                prop_assert_eq!(
                    accepted, owned,
                    "variant {} guards {:?} vs assignment {:?}",
                    &v.name, &v.guard_sets, assign
                );
            }
        }
    }
}
