//! VM-level telemetry: mirrors the machine's monotone execution
//! counters into an [`mvmetrics::Registry`].
//!
//! Recording is pull-based: the embedder calls [`VmMetrics::record_machine`]
//! or [`VmMetrics::record_smp`] at sync points (end of a run, after a
//! scheduler round) and the current absolute counter values are stored
//! with `store_max`. Nothing is added to the per-instruction hot path,
//! and because the registry mirrors the sources rather than keeping a
//! parallel increment stream, the two can never disagree.

use crate::block::BlockCacheStats;
use crate::machine::Machine;
use crate::smp::SmpMachine;
use mvmetrics::{Counter, Registry};

/// Registered handles for the `mv_vm_*` metric family.
pub struct VmMetrics {
    registry: Registry,
    instructions: Counter,
    cycles: Counter,
    icache_shootdowns: Counter,
    trap_hits: Counter,
    rounds: Counter,
    stall_cycles: Counter,
    block_hits: Counter,
    block_misses: Counter,
    block_evictions: Counter,
    block_promotions: Counter,
    native_regions: Counter,
    native_blocks: Counter,
    native_runs: Counter,
    native_insns: Counter,
    native_invalidations: Counter,
    /// Per-vCPU cycle counters, registered lazily on first SMP sync.
    vcpu_cycles: Vec<Counter>,
}

impl VmMetrics {
    /// Registers the VM metric family in `registry`.
    pub fn new(registry: &Registry) -> VmMetrics {
        VmMetrics {
            registry: registry.clone(),
            instructions: registry
                .counter("mv_vm_instructions_total", "Guest instructions retired"),
            cycles: registry.counter("mv_vm_cycles_total", "Guest cycles consumed"),
            icache_shootdowns: registry.counter(
                "mv_vm_icache_shootdowns_total",
                "Cross-vCPU instruction cache shootdowns",
            ),
            trap_hits: registry.counter(
                "mv_vm_trap_hits_total",
                "Breakpoint trap-byte hits observed by vCPUs",
            ),
            rounds: registry.counter("mv_vm_sched_rounds_total", "SMP scheduler rounds"),
            stall_cycles: registry.counter(
                "mv_vm_stall_cycles_total",
                "Cycles vCPUs spent parked or trapped during quiesce",
            ),
            block_hits: registry.counter(
                "mv_vm_block_hits_total",
                "Decoded-block cache hits (block entries replayed)",
            ),
            block_misses: registry.counter(
                "mv_vm_block_misses_total",
                "Decoded-block cache misses (blocks recorded)",
            ),
            block_evictions: registry.counter(
                "mv_vm_block_evictions_total",
                "Decoded blocks evicted by patches or shootdowns",
            ),
            block_promotions: registry.counter(
                "mv_vm_block_superblock_promotions_total",
                "Hot blocks re-recorded as fused superblocks",
            ),
            native_regions: registry.counter(
                "mv_vm_native_regions_total",
                "Function regions lowered for the native tier",
            ),
            native_blocks: registry.counter(
                "mv_vm_native_blocks_total",
                "Blocks lowered across all native regions",
            ),
            native_runs: registry.counter(
                "mv_vm_native_runs_total",
                "Native block executions (one per block entered)",
            ),
            native_insns: registry.counter(
                "mv_vm_native_insns_total",
                "Guest instructions retired through native segments",
            ),
            native_invalidations: registry.counter(
                "mv_vm_native_invalidations_total",
                "Native regions dropped after a code page changed",
            ),
            vcpu_cycles: Vec::new(),
        }
    }

    fn record_blocks(&mut self, b: BlockCacheStats) {
        self.block_hits.store_max(b.hits);
        self.block_misses.store_max(b.misses);
        self.block_evictions.store_max(b.evictions);
        self.block_promotions.store_max(b.promotions);
    }

    fn record_native(&mut self, n: crate::native::NativeStats) {
        self.native_regions.store_max(n.regions);
        self.native_blocks.store_max(n.blocks);
        self.native_runs.store_max(n.runs);
        self.native_insns.store_max(n.insns);
        self.native_invalidations.store_max(n.invalidations);
    }

    /// Syncs counters from a uniprocessor machine.
    pub fn record_machine(&mut self, m: &Machine) {
        self.instructions.store_max(m.stats.instructions);
        self.cycles.store_max(m.cycles());
        self.record_blocks(m.block_stats());
        self.record_native(m.native_stats());
    }

    /// Syncs counters from an SMP machine: aggregate stats plus a
    /// per-vCPU `mv_vm_vcpu_cycles_total{vcpu="N"}` series.
    pub fn record_smp(&mut self, smp: &SmpMachine) {
        // A disabled registry must see no activity at all — including
        // the lazy registration of new per-vCPU series.
        if !self.registry.enabled() {
            return;
        }
        let total = smp.total_stats();
        self.instructions.store_max(total.instructions);
        self.cycles
            .store_max((0..smp.vcpus()).map(|i| smp.cycles_of(i)).sum());
        self.icache_shootdowns.store_max(smp.shootdowns());
        self.trap_hits.store_max(smp.trap_hits());
        self.rounds.store_max(smp.rounds());
        self.stall_cycles.store_max(smp.total_stall_cycles());
        self.record_blocks(smp.block_stats());
        while self.vcpu_cycles.len() < smp.vcpus() {
            let i = self.vcpu_cycles.len();
            self.vcpu_cycles.push(self.registry.counter_with(
                "mv_vm_vcpu_cycles_total",
                "Guest cycles per vCPU",
                &[("vcpu", &i.to_string())],
            ));
        }
        for (i, c) in self.vcpu_cycles.iter().enumerate() {
            c.store_max(smp.cycles_of(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasm::Reg;
    use mvobj::{link, Layout, Object, SectionKind, Symbol};

    fn run_tiny() -> Machine {
        let mut a = mvasm::Assembler::new();
        a.mov_ri(Reg::R0, 7);
        a.emit(mvasm::Insn::Halt);
        let blob = a.finish().unwrap();
        let mut o = Object::new("t");
        o.append(mvobj::SEC_TEXT, SectionKind::Text, &blob.bytes);
        o.define(Symbol::func(
            "main",
            mvobj::SEC_TEXT,
            0,
            blob.bytes.len() as u64,
        ));
        let exe = link(&[o], &Layout::default()).unwrap();
        let mut m = Machine::boot(&exe);
        m.run_entry(&exe).unwrap();
        m
    }

    #[test]
    fn machine_sync_matches_stats() {
        let m = run_tiny();
        let r = Registry::new();
        let mut vm = VmMetrics::new(&r);
        vm.record_machine(&m);
        vm.record_machine(&m); // idempotent
        let snap = r.snapshot();
        let instr = snap
            .iter()
            .find(|s| s.name == "mv_vm_instructions_total")
            .unwrap();
        match instr.value {
            mvmetrics::SampleValue::Counter(v) => assert_eq!(v, m.stats.instructions),
            _ => unreachable!(),
        }
        assert!(m.stats.instructions > 0);
    }

    #[test]
    fn block_counters_mirror_tiered_run() {
        let mut a = mvasm::Assembler::new();
        a.mov_ri(Reg::R1, 0);
        a.label("loop");
        a.emit(mvasm::Insn::AluRI {
            op: mvasm::AluOp::Add,
            dst: Reg::R1,
            imm: 1,
        });
        a.cmp_ri(Reg::R1, 20);
        a.jcc("loop", mvasm::Cond::Lt);
        a.emit(mvasm::Insn::Halt);
        let blob = a.finish().unwrap();
        let mut o = Object::new("t");
        o.append(mvobj::SEC_TEXT, SectionKind::Text, &blob.bytes);
        o.define(Symbol::func(
            "main",
            mvobj::SEC_TEXT,
            0,
            blob.bytes.len() as u64,
        ));
        let exe = link(&[o], &Layout::default()).unwrap();
        let mut m = Machine::boot(&exe);
        m.set_tier(crate::block::ExecTier::Block);
        m.run_entry(&exe).unwrap();

        let r = Registry::new();
        let mut vm = VmMetrics::new(&r);
        vm.record_machine(&m);
        let snap = r.snapshot();
        let get = |name: &str| match snap.iter().find(|s| s.name == name).unwrap().value {
            mvmetrics::SampleValue::Counter(v) => v,
            _ => unreachable!(),
        };
        assert!(
            get("mv_vm_block_hits_total") > 0,
            "loop re-entries must hit"
        );
        assert!(get("mv_vm_block_misses_total") > 0);
        assert_eq!(get("mv_vm_block_hits_total"), m.block_stats().hits);
    }

    #[test]
    fn disabled_registry_stays_zero() {
        let m = run_tiny();
        let r = Registry::disabled();
        let mut vm = VmMetrics::new(&r);
        vm.record_machine(&m);
        assert!(r
            .snapshot()
            .iter()
            .all(|s| matches!(s.value, mvmetrics::SampleValue::Counter(0))));
    }
}
