//! Golden-file tests for the metrics exporters.
//!
//! The fixture registry is populated with fixed values, so both the
//! Prometheus text and the JSON snapshot are byte-deterministic.
//! Regenerate after an intended format change with:
//!
//! ```sh
//! BLESS=1 cargo test -p mvmetrics --test golden
//! ```

use mvmetrics::{export, Registry};
use std::path::PathBuf;

/// A small cross-section of the real metric families: labeled
/// counters, a gauge, and a histogram with an overflow observation.
fn fixture() -> Registry {
    let r = Registry::new();
    r.counter_with(
        "mv_rt_commits_total",
        "Commits by operation and outcome",
        &[("op", "commit"), ("outcome", "ok")],
    )
    .add(7);
    r.counter_with(
        "mv_rt_commits_total",
        "Commits by operation and outcome",
        &[("op", "revert"), ("outcome", "ok")],
    )
    .add(2);
    r.counter_with(
        "mv_rt_commits_total",
        "Commits by operation and outcome",
        &[("op", "commit"), ("outcome", "err")],
    )
    .inc();
    r.counter(
        "mv_rt_bytes_written_total",
        "Text bytes written by the patcher",
    )
    .add(4096);
    r.gauge("mv_mvd_queue_depth", "Entries waiting in the daemon queues")
        .set(3.0);
    let h = r.histogram(
        "mv_mvd_commit_latency_epochs",
        "Submit-to-commit latency in daemon epochs",
        &[1.0, 2.0, 4.0, 8.0],
    );
    for v in [0.5, 1.5, 1.5, 3.0, 9.0] {
        h.observe(v);
    }
    r
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {path:?} ({e}); run with BLESS=1 to create it")
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; run with BLESS=1 if intended"
    );
}

#[test]
fn prometheus_golden() {
    check_golden("snapshot.prom", &export::prometheus(&fixture().snapshot()));
}

#[test]
fn json_golden() {
    check_golden("snapshot.json", &export::json(&fixture().snapshot()));
}
