//! The ISA backend contract: every encoding decision the Multiverse §4
//! patching discipline depends on, behind one trait.
//!
//! Call-site rewriting, the generic-entry completeness jump, NOP fill
//! and inline-below-call-site images are all *facts about an
//! instruction set*: how wide a `call rel32` is, how its displacement is
//! computed, what bytes a NOP sled uses, what byte a planted trap is.
//! [`Backend`] owns those facts; [`Mv64Backend`] is the reference
//! implementation, extracted verbatim from the encoders that used to be
//! scattered across `mvrt::patch` and `mvc::codegen`. Everything above
//! this module (the runtime's transactions, quiesce protocols and the
//! compiler's call-site padding) talks to a `&dyn Backend` and never
//! names `CALL_SITE_LEN` or a raw opcode again.
//!
//! The trait-level invariants (see DESIGN.md "Backend contract"):
//!
//! * **Call-site width** — [`Backend::call_site_len`] bytes hold a whole
//!   `call rel32`; every recorded call site and every generic function
//!   entry is at least this wide.
//! * **Entry-jump atomicity** — [`Backend::encode_jmp`] produces exactly
//!   `call_site_len` bytes, so redirecting a generic entry is one
//!   contiguous write covered by one journal span.
//! * **Inline-size rule** — [`Backend::inline_image`] only accepts
//!   bodies that fit the site and pads the rest with
//!   [`Backend::nop_fill`], so an inlined variant never overwrites
//!   neighboring instructions.
//! * **Reach checking** — displacements are validated against the ±2 GiB
//!   `rel32` field by [`checked_rel32`] (the one shared implementation)
//!   instead of silently truncating.

use crate::insn::Insn;

/// Errors a backend can report while constructing patch images.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbiError {
    /// A `rel32` displacement from `site` to `target` does not fit the
    /// field.
    DisplacementOutOfRange {
        /// Address the displacement-carrying instruction starts at.
        site: u64,
        /// Requested branch target.
        target: u64,
    },
    /// An inline body is larger than the call site it should replace.
    InlineTooLarge {
        /// Body size in bytes.
        body: usize,
        /// Available site size in bytes.
        site_len: usize,
    },
}

impl core::fmt::Display for AbiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AbiError::DisplacementOutOfRange { site, target } => {
                write!(f, "displacement {site:#x} -> {target:#x} exceeds rel32")
            }
            AbiError::InlineTooLarge { body, site_len } => {
                write!(
                    f,
                    "inline body of {body} bytes exceeds {site_len}-byte site"
                )
            }
        }
    }
}

impl std::error::Error for AbiError {}

/// The one checked `rel32` displacement computation: from `next` (the
/// address immediately after the displacement-carrying instruction) to
/// `target`, or `None` when the distance exceeds the ±2 GiB reach of the
/// field. Both the assembler's branch fixups and the runtime's patch
/// encoders go through here — truncating `as i32` casts are how a
/// clean-looking patch lands 4 GiB off target.
pub fn checked_rel32(next: u64, target: u64) -> Option<i32> {
    i32::try_from(target as i128 - next as i128).ok()
}

/// Everything ISA-specific the patching layers need. See the module docs
/// for the invariants each method must uphold.
///
/// Backends are stateless encoders, so the trait demands `Send + Sync`:
/// runtimes store them behind shared handles and the commit daemon moves
/// whole runtimes across threads.
pub trait Backend: Send + Sync {
    /// Backend name (for reports and the `--backend` CLI flag).
    fn name(&self) -> &'static str;

    /// Width in bytes of a patchable call site: one whole `call rel32`.
    fn call_site_len(&self) -> usize;

    /// Longest instruction encoding this ISA produces — how many bytes a
    /// decoder may need to look at.
    fn max_insn_len(&self) -> usize;

    /// The one-byte trap instruction planted by the breakpoint quiesce
    /// protocol (`int3` on x86, `OP_TRAP` on MV64).
    fn trap_byte(&self) -> u8;

    /// Checked `rel32` displacement for a `call_site_len`-byte
    /// instruction at `at` reaching `target`.
    fn rel32(&self, at: u64, target: u64) -> Result<i32, AbiError> {
        at.checked_add(self.call_site_len() as u64)
            .and_then(|next| checked_rel32(next, target))
            .ok_or(AbiError::DisplacementOutOfRange { site: at, target })
    }

    /// Resolved target of a `call rel32` whose encoding starts at `site`.
    fn call_target(&self, site: u64, rel: i32) -> u64 {
        (site + self.call_site_len() as u64).wrapping_add(rel as i64 as u64)
    }

    /// Encodes a `call rel32` at `site` aimed at `target`. Exactly
    /// [`Backend::call_site_len`] bytes.
    fn encode_call(&self, site: u64, target: u64) -> Result<Vec<u8>, AbiError>;

    /// Encodes the generic-entry completeness `jmp rel32` at `at` aimed
    /// at `target`. Exactly [`Backend::call_site_len`] bytes.
    fn encode_jmp(&self, at: u64, target: u64) -> Result<Vec<u8>, AbiError>;

    /// A `len`-byte sled of NOP instructions.
    fn nop_fill(&self, len: usize) -> Vec<u8>;

    /// The byte image for inlining `body` (already stripped of its final
    /// return) into a site of `site_len` bytes, NOP-padded to exactly
    /// `site_len`. An empty body yields a pure NOP sled (Fig. 3 c); an
    /// oversized body is [`AbiError::InlineTooLarge`].
    fn inline_image(&self, body: &[u8], site_len: usize) -> Result<Vec<u8>, AbiError> {
        if body.len() > site_len {
            return Err(AbiError::InlineTooLarge {
                body: body.len(),
                site_len,
            });
        }
        let mut v = body.to_vec();
        v.extend(self.nop_fill(site_len - body.len()));
        Ok(v)
    }

    /// Pads a just-generated function body so its entry can later hold
    /// the completeness jump: extends `bytes` with NOP fill up to
    /// [`Backend::call_site_len`] if it is shorter (the codegen-side
    /// half of the entry-jump invariant).
    fn pad_entry(&self, bytes: &mut Vec<u8>) {
        if bytes.len() < self.call_site_len() {
            let fill = self.nop_fill(self.call_site_len() - bytes.len());
            bytes.extend(fill);
        }
    }
}

/// The MV64 reference backend: 5-byte `call rel32`/`jmp rel32`, 1- and
/// N-byte NOP encodings, `0xCC`-style one-byte trap.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mv64Backend;

/// The MV64 backend as a shareable trait object.
pub const MV64: &dyn Backend = &Mv64Backend;

impl Backend for Mv64Backend {
    fn name(&self) -> &'static str {
        "mv64"
    }

    fn call_site_len(&self) -> usize {
        crate::CALL_SITE_LEN
    }

    fn max_insn_len(&self) -> usize {
        16
    }

    fn trap_byte(&self) -> u8 {
        crate::encode::OP_TRAP
    }

    fn encode_call(&self, site: u64, target: u64) -> Result<Vec<u8>, AbiError> {
        Ok(crate::encode(&Insn::CallRel {
            rel: self.rel32(site, target)?,
        }))
    }

    fn encode_jmp(&self, at: u64, target: u64) -> Result<Vec<u8>, AbiError> {
        Ok(crate::encode(&Insn::Jmp {
            rel: self.rel32(at, target)?,
        }))
    }

    fn nop_fill(&self, len: usize) -> Vec<u8> {
        crate::nop_fill(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_and_jmp_are_exactly_one_call_site() {
        let site = 0x1_0000u64;
        let call = MV64.encode_call(site, 0x2_0000).unwrap();
        let jmp = MV64.encode_jmp(site, 0x2_0000).unwrap();
        assert_eq!(call.len(), MV64.call_site_len());
        assert_eq!(jmp.len(), MV64.call_site_len());
    }

    #[test]
    fn call_encode_roundtrips_through_call_target() {
        let site = 0x1_0000u64;
        for target in [0x1_0005u64, 0x0_8000, 0x2_0000, site] {
            let bytes = MV64.encode_call(site, target).unwrap();
            let (Insn::CallRel { rel }, _) = crate::decode(&bytes).unwrap() else {
                panic!()
            };
            assert_eq!(MV64.call_target(site, rel), target);
        }
    }

    #[test]
    fn rel32_boundaries_are_exact() {
        // A site high enough that the most negative displacement still
        // lands on a valid (non-wrapping) address.
        let site = 4u64 << 30;
        let next = site + MV64.call_site_len() as u64;
        // The extreme reachable targets still encode and round-trip…
        for target in [
            next + i32::MAX as u64,
            next - i32::MIN.unsigned_abs() as u64,
        ] {
            let bytes = MV64.encode_call(site, target).unwrap();
            let (Insn::CallRel { rel }, _) = crate::decode(&bytes).unwrap() else {
                panic!()
            };
            assert_eq!(MV64.call_target(site, rel), target);
        }
        // …one byte past either end is rejected instead of wrapping into
        // a wrong-but-valid rel32 (the old `as i32` truncation bug).
        for target in [
            next + i32::MAX as u64 + 1,
            next - i32::MIN.unsigned_abs() as u64 - 1,
            site + (4 << 30), // a clean 4 GiB away
        ] {
            let err = MV64.encode_call(site, target).unwrap_err();
            assert!(
                matches!(
                    err,
                    AbiError::DisplacementOutOfRange { site: s, target: t }
                        if s == site && t == target
                ),
                "{err:?}"
            );
            assert!(MV64.encode_jmp(site, target).is_err());
        }
    }

    #[test]
    fn checked_rel32_matches_try_from() {
        assert_eq!(checked_rel32(100, 50), Some(-50));
        assert_eq!(checked_rel32(0, i32::MAX as u64), Some(i32::MAX));
        assert_eq!(checked_rel32(0, i32::MAX as u64 + 1), None);
        assert_eq!(
            checked_rel32(u64::MAX, u64::MAX - i32::MIN.unsigned_abs() as u64),
            Some(i32::MIN)
        );
    }

    #[test]
    fn inline_image_pads_and_rejects() {
        let body = crate::encode(&Insn::Cli);
        let img = MV64.inline_image(&body, 5).unwrap();
        assert_eq!(img.len(), 5);
        let (first, n) = crate::decode(&img).unwrap();
        assert_eq!(first, Insn::Cli);
        let (second, _) = crate::decode(&img[n..]).unwrap();
        assert!(second.is_nop());
        // Empty body: a single wide NOP.
        let img = MV64.inline_image(&[], 5).unwrap();
        assert_eq!(crate::decode(&img).unwrap(), (Insn::Nop { len: 5 }, 5));
        // Oversized body: an error, not an assert.
        assert_eq!(
            MV64.inline_image(&[0x90u8; 6], 5).unwrap_err(),
            AbiError::InlineTooLarge {
                body: 6,
                site_len: 5
            }
        );
    }

    #[test]
    fn pad_entry_reaches_call_site_len() {
        let mut short = crate::encode(&Insn::Ret);
        MV64.pad_entry(&mut short);
        assert!(short.len() >= MV64.call_site_len());
        // Padding decodes as the original instruction followed by NOPs.
        let (first, n) = crate::decode(&short).unwrap();
        assert_eq!(first, Insn::Ret);
        assert!(crate::decode(&short[n..]).unwrap().0.is_nop());
        // Already long enough: untouched.
        let mut long = vec![0u8; 8];
        MV64.pad_entry(&mut long);
        assert_eq!(long.len(), 8);
    }

    #[test]
    fn trap_byte_is_the_trap_opcode() {
        assert_eq!(MV64.trap_byte(), crate::encode::OP_TRAP);
        assert_eq!(MV64.max_insn_len(), 16);
        assert_eq!(MV64.name(), "mv64");
    }
}
