#![warn(missing_docs)]
//! MV64 — the instruction-set architecture underlying the Multiverse
//! reproduction.
//!
//! The EuroSys'19 Multiverse paper patches IA-32/AMD64 text segments at run
//! time: it rewrites 5-byte `CALL rel32` instructions at recorded call sites,
//! overwrites function entries with 5-byte `JMP rel32` instructions, and
//! inlines function bodies that are smaller than a call site (padding with
//! wide `NOP`s). MV64 is an x86-flavoured ISA designed so that exactly these
//! binary transformations are expressible with the same size constraints:
//!
//! * [`Insn::CallRel`] and [`Insn::Jmp`] encode to exactly **5 bytes**
//!   (opcode + `rel32`), mirroring x86 `E8`/`E9`.
//! * Wide no-ops of any length from 1 to 15 bytes exist ([`nop_fill`]),
//!   mirroring the x86 multi-byte NOP used to erase empty bodies.
//! * Indirect calls through memory ([`Insn::CallMem`]) model the PV-Ops
//!   function-pointer dispatch that the Linux kernel patches at boot.
//! * Privileged interrupt-flag instructions ([`Insn::Sti`]/[`Insn::Cli`]) and
//!   [`Insn::Hypercall`] model the paravirtualization case study.
//!
//! The crate provides the instruction definitions ([`insn`]), binary
//! encoding and decoding ([`encode()`](encode()), [`decode()`](decode())), a label-resolving
//! assembler that records relocation fixups ([`asm`]), a disassembler
//! ([`disasm()`](disasm())), and calling-convention descriptions ([`cc`]) including the
//! custom all-callee-saved PV-Ops convention the paper discusses in §6.1.

pub mod abi;
pub mod asm;
pub mod cc;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod insn;
pub mod reg;

pub use abi::{AbiError, Backend, Mv64Backend, MV64};
pub use asm::{Assembler, Fixup, FixupKind};
pub use decode::{decode, DecodeError};
pub use disasm::disasm;
pub use encode::{encode, encode_into, nop_fill};
pub use insn::{AluOp, Cond, Insn, Width};
pub use reg::Reg;

/// Size in bytes of a `CALL rel32` / `JMP rel32` instruction.
///
/// This is the "far-call site is 5 bytes" constant from §4 of the paper: a
/// variant body is inlined into a call site only if it fits into this many
/// bytes.
pub const CALL_SITE_LEN: usize = 5;

/// Largest wide NOP instruction, as on x86 (15-byte instruction limit).
pub const MAX_NOP_LEN: usize = 15;
