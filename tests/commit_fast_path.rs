//! The commit fast path and the page-batched apply discipline.
//!
//! Delta planning: a `commit()` whose selected configuration is already
//! installed must plan **zero** text writes — no journal entries, no
//! mprotects, no flushes — and report the work as `unchanged`. Page
//! batching: the apply phase opens one RW window per touched text page,
//! performs every write inside, and relocks + flushes each page exactly
//! once, so protection-change and flush counts are O(pages) rather than
//! O(call sites). A 5-byte call site that straddles a page boundary must
//! open, restore and flush *both* pages, and a fault on the second
//! page's mprotect must roll the transaction back byte-identically.

use multiverse::{Program, World};
use mvasm::{Assembler, Insn, Reg};
use mvobj::descriptor::{
    emit_callsite, emit_function, emit_variable, CallsiteDescSym, FnDescSym, GuardSym, VarDescSym,
    VariantDescSym, NOT_INLINABLE,
};
use mvobj::{link, Executable, Layout, Object};
use mvrt::{CommitPhase, Runtime};
use mvvm::{CostModel, FaultOp, FaultPlan, Machine, MachineConfig, PAGE_SIZE};

/// A workload with the paper's §6.1 call-site count: `n_sites` calls to
/// one multiversed `hot` function, spread over many small callers so the
/// sites span several text pages.
fn sites_src(n_sites: usize) -> String {
    let mut src = String::from(
        "multiverse bool feature;\n\
         multiverse void hot(void) { if (feature) { __out(1); } }\n",
    );
    let per_fn = 6;
    let mut emitted = 0;
    let mut i = 0;
    while emitted < n_sites {
        src.push_str(&format!("void caller{i}(void) {{\n"));
        for _ in 0..per_fn.min(n_sites - emitted) {
            src.push_str("    hot();\n");
            emitted += 1;
        }
        src.push_str("}\n");
        i += 1;
    }
    src.push_str("i64 main(void) { return 0; }\n");
    src
}

fn committed_world(n_sites: usize) -> (Program, World) {
    let program = Program::build(&[("sites.c", &sites_src(n_sites))]).unwrap();
    let mut w = program.boot();
    w.set("feature", 1).unwrap();
    (program, w)
}

fn text_of(program: &Program, w: &World) -> Vec<u8> {
    let (taddr, tsize) = program.exe().section(mvobj::SEC_TEXT);
    w.machine.mem.read_vec(taddr, tsize as usize).unwrap()
}

#[test]
fn recommit_plans_zero_writes() {
    let (_program, mut w) = committed_world(64);
    let r1 = w.commit().unwrap();
    assert!(r1.variants_committed >= 1);
    assert_eq!(r1.unchanged, 0);
    assert_eq!(r1.repatched, 0);

    let before = w.rt.as_ref().unwrap().stats;
    let r2 = w.commit().unwrap();
    let rt = w.rt.as_ref().unwrap();
    let d = rt.stats.since(&before);

    // Nothing was installed, everything was recognized as current.
    assert_eq!(r2.variants_committed, 0);
    assert_eq!(r2.sites_touched, 0);
    assert!(r2.unchanged >= 1, "{r2:?}");
    // …and nothing was written: no journal growth, no byte traffic, no
    // protection changes, no flushes.
    assert_eq!(d.journal_entries, 0);
    assert_eq!(d.bytes_written, 0);
    assert_eq!(d.mprotects, 0);
    assert_eq!(d.icache_flushes, 0);
    assert_eq!(d.pages_touched, 0);
    // Every recorded site was skipped by delta planning.
    assert_eq!(d.sites_skipped, rt.num_callsites() as u64);
}

#[test]
fn recommit_after_switch_change_reinstalls() {
    let (_program, mut w) = committed_world(12);
    w.commit().unwrap();
    // Flip the switch: the selected variant changes, so the fast path
    // must NOT trigger.
    w.set("feature", 0).unwrap();
    let r = w.commit().unwrap();
    assert_eq!(r.variants_committed, 1);
    assert_eq!(r.unchanged, 0);
}

#[test]
fn batched_commit_does_o_pages_protection_changes() {
    let (_program, mut w) = committed_world(1161);
    w.commit().unwrap();
    let stats = w.rt.as_ref().unwrap().stats;
    assert!(
        stats.pages_touched >= 2,
        "workload must span pages ({} touched)",
        stats.pages_touched
    );
    // One RW + one RX per touched page, one flush per touched page —
    // and far fewer of each than there are patched sites.
    assert_eq!(stats.mprotects, 2 * stats.pages_touched);
    assert_eq!(stats.icache_flushes, stats.pages_touched);
    assert!(stats.sites_patched > stats.pages_touched);
}

#[test]
fn batched_and_per_site_commits_produce_identical_images() {
    let (program, mut batched) = committed_world(100);
    batched.commit().unwrap();

    let mut per_site = program.boot();
    per_site.set("feature", 1).unwrap();
    per_site.rt.as_mut().unwrap().batch_pages = false;
    per_site.commit().unwrap();

    assert_eq!(text_of(&program, &batched), text_of(&program, &per_site));

    // The ablation shows the cost difference the batching removes.
    let b = batched.rt.as_ref().unwrap().stats;
    let p = per_site.rt.as_ref().unwrap().stats;
    assert_eq!(p.mprotects, 2 * p.journal_entries, "per-site: 2 per write");
    assert!(b.mprotects < p.mprotects);
    assert!(b.icache_flushes < p.icache_flushes);
    assert_eq!(p.pages_touched, 0, "legacy path does not batch");
}

#[test]
fn repatch_heals_a_tampered_entry_jump() {
    let (_program, mut w) = committed_world(12);
    w.commit().unwrap();
    let entry = w.sym("hot").unwrap();
    let good = w.machine.mem.read_vec(entry, 5).unwrap();

    // Corrupt the displacement of the committed entry jump behind the
    // runtime's back. Bookkeeping still says "variant bound", so plain
    // delta planning would skip it — the byte verification must notice
    // and schedule a healing re-install instead.
    w.machine.mem.write_unchecked(entry + 1, &[0xAA]);
    assert_ne!(w.machine.mem.read_vec(entry, 5).unwrap(), good);

    let r = w.commit().unwrap();
    assert_eq!(r.repatched, 1, "{r:?}");
    assert_eq!(r.variants_committed, 1, "repatch counts as a commit");
    assert_eq!(w.machine.mem.read_vec(entry, 5).unwrap(), good, "healed");

    // And the commit after the heal is a pure fast path again.
    let r = w.commit().unwrap();
    assert_eq!(r.repatched, 0);
    assert_eq!(r.variants_committed, 0);
    assert!(r.unchanged >= 1);
}

#[test]
fn tampered_call_site_still_fails_validation() {
    let (_program, mut w) = committed_world(12);
    w.commit().unwrap();
    let site = {
        let rt = w.rt.as_ref().unwrap();
        rt.validate(&w.machine).sites[0].site
    };
    // A tampered *site* is not healed silently: the repatch install is
    // planned, but its validate pass must reject the unknown bytes.
    w.machine.mem.write_unchecked(site, &[0x90]);
    let err = match w.commit() {
        Err(multiverse::BuildError::Rt(e)) => e,
        other => panic!("expected a validate failure, got {other:?}"),
    };
    assert_eq!(err.commit_phase(), Some(CommitPhase::Validate));
}

#[test]
fn fast_path_emits_skip_and_batch_events() {
    let (_program, mut w) = committed_world(12);
    w.rt.as_mut().unwrap().enable_tracing(4096);
    w.commit().unwrap();
    w.commit().unwrap();
    let events = w.rt.as_mut().unwrap().take_trace();
    let batches = events
        .iter()
        .filter(|e| matches!(e.kind, mvtrace::EventKind::PageBatch { .. }))
        .count();
    let skips: Vec<_> = events
        .iter()
        .filter_map(|e| match e.kind {
            mvtrace::EventKind::ActionSkipped { function, sites } => Some((function, sites)),
            _ => None,
        })
        .collect();
    assert_eq!(batches, 1, "only the first commit writes");
    let hot = w.sym("hot").unwrap();
    let n_sites = w.rt.as_ref().unwrap().callsites_of(hot) as u64;
    assert!(
        skips.contains(&(hot, n_sites)),
        "second commit must skip hot's install: {skips:?}"
    );
}

// --- page-straddling call site ----------------------------------------

/// Builds a hand-laid-out program whose single recorded call site starts
/// `pad` bytes into `caller`, so the test can park the 5-byte site right
/// across a page boundary. Returns the site address alongside the usual
/// trio.
fn straddle_fixture(pad: usize) -> (Machine, Executable, Runtime, u64) {
    let mut o = Object::new("t");
    o.define_bss("A", 4);
    let mut a = Assembler::new();
    a.emit(Insn::Halt);
    o.add_code("main", &a.finish().unwrap());

    let mut a = Assembler::new();
    a.load_sym(Reg::R0, "A", 0, mvasm::Width::W32, true);
    a.ret();
    let g = a.finish().unwrap();
    let g_size = g.bytes.len() as u32;
    o.add_code("mv", &g);

    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 7);
    a.ret();
    o.add_code("mv.A=1", &a.finish().unwrap());

    let mut a = Assembler::new();
    for _ in 0..pad {
        a.emit(Insn::Nop { len: 1 });
    }
    let off = a.len() as u32;
    a.call_sym("mv", true);
    a.ret();
    o.add_code("caller", &a.finish().unwrap());
    emit_callsite(
        &mut o,
        &CallsiteDescSym {
            callee: "mv".into(),
            caller: "caller".into(),
            offset: off,
        },
    );
    emit_variable(
        &mut o,
        &VarDescSym {
            symbol: "A".into(),
            width: 4,
            signed: true,
            fn_ptr: false,
            name_sym: None,
        },
    );
    emit_function(
        &mut o,
        &FnDescSym {
            symbol: "mv".into(),
            generic_size: g_size,
            generic_inline_len: NOT_INLINABLE,
            name_sym: None,
            variants: vec![VariantDescSym {
                symbol: "mv.A=1".into(),
                body_size: 11,
                inline_len: NOT_INLINABLE,
                guards: vec![GuardSym {
                    var_symbol: "A".into(),
                    low: 1,
                    high: 1,
                }],
            }],
        },
    );
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut m = Machine::new(CostModel::default(), MachineConfig::default());
    m.load(&exe);
    m.mem.write_int(exe.symbol("A").unwrap(), 1, 4).unwrap();
    let rt = Runtime::attach(&m, &exe).unwrap();
    let site = exe.symbol("caller").unwrap() + off as u64;
    (m, exe, rt, site)
}

/// Pad needed so the recorded call site begins 2 bytes before a page
/// boundary (bytes 2 on the first page, 3 on the next).
fn straddle_pad() -> usize {
    let (_, _, _, site0) = straddle_fixture(0);
    let want = PAGE_SIZE - 2;
    ((want + PAGE_SIZE - site0 % PAGE_SIZE) % PAGE_SIZE) as usize
}

#[test]
fn straddling_site_commit_fixes_both_pages() {
    let pad = straddle_pad();
    for batch in [true, false] {
        let (mut m, exe, mut rt, site) = straddle_fixture(pad);
        rt.batch_pages = batch;
        assert_eq!(site % PAGE_SIZE, PAGE_SIZE - 2, "site must straddle");
        let second_page = (site + 4) & !(PAGE_SIZE - 1);
        let v0 = (m.mem.code_version(site), m.mem.code_version(second_page));

        let report = rt.commit(&mut m).unwrap();
        assert_eq!(report.variants_committed, 1);
        assert_eq!(report.sites_touched, 1);

        // Both pages relocked (W^X restored) and both flushed.
        assert!(m.mem.write(site, &[0]).is_err(), "first page left RW");
        assert!(
            m.mem.write(second_page, &[0]).is_err(),
            "second page left RW"
        );
        let v1 = (m.mem.code_version(site), m.mem.code_version(second_page));
        assert!(v1.0 > v0.0 && v1.1 > v0.1, "{v0:?} -> {v1:?}");

        // The committed call reaches the variant: its rel32 points there.
        let target = exe.symbol("mv.A=1").unwrap();
        let bytes = m.mem.read_vec(site, 5).unwrap();
        let (Insn::CallRel { rel }, _) = mvasm::decode(&bytes).unwrap() else {
            panic!("site does not hold a call")
        };
        assert_eq!((site + 5).wrapping_add(rel as i64 as u64), target);
    }
}

#[test]
fn straddling_site_fault_sweep_rolls_back_cleanly() {
    let pad = straddle_pad();
    // Probe a clean commit per mode for the op counts, then fail every
    // mprotect and every flush position in turn — including the second
    // page's RW open and RX relock.
    for batch in [true, false] {
        let (mut probe_m, _exe, mut probe_rt, _site) = straddle_fixture(pad);
        probe_rt.batch_pages = batch;
        probe_rt.commit(&mut probe_m).unwrap();
        let d = probe_rt.stats;
        assert!(d.mprotects >= 4, "straddle must touch several pages");

        let schedule = [
            (FaultOp::Mprotect, d.mprotects),
            (FaultOp::IcacheFlush, d.icache_flushes),
            (FaultOp::TextWrite, d.journal_entries),
        ];
        for (op, count) in schedule {
            for n in 1..=count {
                let (mut m, exe, mut rt, _site) = straddle_fixture(pad);
                rt.batch_pages = batch;
                let (taddr, tsize) = exe.section(mvobj::SEC_TEXT);
                let pristine = m.mem.read_vec(taddr, tsize as usize).unwrap();

                m.inject_fault(FaultPlan::new(op, n));
                let err = rt
                    .commit(&mut m)
                    .expect_err(&format!("batch={batch} {op:?}@{n} must surface"));
                assert_eq!(
                    err.commit_phase(),
                    Some(CommitPhase::Apply),
                    "batch={batch} {op:?}@{n}: {err:?}"
                );
                assert_eq!(
                    m.mem.read_vec(taddr, tsize as usize).unwrap(),
                    pristine,
                    "batch={batch} {op:?}@{n} tore the text"
                );
                assert_eq!(rt.stats.rollbacks, 1, "batch={batch} {op:?}@{n}");

                // One-shot fault has fired; the same commit heals.
                let report = rt.commit(&mut m).unwrap();
                assert_eq!(report.variants_committed, 1);
            }
        }
    }
}
