//! Linked executable images.

use crate::section::Prot;
use std::collections::HashMap;

/// A loadable memory segment of a linked image.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Load address (page-aligned).
    pub addr: u64,
    /// Initial protection.
    pub prot: Prot,
    /// Contents (BSS is materialized as zeroes).
    pub bytes: Vec<u8>,
    /// Section name this segment was produced from.
    pub name: String,
}

/// A fully linked, position-resolved executable.
///
/// This is what the `mvvm` machine loads and what the `mvrt` run-time
/// library inspects for descriptor sections.
#[derive(Clone, Debug, Default)]
pub struct Executable {
    /// Segments in ascending address order.
    pub segments: Vec<Segment>,
    /// Global symbol table: name → absolute address.
    pub symbols: HashMap<String, u64>,
    /// Section map: name → (address, size). Covers descriptor sections.
    pub sections: HashMap<String, (u64, u64)>,
    /// Address of the entry function (`main`).
    pub entry: u64,
}

impl Executable {
    /// Address of a global symbol.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Address and size of a section; `(0, 0)` for absent descriptor
    /// sections (a program without multiversed functions has none).
    pub fn section(&self, name: &str) -> (u64, u64) {
        self.sections.get(name).copied().unwrap_or((0, 0))
    }

    /// Total image size in bytes (sum of segment contents), the measure
    /// used for the paper's "+40 KiB image size" accounting.
    pub fn image_size(&self) -> u64 {
        self.segments.iter().map(|s| s.bytes.len() as u64).sum()
    }

    /// Reverse-maps an address to the nearest preceding function symbol —
    /// handy in diagnostics and tests.
    pub fn symbolize(&self, addr: u64) -> Option<(&str, u64)> {
        self.symbols
            .iter()
            .filter(|&(_, &a)| a <= addr)
            .max_by_key(|&(_, &a)| a)
            .map(|(n, &a)| (n.as_str(), addr - a))
    }
}
