//! E10 — the footnote-1 ablation: a dynamic feature test is nearly free
//! in a warm tight loop but pays the misprediction penalty on cold
//! predictors; the committed multiverse variant has no branch to
//! mispredict.

use criterion::{criterion_group, criterion_main, Criterion};
use multiverse::bench::render_table;
use multiverse::mvvm::MachineMode;
use mv_workloads::spinlock::{boot, KernelBuild};

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        render_table(
            "E10 — warm vs. cold predictors (SMP spinlock)",
            &mv_bench::btb_data()
        )
    );

    let mut g = c.benchmark_group("ablation_btb");
    for (name, kind) in [
        ("dynamic_if", KernelBuild::ElisionIf),
        ("multiverse", KernelBuild::ElisionMultiverse),
    ] {
        for cold in [false, true] {
            let mut w = boot(kind, MachineMode::Multicore).expect("boot");
            let bname = format!("{name}_{}", if cold { "cold" } else { "warm" });
            g.bench_function(&bname, |b| {
                b.iter(|| w.time_calls("lock_unlock", &[], 50, cold).expect("measure"))
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
