//! True SMP execution: N virtual CPUs over one shared memory image.
//!
//! The paper's marquee case studies (spinlocks, PV-Ops) are about
//! multi-core kernels, and §7.3 frames `multiverse_commit()` as binary
//! patching of text *other CPUs may be executing*. A single-vCPU machine
//! cannot exhibit the hazards that make that hard — torn fetches, stale
//! per-CPU icaches, a core resuming into a half-patched function — so
//! this module provides the missing substrate:
//!
//! * [`SmpMachine`] owns one [`Machine`] (shared [`crate::mem::Memory`],
//!   cost model, output sink) plus one [`CpuContext`] per vCPU —
//!   registers, predictors, stats and the private decoded-instruction
//!   cache. Contexts are O(1)-swapped into the interpreter for each
//!   quantum, so all single-core semantics (costs, fusion, predictors)
//!   carry over unchanged.
//! * A deterministic round-robin scheduler: each round visits the vCPUs
//!   in rotating order and runs each for a quantum whose length is
//!   jittered by a seeded xorshift generator. The same seed always
//!   reproduces the same interleaving — the property the concurrent
//!   commit sweep in `tests/` relies on.
//! * Per-CPU icaches with an explicit IPI-style shootdown: the machine
//!   runs in sticky-icache mode ([`Machine::set_sticky_icache`]), so a
//!   text patch becomes visible to a vCPU only after
//!   [`SmpMachine::flush_remote`] evicts its private decode cache —
//!   forgetting the shootdown leaves stale instructions observably
//!   executing, exactly the cross-modifying-code hazard Linux's
//!   `text_poke` machinery exists to prevent.
//! * A registered trap handler for the 1-byte [`mvasm::Insn::Trap`]
//!   (`0xCC`): by default a trapping vCPU stalls at the trap byte
//!   (breakpoint-first patching parks cores this way); handlers can
//!   override the disposition.
//!
//! Commits run host-side *between* quanta — the interpreter itself is
//! not preemptible mid-instruction, which mirrors real hardware:
//! instruction fetch is atomic, and all the interesting races live at
//! instruction granularity.

use crate::block::{BlockCacheStats, ExecTier};
use crate::cost::CostModel;
use crate::machine::{CpuContext, Fault, Machine, MachineConfig, MachineMode, RET_SENTINEL};
use crate::stats::Stats;
use mvasm::Reg;
use mvobj::Executable;

/// What a registered trap handler tells the scheduler to do with a
/// vCPU that fetched a trap byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrapDisposition {
    /// Park the vCPU at the trap byte; it re-executes the same address
    /// once released (after the patcher restores/overwrites the byte
    /// and shoots down the icache). This is the breakpoint-first
    /// default.
    Stall,
    /// Skip the trap byte (advance `pc` by one) and keep running —
    /// debugger-style resume.
    Skip,
}

/// Scheduling state of one vCPU.
#[derive(Clone, Debug)]
pub enum VcpuState {
    /// No work has been spawned on this vCPU.
    Idle,
    /// Runnable: the scheduler steps it each round.
    Runnable,
    /// Parked at a safepoint by [`SmpMachine::park`]; burns `pause`
    /// cycles until unparked.
    Parked,
    /// Stalled on a trap byte; `addr` is the trap address (== its `pc`).
    Trapped {
        /// Address of the trap byte the vCPU is stalled on.
        addr: u64,
    },
    /// The spawned call returned; the value is `r0`.
    Done {
        /// Return value of the spawned call.
        ret: u64,
    },
    /// The vCPU faulted; the scheduler will not step it again.
    Faulted(Fault),
}

impl VcpuState {
    /// `true` while the vCPU still has work the scheduler could run or
    /// resume (runnable, parked or trapped).
    pub fn is_live(&self) -> bool {
        matches!(
            self,
            VcpuState::Runnable | VcpuState::Parked | VcpuState::Trapped { .. }
        )
    }
}

/// A registered trap handler: `(vcpu, trap_addr) -> disposition`.
pub type TrapHandler = Box<dyn FnMut(usize, u64) -> TrapDisposition>;

/// Default scheduling quantum (instructions per vCPU per round).
pub const DEFAULT_QUANTUM: u64 = 32;
/// Default quantum jitter: each visit runs `quantum - (rng % jitter)`
/// instructions, so seeds produce distinct interleavings.
pub const DEFAULT_JITTER: u64 = 16;

/// A multi-vCPU machine: shared memory, N CPU contexts, a deterministic
/// seeded round-robin scheduler, per-CPU icaches with IPI shootdown.
pub struct SmpMachine {
    /// The shared interpreter. Host-side code (the patching runtime)
    /// operates on this directly between quanta; its resident
    /// [`CpuContext`] is a scratch that is swapped per quantum.
    pub machine: Machine,
    ctxs: Vec<CpuContext>,
    states: Vec<VcpuState>,
    base_sp: Vec<u64>,
    stall: Vec<u64>,
    quantum: u64,
    jitter: u64,
    seed: u64,
    rng: u64,
    rounds: u64,
    executed: Vec<u64>,
    shootdowns: u64,
    trap_hits: u64,
    handler: Option<TrapHandler>,
}

fn xorshift(x: &mut u64) -> u64 {
    let mut v = *x;
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    *x = v;
    v
}

impl SmpMachine {
    /// Creates an SMP machine with `n` vCPUs (`n >= 1`).
    ///
    /// The machine is forced into [`MachineMode::Multicore`] (atomics pay
    /// coherence) and sticky-icache mode (private per-CPU icaches; see
    /// module docs). The stack region is divided into `n` equal
    /// per-vCPU stacks.
    pub fn new(cost: CostModel, config: MachineConfig, n: usize) -> SmpMachine {
        assert!(n >= 1, "need at least one vCPU");
        let config = MachineConfig {
            mode: MachineMode::Multicore,
            ..config
        };
        let mut machine = Machine::new(cost, config);
        machine.set_sticky_icache(true);
        let stride = config.stack_size / n as u64;
        assert!(stride >= 4096, "stack too small for {n} vCPUs");
        let mut ctxs = Vec::with_capacity(n);
        let mut base_sp = Vec::with_capacity(n);
        for i in 0..n {
            let sp = crate::machine::STACK_TOP - 64 - i as u64 * stride;
            ctxs.push(CpuContext {
                cpu: crate::cpu::Cpu::new(sp),
                ..CpuContext::default()
            });
            base_sp.push(sp);
        }
        SmpMachine {
            machine,
            ctxs,
            states: vec![VcpuState::Idle; n],
            base_sp,
            stall: vec![0; n],
            quantum: DEFAULT_QUANTUM,
            jitter: DEFAULT_JITTER,
            seed: 0x9E37_79B9_7F4A_7C15,
            rng: 0x9E37_79B9_7F4A_7C15,
            rounds: 0,
            executed: vec![0; n],
            shootdowns: 0,
            trap_hits: 0,
            handler: None,
        }
    }

    /// Creates a default SMP machine with `n` vCPUs and loads `exe`.
    pub fn boot(exe: &Executable, n: usize) -> SmpMachine {
        let mut smp = SmpMachine::new(CostModel::default(), MachineConfig::default(), n);
        smp.machine.load(exe);
        smp
    }

    /// Number of vCPUs.
    pub fn vcpus(&self) -> usize {
        self.ctxs.len()
    }

    /// Reseeds the interleaving generator. The same seed over the same
    /// workload reproduces the same schedule exactly.
    pub fn set_seed(&mut self, seed: u64) {
        // xorshift has an all-zero fixed point; nudge it.
        self.seed = if seed == 0 { 0xDEAD_BEEF } else { seed };
        self.rng = self.seed;
    }

    /// The interleaving seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Overrides quantum length and jitter (`jitter >= 1`; an effective
    /// quantum is always at least one instruction).
    pub fn set_quantum(&mut self, quantum: u64, jitter: u64) {
        self.quantum = quantum.max(1);
        self.jitter = jitter.max(1);
    }

    /// Registers the trap handler consulted when a vCPU fetches a trap
    /// byte. Without one, every trap stalls the vCPU
    /// ([`TrapDisposition::Stall`]).
    pub fn set_trap_handler(&mut self, h: TrapHandler) {
        self.handler = Some(h);
    }

    /// Removes the registered trap handler.
    pub fn clear_trap_handler(&mut self) {
        self.handler = None;
    }

    /// Spawns a call to `addr` with register `args` on vCPU `i`: resets
    /// its context to a fresh stack, pushes the return sentinel and
    /// marks it runnable. Like [`Machine::call`] but scheduled rather
    /// than run to completion.
    pub fn spawn(&mut self, i: usize, addr: u64, args: &[u64]) -> Result<(), Fault> {
        assert!(args.len() <= 6, "at most six register arguments");
        let ctx = &mut self.ctxs[i];
        let mut cpu = crate::cpu::Cpu::new(self.base_sp[i]);
        for (k, &a) in args.iter().enumerate() {
            cpu.set(Reg::new(k as u8).expect("< 6"), a);
        }
        let sp = cpu.sp().wrapping_sub(8);
        self.machine.mem.write(sp, &RET_SENTINEL.to_le_bytes())?;
        cpu.set(Reg::SP, sp);
        cpu.pc = addr;
        ctx.cpu = cpu;
        ctx.pred.flush();
        ctx.fusable_at = None;
        self.states[i] = VcpuState::Runnable;
        self.executed[i] = 0;
        Ok(())
    }

    /// Parks a runnable vCPU at its current `pc` (a safepoint the caller
    /// has verified). Parked vCPUs burn `pause` cycles per round.
    pub fn park(&mut self, i: usize) {
        if matches!(self.states[i], VcpuState::Runnable) {
            self.states[i] = VcpuState::Parked;
        }
    }

    /// Unparks a parked vCPU.
    pub fn unpark(&mut self, i: usize) {
        if matches!(self.states[i], VcpuState::Parked) {
            self.states[i] = VcpuState::Runnable;
        }
    }

    /// Releases a vCPU stalled on a trap byte: it re-executes the trap
    /// address, so the caller must first have replaced the byte and shot
    /// down icaches, or it traps again immediately.
    pub fn release_trap(&mut self, i: usize) {
        if matches!(self.states[i], VcpuState::Trapped { .. }) {
            self.states[i] = VcpuState::Runnable;
        }
    }

    /// IPI-style cross-CPU icache shootdown: evicts `[start, end)` (or
    /// everything, with `None`) from every vCPU's private decode cache
    /// *and* the machine's resident one. Returns the number of caches
    /// invalidated. This is the only operation that makes patched text
    /// visible to already-running vCPUs in sticky-icache mode.
    ///
    /// A [`crate::FaultPlan`] targeting [`crate::FaultOp::Shootdown`]
    /// silently loses the broadcast: nothing is evicted, the shootdown
    /// counter does not move, and `0` is returned. A real broadcast
    /// always acknowledges at least one cache (the machine's resident
    /// one), so callers can detect the lost IPI and re-issue.
    pub fn flush_remote(&mut self, range: Option<(u64, u64)>) -> usize {
        let fault_addr = range.map_or(0, |(s, _)| s);
        if self
            .machine
            .mem
            .trip_fault(crate::FaultOp::Shootdown, fault_addr)
        {
            return 0;
        }
        match range {
            Some((s, e)) => {
                for ctx in &mut self.ctxs {
                    ctx.decode_cache.retain(|&pc, _| pc < s || pc >= e);
                    ctx.blocks.invalidate_range(s, e);
                }
                self.machine.invalidate_decode_range(s, e);
            }
            None => {
                for ctx in &mut self.ctxs {
                    ctx.decode_cache.clear();
                    ctx.blocks.invalidate_all();
                }
                self.machine.invalidate_decode_all();
            }
        }
        self.shootdowns += 1;
        self.ctxs.len() + 1
    }

    /// Selects the execution tier (see [`ExecTier`]) for every vCPU: the
    /// tier is machine state, the block caches stay per-CPU. Switching
    /// tiers resets every vCPU's block cache so all tiers start cold.
    pub fn set_tier(&mut self, tier: ExecTier) {
        if self.machine.tier() != tier {
            for ctx in &mut self.ctxs {
                ctx.blocks.reset();
            }
        }
        self.machine.set_tier(tier);
    }

    /// The active execution tier.
    pub fn tier(&self) -> ExecTier {
        self.machine.tier()
    }

    /// Roll-up of block-cache counters across the resident machine and
    /// every vCPU's private block cache.
    pub fn block_stats(&self) -> BlockCacheStats {
        let mut total = self.machine.block_stats();
        for ctx in &self.ctxs {
            total += ctx.blocks.stats;
        }
        total
    }

    /// Number of shootdowns issued so far.
    pub fn shootdowns(&self) -> u64 {
        self.shootdowns
    }

    /// Number of trap-byte hits taken so far.
    pub fn trap_hits(&self) -> u64 {
        self.trap_hits
    }

    /// Scheduler rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Cycles vCPU `i` has spent parked or trap-stalled.
    pub fn stall_cycles(&self, i: usize) -> u64 {
        self.stall[i]
    }

    /// Total stall cycles across all vCPUs.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall.iter().sum()
    }

    /// Scheduling state of vCPU `i`.
    pub fn state(&self, i: usize) -> &VcpuState {
        &self.states[i]
    }

    /// The context of vCPU `i` (registers, predictors, stats, icache).
    pub fn context(&self, i: usize) -> &CpuContext {
        &self.ctxs[i]
    }

    /// Mutable context of vCPU `i`.
    pub fn context_mut(&mut self, i: usize) -> &mut CpuContext {
        &mut self.ctxs[i]
    }

    /// Current `pc` of vCPU `i`.
    pub fn pc_of(&self, i: usize) -> u64 {
        self.ctxs[i].cpu.pc
    }

    /// Return-address backtrace of vCPU `i` (its context need not be
    /// resident).
    pub fn backtrace_of(&self, i: usize, max_frames: usize) -> Vec<u64> {
        self.machine
            .backtrace_from(self.ctxs[i].cpu.get(Reg::BP), max_frames)
    }

    /// Machine-wide event-counter roll-up: the sum of every vCPU's
    /// private [`Stats`] (plus whatever retired on the resident scratch
    /// context, normally zero).
    pub fn total_stats(&self) -> Stats {
        let mut total = self.machine.stats;
        for ctx in &self.ctxs {
            total += ctx.stats;
        }
        total
    }

    /// TSC of vCPU `i`.
    pub fn cycles_of(&self, i: usize) -> u64 {
        self.ctxs[i].cpu.tsc
    }

    /// The highest per-vCPU TSC — wall-clock time of the parallel
    /// execution under the cost model.
    pub fn max_cycles(&self) -> u64 {
        self.ctxs.iter().map(|c| c.cpu.tsc).max().unwrap_or(0)
    }

    /// `true` while any vCPU is runnable, parked or trapped.
    pub fn any_live(&self) -> bool {
        self.states.iter().any(|s| s.is_live())
    }

    /// `true` once every spawned vCPU has finished (`Done`); idle vCPUs
    /// are ignored.
    pub fn all_done(&self) -> bool {
        self.states
            .iter()
            .all(|s| matches!(s, VcpuState::Idle | VcpuState::Done { .. }))
    }

    /// Return value of vCPU `i`, if it finished.
    pub fn result(&self, i: usize) -> Option<u64> {
        match self.states[i] {
            VcpuState::Done { ret } => Some(ret),
            _ => None,
        }
    }

    /// Runs one scheduler round: visits every vCPU in rotating order and
    /// steps the runnable ones for a jittered quantum; parked/trapped
    /// vCPUs burn `pause` cycles. Returns the number of instructions
    /// retired this round.
    pub fn step_round(&mut self) -> u64 {
        let n = self.ctxs.len();
        let start = (xorshift(&mut self.rng) % n as u64) as usize;
        let mut retired = 0u64;
        for k in 0..n {
            let i = (start + k) % n;
            let q = self.quantum - xorshift(&mut self.rng) % self.jitter;
            let q = q.max(1);
            match self.states[i] {
                VcpuState::Runnable => retired += self.run_quantum(i, q),
                VcpuState::Parked | VcpuState::Trapped { .. } => {
                    // A parked core spins at its safepoint (pause loop);
                    // the burned cycles are the worker-side cost of the
                    // quiesce protocol, reported by the E15 experiment.
                    let c = q * self.machine.cost.pause;
                    self.ctxs[i].cpu.tsc += c;
                    self.stall[i] += c;
                }
                _ => {}
            }
        }
        self.rounds += 1;
        retired
    }

    fn run_quantum(&mut self, i: usize, quantum: u64) -> u64 {
        self.machine.swap_context(&mut self.ctxs[i]);
        let mut retired = 0u64;
        // `slots` is the quantum budget in issue slots: each retired
        // instruction consumes one, and so does a trap fetch (the vCPU
        // occupied the pipeline without retiring) — the exact accounting
        // of the old one-step-per-iteration loop, so schedules are
        // byte-identical across tiers.
        let mut slots = quantum;
        while slots > 0 {
            if self.machine.cpu.pc == RET_SENTINEL || self.machine.cpu.halted {
                self.states[i] = VcpuState::Done {
                    ret: self.machine.cpu.get(Reg::R0),
                };
                break;
            }
            if self.executed[i] >= self.machine.config().fuel {
                self.states[i] = VcpuState::Faulted(Fault::Timeout {
                    executed: self.executed[i],
                });
                break;
            }
            let budget = slots.min(self.machine.config().fuel - self.executed[i]);
            let (n, r) = self.machine.step_tiered(budget);
            retired += n;
            self.executed[i] += n;
            slots -= n;
            match r {
                Ok(()) => {}
                Err(Fault::Trap { addr }) => {
                    self.trap_hits += 1;
                    // A fault surfaces only while retired < budget, so at
                    // least one slot is left for the trap fetch.
                    slots -= 1;
                    let disposition = match &mut self.handler {
                        Some(h) => h(i, addr),
                        None => TrapDisposition::Stall,
                    };
                    match disposition {
                        TrapDisposition::Stall => {
                            self.states[i] = VcpuState::Trapped { addr };
                            break;
                        }
                        TrapDisposition::Skip => {
                            self.machine.cpu.pc = addr + 1;
                        }
                    }
                }
                Err(f) => {
                    self.states[i] = VcpuState::Faulted(f);
                    break;
                }
            }
        }
        // A vCPU that finished exactly at the end of its quantum is
        // marked Done on its next visit via the checks above.
        if matches!(self.states[i], VcpuState::Runnable) && self.machine.cpu.pc == RET_SENTINEL {
            self.states[i] = VcpuState::Done {
                ret: self.machine.cpu.get(Reg::R0),
            };
        }
        self.machine.swap_context(&mut self.ctxs[i]);
        retired
    }

    /// Runs scheduler rounds until every spawned vCPU finishes, up to
    /// `max_rounds`. Returns per-vCPU results (`0` for idle vCPUs).
    /// Faulted vCPUs surface their fault; exceeding `max_rounds` with
    /// parked/trapped vCPUs still pending is a [`Fault::Timeout`].
    pub fn run_until_done(&mut self, max_rounds: u64) -> Result<Vec<u64>, Fault> {
        for _ in 0..max_rounds {
            if self.all_done() {
                break;
            }
            self.step_round();
            for s in &self.states {
                if let VcpuState::Faulted(f) = s {
                    return Err(f.clone());
                }
            }
        }
        if !self.all_done() {
            return Err(Fault::Timeout {
                executed: self.executed.iter().sum(),
            });
        }
        Ok((0..self.ctxs.len())
            .map(|i| self.result(i).unwrap_or(0))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasm::{AluOp, Insn};
    use mvobj::{link, Layout, Object, SectionKind, Symbol};

    fn exe_with_fn(body: impl FnOnce(&mut mvasm::Assembler)) -> Executable {
        let mut a = mvasm::Assembler::new();
        a.emit(Insn::Halt); // entry
        a.label("f");
        let off = a.len();
        body(&mut a);
        let blob = a.finish().unwrap();
        let len = blob.bytes.len() as u64 - off as u64;
        let mut o = Object::new("t");
        o.append(mvobj::SEC_TEXT, SectionKind::Text, &blob.bytes);
        o.define(Symbol::func("main", mvobj::SEC_TEXT, 0, 1));
        o.define(Symbol::func("f", mvobj::SEC_TEXT, off as u64, len));
        link(&[o], &Layout::default()).unwrap()
    }

    fn adder_exe() -> Executable {
        exe_with_fn(|a| {
            a.emit(Insn::AluRI {
                op: AluOp::Add,
                dst: Reg::R0,
                imm: 5,
            });
            a.ret();
        })
    }

    #[test]
    fn vcpus_run_independent_calls() {
        let exe = adder_exe();
        let mut smp = SmpMachine::boot(&exe, 4);
        let f = exe.symbol("f").unwrap();
        for i in 0..4 {
            smp.spawn(i, f, &[i as u64 * 10]).unwrap();
        }
        let results = smp.run_until_done(1000).unwrap();
        assert_eq!(results, vec![5, 15, 25, 35]);
    }

    #[test]
    fn same_seed_same_interleaving() {
        let exe = exe_with_fn(|a| {
            // Loop long enough to span many quanta.
            a.mov_ri(Reg::R1, 0);
            a.label("loop");
            a.emit(Insn::AluRI {
                op: AluOp::Add,
                dst: Reg::R1,
                imm: 1,
            });
            a.cmp_ri(Reg::R1, 500);
            a.jcc("loop", mvasm::Cond::Lt);
            a.emit(Insn::MovRR {
                dst: Reg::R0,
                src: Reg::R1,
            });
            a.ret();
        });
        let f = exe.symbol("f").unwrap();
        // The observable is the schedule itself: instructions retired per
        // round (per-vCPU cycle totals are schedule-independent for
        // non-interacting workloads).
        let run = |seed: u64| {
            let mut smp = SmpMachine::boot(&exe, 3);
            smp.set_seed(seed);
            for i in 0..3 {
                smp.spawn(i, f, &[]).unwrap();
            }
            let mut schedule = Vec::new();
            while !smp.all_done() {
                schedule.push(smp.step_round());
                assert!(smp.rounds() < 10_000);
            }
            let cycles: Vec<u64> = (0..3).map(|i| smp.cycles_of(i)).collect();
            (schedule, cycles)
        };
        assert_eq!(run(7), run(7), "identical seeds must reproduce exactly");
        assert_ne!(
            run(7).0,
            run(8).0,
            "different seeds should perturb the schedule"
        );
    }

    #[test]
    fn per_vcpu_stacks_do_not_collide() {
        // Each vCPU pushes/pops around its call; distinct results prove
        // isolated stacks (a shared stack would corrupt return paths).
        let exe = adder_exe();
        let mut smp = SmpMachine::boot(&exe, 8);
        let f = exe.symbol("f").unwrap();
        for i in 0..8 {
            smp.spawn(i, f, &[100 * i as u64]).unwrap();
        }
        let results = smp.run_until_done(1000).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, 100 * i as u64 + 5);
        }
    }

    #[test]
    fn sticky_icache_requires_shootdown() {
        let exe = adder_exe();
        let f = exe.symbol("f").unwrap();
        let mut smp = SmpMachine::boot(&exe, 2);
        smp.spawn(0, f, &[0]).unwrap();
        let r = smp.run_until_done(1000).unwrap();
        assert_eq!(r[0], 5);

        // Patch `add r0, 5` → `add r0, 9` host-side with a *global*
        // icache flush but no shootdown: vCPU 0's private cache stays
        // stale, a freshly spawned decode on vCPU 1 sees the new code.
        let patched = mvasm::encode(&Insn::AluRI {
            op: AluOp::Add,
            dst: Reg::R0,
            imm: 9,
        });
        smp.machine.mem.mprotect(f, 16, mvobj::Prot::RW).unwrap();
        smp.machine.mem.write(f, &patched).unwrap();
        smp.machine.mem.mprotect(f, 16, mvobj::Prot::RX).unwrap();
        smp.machine.mem.flush_icache(f, 16);

        smp.spawn(0, f, &[0]).unwrap();
        let stale = smp.run_until_done(1000).unwrap();
        assert_eq!(stale[0], 5, "no shootdown: vCPU 0 must execute stale code");

        smp.flush_remote(Some((f, f + 16)));
        smp.spawn(0, f, &[0]).unwrap();
        let fresh = smp.run_until_done(1000).unwrap();
        assert_eq!(fresh[0], 9, "after shootdown the patch is visible");
        assert_eq!(smp.shootdowns(), 1);
    }

    #[test]
    fn trap_stalls_until_released() {
        let exe = adder_exe();
        let f = exe.symbol("f").unwrap();
        let mut smp = SmpMachine::boot(&exe, 2);

        // Plant a trap byte over f's first byte.
        let original = smp.machine.mem.read_vec(f, 1).unwrap();
        smp.machine.mem.mprotect(f, 16, mvobj::Prot::RW).unwrap();
        smp.machine
            .mem
            .write(f, &mvasm::encode(&Insn::Trap))
            .unwrap();
        smp.machine.mem.mprotect(f, 16, mvobj::Prot::RX).unwrap();
        smp.flush_remote(Some((f, f + 1)));

        smp.spawn(0, f, &[1]).unwrap();
        for _ in 0..5 {
            smp.step_round();
        }
        assert!(matches!(smp.state(0), VcpuState::Trapped { addr } if *addr == f));
        assert!(smp.trap_hits() >= 1);
        assert!(smp.stall_cycles(0) > 0, "trapped vCPU burns pause cycles");

        // Restore the byte, shoot down, release: the call completes.
        smp.machine.mem.mprotect(f, 16, mvobj::Prot::RW).unwrap();
        smp.machine.mem.write(f, &original).unwrap();
        smp.machine.mem.mprotect(f, 16, mvobj::Prot::RX).unwrap();
        smp.flush_remote(Some((f, f + 1)));
        smp.release_trap(0);
        let r = smp.run_until_done(1000).unwrap();
        assert_eq!(r[0], 6);
    }

    #[test]
    fn trap_handler_can_skip() {
        let exe = exe_with_fn(|a| {
            a.emit(Insn::Trap);
            a.emit(Insn::AluRI {
                op: AluOp::Add,
                dst: Reg::R0,
                imm: 3,
            });
            a.ret();
        });
        let f = exe.symbol("f").unwrap();
        let mut smp = SmpMachine::boot(&exe, 1);
        smp.set_trap_handler(Box::new(|_, _| TrapDisposition::Skip));
        smp.spawn(0, f, &[10]).unwrap();
        let r = smp.run_until_done(1000).unwrap();
        assert_eq!(r[0], 13);
        assert_eq!(smp.trap_hits(), 1);
    }

    #[test]
    fn total_stats_rolls_up_per_cpu_counters() {
        let exe = adder_exe();
        let f = exe.symbol("f").unwrap();
        let mut smp = SmpMachine::boot(&exe, 4);
        for i in 0..4 {
            smp.spawn(i, f, &[0]).unwrap();
        }
        smp.run_until_done(1000).unwrap();
        let total = smp.total_stats();
        // Each vCPU retired add + ret (2 insns).
        assert_eq!(total.instructions, 8);
        assert_eq!(total.rets, 4);
        for i in 0..4 {
            assert_eq!(
                smp.context(i).stats.rets,
                1,
                "per-CPU counters stay private"
            );
        }
    }

    #[test]
    fn tiers_preserve_smp_schedules() {
        // The same seed over the same workload must produce the same
        // schedule (instructions per round), per-vCPU cycles and stats
        // under every execution tier.
        let exe = exe_with_fn(|a| {
            a.mov_ri(Reg::R1, 0);
            a.label("loop");
            a.emit(Insn::AluRI {
                op: AluOp::Add,
                dst: Reg::R1,
                imm: 1,
            });
            a.cmp_ri(Reg::R1, 300);
            a.jcc("loop", mvasm::Cond::Lt);
            a.emit(Insn::MovRR {
                dst: Reg::R0,
                src: Reg::R1,
            });
            a.ret();
        });
        let f = exe.symbol("f").unwrap();
        let run = |tier: ExecTier| {
            let mut smp = SmpMachine::boot(&exe, 3);
            smp.set_tier(tier);
            smp.set_seed(7);
            for i in 0..3 {
                smp.spawn(i, f, &[]).unwrap();
            }
            let mut schedule = Vec::new();
            while !smp.all_done() {
                schedule.push(smp.step_round());
                assert!(smp.rounds() < 10_000);
            }
            let cycles: Vec<u64> = (0..3).map(|i| smp.cycles_of(i)).collect();
            (schedule, cycles, smp.total_stats())
        };
        let base = run(ExecTier::Tierless);
        assert_eq!(run(ExecTier::Block), base, "tier-0 schedule diverged");
        assert_eq!(run(ExecTier::Superblock), base, "superblock diverged");
    }

    #[test]
    fn tiered_sticky_icache_requires_shootdown() {
        // The private-icache staleness discipline survives the block
        // tiers: a global flush_icache is not enough, only flush_remote
        // makes the patch visible.
        for tier in [ExecTier::Block, ExecTier::Superblock] {
            let exe = adder_exe();
            let f = exe.symbol("f").unwrap();
            let mut smp = SmpMachine::boot(&exe, 2);
            smp.set_tier(tier);
            smp.spawn(0, f, &[0]).unwrap();
            assert_eq!(smp.run_until_done(1000).unwrap()[0], 5);

            let patched = mvasm::encode(&Insn::AluRI {
                op: AluOp::Add,
                dst: Reg::R0,
                imm: 9,
            });
            smp.machine.mem.mprotect(f, 16, mvobj::Prot::RW).unwrap();
            smp.machine.mem.write(f, &patched).unwrap();
            smp.machine.mem.mprotect(f, 16, mvobj::Prot::RX).unwrap();
            smp.machine.mem.flush_icache(f, 16);

            smp.spawn(0, f, &[0]).unwrap();
            let stale = smp.run_until_done(1000).unwrap();
            assert_eq!(stale[0], 5, "{tier}: no shootdown, must stay stale");

            smp.flush_remote(Some((f, f + 16)));
            smp.spawn(0, f, &[0]).unwrap();
            let fresh = smp.run_until_done(1000).unwrap();
            assert_eq!(fresh[0], 9, "{tier}: shootdown must refresh");
            assert!(smp.block_stats().evictions >= 1, "{tier}");
        }
    }

    #[test]
    fn parked_vcpu_makes_no_progress() {
        let exe = adder_exe();
        let f = exe.symbol("f").unwrap();
        let mut smp = SmpMachine::boot(&exe, 2);
        smp.spawn(0, f, &[0]).unwrap();
        smp.park(0);
        for _ in 0..10 {
            smp.step_round();
        }
        assert!(matches!(smp.state(0), VcpuState::Parked));
        assert_eq!(smp.pc_of(0), f, "parked at the spawn point");
        assert!(smp.stall_cycles(0) > 0);
        smp.unpark(0);
        let r = smp.run_until_done(1000).unwrap();
        assert_eq!(r[0], 5);
    }
}
