//! Variational execution over a booted [`World`].
//!
//! This is the glue between the [`mvvx`] engine and the rest of the
//! stack: it recovers the configuration space from the descriptor
//! sections the compiler emitted into the loaded image (the same
//! `multiverse.variables` / `multiverse.functions` records the runtime
//! attaches to), runs a function under *every* switch assignment in one
//! variational pass, and cross-checks the per-leaf observations against
//! the two execution paths the repository already trusts:
//!
//! * [`enumerate_check`] — the generic path: for each leaf, boot a
//!   fresh world, store the assignment into the switch cells (no
//!   commit) and run the function through the ordinary interpreter.
//!   This compares the *full* architectural observation (exit value,
//!   output bytes, registers, compare operands and every written memory
//!   byte) and doubles as the enumerate-and-rerun cost baseline: it
//!   returns the instructions the enumeration actually retired.
//! * [`oracle_check`] — the committed-variant path: for each leaf, set
//!   the assignment, run `multiverse_commit()` so the specialized
//!   variants are bound, and call the function. Committed variants are
//!   *specialized* code, so only the black-box observation (exit value
//!   and output bytes) is compared — registers and scratch memory may
//!   legitimately differ between a generic body and its variant.

use crate::{BuildError, Program, World};
use mvobj::descriptor::{parse_functions, parse_variables, DescError};
use mvobj::{SEC_MV_FUNCTIONS, SEC_MV_VARIABLES};
use mvtrace::TraceRing;
use mvvm::Memory;
use mvvx::{ConfigSpace, SpaceError, SwitchDomain, Vexec, VexecReport};
use std::collections::BTreeSet;
use std::fmt;

/// Guard ranges at most this wide are enumerated point-by-point when
/// recovering a switch domain; wider ranges contribute only their
/// endpoints (the variant behaves identically across the interior, so
/// the endpoints witness both edges of the guard).
const RANGE_ENUM_CAP: i64 = 8;

/// Errors from driving a variational pass against a [`World`].
#[derive(Debug)]
pub enum VxError {
    /// Symbol lookup, machine fault or runtime error underneath.
    Build(BuildError),
    /// The image has descriptor sections but they did not parse.
    Desc(DescError),
    /// The image declares no (non-function-pointer) switches.
    NoSwitches,
    /// The recovered configuration space was rejected (too wide, …).
    Space(SpaceError),
    /// The variational engine could not complete the pass.
    Engine(mvvx::VexecError),
    /// A cross-check found a leaf whose variational observation differs
    /// from the replayed one.
    Mismatch {
        /// Leaf index in the configuration space.
        leaf: usize,
        /// `name=value,...` label of the assignment.
        label: String,
        /// What differed.
        what: String,
    },
}

impl fmt::Display for VxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VxError::Build(e) => write!(f, "{e}"),
            VxError::Desc(e) => write!(f, "{e}"),
            VxError::NoSwitches => write!(f, "image declares no integer switches"),
            VxError::Space(e) => write!(f, "{e}"),
            VxError::Engine(e) => write!(f, "{e}"),
            VxError::Mismatch { leaf, label, what } => {
                write!(
                    f,
                    "leaf {leaf} ({label}): vexec disagrees with replay: {what}"
                )
            }
        }
    }
}

impl std::error::Error for VxError {}

impl From<BuildError> for VxError {
    fn from(e: BuildError) -> Self {
        VxError::Build(e)
    }
}
impl From<DescError> for VxError {
    fn from(e: DescError) -> Self {
        VxError::Desc(e)
    }
}
impl From<SpaceError> for VxError {
    fn from(e: SpaceError) -> Self {
        VxError::Space(e)
    }
}
impl From<mvvx::VexecError> for VxError {
    fn from(e: mvvx::VexecError) -> Self {
        VxError::Engine(e)
    }
}
impl From<mvvm::MemError> for VxError {
    fn from(e: mvvm::MemError) -> Self {
        VxError::Build(BuildError::Fault(mvvm::Fault::Mem(e)))
    }
}

fn read_cstr(mem: &Memory, addr: u64) -> Option<String> {
    if addr == 0 {
        return None;
    }
    let mut bytes = Vec::new();
    for i in 0..128 {
        let b = mem.read_uint(addr + i, 1).ok()? as u8;
        if b == 0 {
            break;
        }
        bytes.push(b);
    }
    String::from_utf8(bytes).ok().filter(|s| !s.is_empty())
}

/// Recovers the configuration space of a booted world from the loaded
/// image's descriptor sections.
///
/// Every non-function-pointer switch contributes one [`SwitchDomain`]:
/// the union of all guard ranges naming it across every variant (narrow
/// ranges enumerated, wide ranges represented by their endpoints), plus
/// the cell's *current* value so a pass always covers the configuration
/// the machine is actually in.
pub fn config_space(w: &World) -> Result<ConfigSpace, VxError> {
    let read_sec = |name: &str| -> Result<Vec<u8>, VxError> {
        let (addr, size) = w.exe().section(name);
        if size == 0 {
            return Ok(Vec::new());
        }
        Ok(w.machine.mem.read_vec(addr, size as usize)?)
    };
    let vars = parse_variables(&read_sec(SEC_MV_VARIABLES)?)?;
    let fns = parse_functions(&read_sec(SEC_MV_FUNCTIONS)?)?;

    let mut domains = Vec::new();
    for v in vars.iter().filter(|v| !v.fn_ptr) {
        let mut values: BTreeSet<i64> = BTreeSet::new();
        for f in &fns {
            for variant in &f.variants {
                for g in variant.guards.iter().filter(|g| g.var_addr == v.addr) {
                    let (low, high) = (g.low as i64, g.high as i64);
                    if high - low <= RANGE_ENUM_CAP {
                        values.extend(low..=high);
                    } else {
                        values.insert(low);
                        values.insert(high);
                    }
                }
            }
        }
        values.insert(w.machine.mem.read_int(v.addr, v.width as usize, v.signed)?);
        let name = w
            .exe()
            .symbolize(v.addr)
            .filter(|&(_, off)| off == 0)
            .map(|(n, _)| n.to_string())
            .or_else(|| read_cstr(&w.machine.mem, v.name_addr))
            .unwrap_or_else(|| format!("switch@{:#x}", v.addr));
        domains.push(SwitchDomain {
            name,
            addr: v.addr,
            width: v.width as usize,
            signed: v.signed,
            values: values.into_iter().collect(),
        });
    }
    if domains.is_empty() {
        return Err(VxError::NoSwitches);
    }
    Ok(ConfigSpace::new(domains)?)
}

impl World {
    /// The configuration space of this world's image — see
    /// [`config_space`].
    pub fn config_space(&self) -> Result<ConfigSpace, VxError> {
        config_space(self)
    }

    /// Runs `func(args...)` under every switch assignment at once and
    /// returns one observation per leaf configuration.
    ///
    /// The pass reads the machine (`&self`) without perturbing it: the
    /// booted image, current register file and interrupt flag seed the
    /// shared context, and all writes land in per-context overlays.
    pub fn vexec(&self, func: &str, args: &[u64]) -> Result<VexecReport, VxError> {
        let space = config_space(self)?;
        self.vexec_in(&space, func, args)
    }

    /// Like [`World::vexec`] with a caller-built [`ConfigSpace`] (reuse
    /// one space across calls, or restrict/widen domains by hand).
    pub fn vexec_in(
        &self,
        space: &ConfigSpace,
        func: &str,
        args: &[u64],
    ) -> Result<VexecReport, VxError> {
        let entry = self.sym(func)?;
        let mut vx = Vexec::new(&self.machine.mem, space, self.machine.platform());
        Ok(vx.run_call(
            entry,
            args,
            &self.machine.cpu.regs,
            self.machine.cpu.if_flag,
        )?)
    }

    /// Like [`World::vexec_in`], recording `vexec_split` / `vexec_join`
    /// / `vexec_leaf` events into `ring`.
    pub fn vexec_traced(
        &self,
        space: &ConfigSpace,
        func: &str,
        args: &[u64],
        ring: &mut TraceRing,
    ) -> Result<VexecReport, VxError> {
        let entry = self.sym(func)?;
        let mut vx = Vexec::new(&self.machine.mem, space, self.machine.platform()).with_trace(ring);
        Ok(vx.run_call(
            entry,
            args,
            &self.machine.cpu.regs,
            self.machine.cpu.if_flag,
        )?)
    }
}

/// Outcome of a replay cross-check.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayCheck {
    /// Leaves replayed and compared.
    pub leaves_checked: usize,
    /// Instructions the replays retired — the enumerate-and-rerun cost
    /// the variational pass competes against ([`enumerate_check`] only;
    /// the oracle path runs committed code, whose counts answer a
    /// different question, so it leaves this 0).
    pub insns: u64,
}

fn set_assignment(w: &mut World, space: &ConfigSpace, leaf: usize) -> Result<(), VxError> {
    for (i, sw) in space.switches().iter().enumerate() {
        let value = space.value(leaf, i);
        let done = match &w.rt {
            Some(rt) => rt.write_switch(&mut w.machine, sw.addr, value).is_ok(),
            None => false,
        };
        if !done {
            w.machine.mem.write_int(sw.addr, value as u64, sw.width)?;
        }
    }
    Ok(())
}

fn mismatch(space: &ConfigSpace, leaf: usize, what: String) -> VxError {
    VxError::Mismatch {
        leaf,
        label: space.label(leaf),
        what,
    }
}

/// Replays every leaf of `report` through the *generic* path — fresh
/// world, switches stored but **not** committed, ordinary interpreter —
/// and asserts the full architectural observation matches: exit value,
/// output bytes, register file, compare operands, interrupt flag and
/// every memory byte the variational pass wrote.
///
/// Returns the replay cost in retired instructions, which is the
/// enumerate-and-rerun baseline `report.stats.steps` is measured
/// against.
pub fn enumerate_check(
    program: &Program,
    space: &ConfigSpace,
    func: &str,
    args: &[u64],
    report: &VexecReport,
) -> Result<ReplayCheck, VxError> {
    enumerate_check_with(|| Ok(program.boot()), space, func, args, report)
}

/// [`enumerate_check`] with a caller-supplied boot function, for images
/// whose pre-call state needs setup beyond `Program::boot` (a corpus
/// written into memory, a non-default platform, …). The closure must
/// reconstruct the same base state the variational pass ran against.
pub fn enumerate_check_with<F>(
    boot: F,
    space: &ConfigSpace,
    func: &str,
    args: &[u64],
    report: &VexecReport,
) -> Result<ReplayCheck, VxError>
where
    F: Fn() -> Result<World, BuildError>,
{
    let mut insns = 0u64;
    for leaf in &report.leaves {
        let mut w = boot()?;
        set_assignment(&mut w, space, leaf.leaf)?;
        let before = w.machine.stats.instructions;
        let exit = match w.call(func, args) {
            Ok(v) => Some(v),
            Err(BuildError::Fault(mvvm::Fault::Halted)) if leaf.halted => None,
            Err(e) => return Err(mismatch(space, leaf.leaf, format!("replay faulted: {e}"))),
        };
        insns += w.machine.stats.instructions - before;
        if let Some(exit) = exit {
            if leaf.halted {
                return Err(mismatch(
                    space,
                    leaf.leaf,
                    "replay returned, vexec halted".into(),
                ));
            }
            if exit != leaf.exit {
                return Err(mismatch(
                    space,
                    leaf.leaf,
                    format!("exit {exit:#x} != vexec {:#x}", leaf.exit),
                ));
            }
            for (r, (&got, &want)) in w.machine.cpu.regs.iter().zip(&leaf.regs).enumerate() {
                if got != want {
                    return Err(mismatch(
                        space,
                        leaf.leaf,
                        format!("r{r} {got:#x} != vexec {want:#x}"),
                    ));
                }
            }
            if w.machine.cpu.cmp != leaf.cmp {
                return Err(mismatch(
                    space,
                    leaf.leaf,
                    format!("cmp {:?} != vexec {:?}", w.machine.cpu.cmp, leaf.cmp),
                ));
            }
            if w.machine.cpu.if_flag != leaf.if_flag {
                return Err(mismatch(space, leaf.leaf, "interrupt flag differs".into()));
            }
        }
        let out = w.machine.take_output();
        if out != leaf.out {
            return Err(mismatch(
                space,
                leaf.leaf,
                format!("output {out:02x?} != vexec {:02x?}", leaf.out),
            ));
        }
        for &(addr, byte) in &leaf.writes {
            let got = w.machine.mem.read_uint(addr, 1)? as u8;
            if got != byte {
                return Err(mismatch(
                    space,
                    leaf.leaf,
                    format!("mem[{addr:#x}] {got:#04x} != vexec {byte:#04x}"),
                ));
            }
        }
    }
    Ok(ReplayCheck {
        leaves_checked: report.leaves.len(),
        insns,
    })
}

/// Replays every leaf of `report` through the *committed-variant* path:
/// fresh world, switches set, `multiverse_commit()`, then the call.
///
/// Committed code is specialized, so only the black-box observation is
/// compared — exit value and output bytes. A divergence here means the
/// variational pass (which models the generic bodies) and the binding
/// machinery disagree about a configuration's behavior.
pub fn oracle_check(
    program: &Program,
    space: &ConfigSpace,
    func: &str,
    args: &[u64],
    report: &VexecReport,
) -> Result<ReplayCheck, VxError> {
    oracle_check_with(|| Ok(program.boot()), space, func, args, report)
}

/// [`oracle_check`] with a caller-supplied boot function — see
/// [`enumerate_check_with`].
pub fn oracle_check_with<F>(
    boot: F,
    space: &ConfigSpace,
    func: &str,
    args: &[u64],
    report: &VexecReport,
) -> Result<ReplayCheck, VxError>
where
    F: Fn() -> Result<World, BuildError>,
{
    for leaf in &report.leaves {
        let mut w = boot()?;
        set_assignment(&mut w, space, leaf.leaf)?;
        if w.rt.is_some() {
            w.commit()?;
        }
        let exit = match w.call(func, args) {
            Ok(v) => Some(v),
            Err(BuildError::Fault(mvvm::Fault::Halted)) if leaf.halted => None,
            Err(e) => return Err(mismatch(space, leaf.leaf, format!("oracle faulted: {e}"))),
        };
        if let Some(exit) = exit {
            if leaf.halted {
                return Err(mismatch(
                    space,
                    leaf.leaf,
                    "oracle returned, vexec halted".into(),
                ));
            }
            if exit != leaf.exit {
                return Err(mismatch(
                    space,
                    leaf.leaf,
                    format!("committed exit {exit:#x} != vexec {:#x}", leaf.exit),
                ));
            }
        }
        let out = w.machine.take_output();
        if out != leaf.out {
            return Err(mismatch(
                space,
                leaf.leaf,
                format!("committed output {out:02x?} != vexec {:02x?}", leaf.out),
            ));
        }
    }
    Ok(ReplayCheck {
        leaves_checked: report.leaves.len(),
        insns: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        multiverse(0, 1, 2) i32 mode;
        multiverse bool loud;
        multiverse i64 work(i64 x) {
            i64 acc = x;
            if (mode == 1) { acc = acc + 10; }
            if (mode == 2) { acc = acc * 3; }
            if (loud) { acc = acc + 1000; }
            return acc;
        }
        i64 main(void) { return work(5); }
    "#;

    #[test]
    fn space_is_recovered_from_descriptors() {
        let p = Program::build(&[("t", SRC)]).unwrap();
        let w = p.boot();
        let space = w.config_space().unwrap();
        let names: Vec<&str> = space.switches().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"mode"), "names: {names:?}");
        assert!(names.contains(&"loud"), "names: {names:?}");
        let mode = space.switches().iter().find(|s| s.name == "mode").unwrap();
        // Guard points 0/1/2 come from the three variants; the current
        // value 0 is already among them.
        assert_eq!(mode.values, vec![0, 1, 2]);
        assert_eq!(space.leaf_count(), 6);
    }

    #[test]
    fn vexec_covers_the_cross_product_and_replays_clean() {
        let p = Program::build(&[("t", SRC)]).unwrap();
        let w = p.boot();
        let space = w.config_space().unwrap();
        let report = w.vexec_in(&space, "work", &[5]).unwrap();
        assert_eq!(report.leaves.len(), 6);
        let chk = enumerate_check(&p, &space, "work", &[5], &report).unwrap();
        assert_eq!(chk.leaves_checked, 6);
        assert!(chk.insns > report.stats.steps, "sharing must pay");
        oracle_check(&p, &space, "work", &[5], &report).unwrap();
        // Spot-check one leaf against the source semantics.
        for leaf in &report.leaves {
            let mode = leaf.assignment.iter().find(|(n, _)| n == "mode").unwrap().1;
            let loud = leaf.assignment.iter().find(|(n, _)| n == "loud").unwrap().1;
            let mut want = 5i64;
            if mode == 1 {
                want += 10;
            }
            if mode == 2 {
                want *= 3;
            }
            if loud != 0 {
                want += 1000;
            }
            assert_eq!(leaf.exit as i64, want, "leaf {}", leaf.leaf);
        }
    }

    #[test]
    fn vexec_does_not_perturb_the_world() {
        let p = Program::build(&[("t", SRC)]).unwrap();
        let mut w = p.boot();
        let before = w.call("work", &[5]).unwrap();
        let space = w.config_space().unwrap();
        w.vexec_in(&space, "work", &[5]).unwrap();
        assert_eq!(w.call("work", &[5]).unwrap(), before);
        assert_eq!(w.get("mode").unwrap(), 0, "switch cell untouched");
    }

    #[test]
    fn non_multiversed_image_has_no_space() {
        let p = Program::build_with(
            &[("t", "i64 main(void) { return 7; }")],
            &mvc::Options::dynamic(),
        )
        .unwrap();
        let w = p.boot();
        assert!(matches!(w.config_space(), Err(VxError::NoSwitches)));
    }
}
