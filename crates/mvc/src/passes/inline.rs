//! Inline expansion for small non-multiverse functions.
//!
//! §7.1: "we chose to disallow the compiler to perform inline expansion on
//! multiversed functions … All optimizations other than inline expansion
//! are applied to multiverse functions." Ordinary small functions *are*
//! inlined, as GCC would — including into the bodies of multiversed
//! functions (and therefore into their variants).
//!
//! The transformation splits the calling block at the call, splices a
//! slot/temp/block-renumbered clone of the callee between the halves,
//! passes arguments through fresh local slots, collects return values in
//! a result slot, and reroutes pre-half temps that the post-half still
//! needs through spill slots (temps must stay block-local).

use crate::ir::{Block, BlockId, Callee, FuncIr, Inst, Operand, Term};
use std::collections::{HashMap, HashSet};

/// Inlining limits: callee instruction and block budget.
const MAX_INSTS: usize = 16;
const MAX_BLOCKS: usize = 5;

/// `true` if `f` may be inlined into callers.
fn inlinable(f: &FuncIr) -> bool {
    if f.attrs.multiverse || f.attrs.pvop_cc {
        // The generic variant must never spread switch reads into
        // callers; PV-Ops bodies carry calling-convention semantics.
        return false;
    }
    let insts: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
    if insts > MAX_INSTS || f.blocks.len() > MAX_BLOCKS {
        return false;
    }
    // No nested calls: keeps the pass single-level and recursion-proof.
    !f.blocks
        .iter()
        .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. })))
}

/// Runs inline expansion across all functions of a unit; returns the
/// number of call sites expanded.
pub fn run_unit(funcs: &mut [FuncIr]) -> usize {
    // Snapshot eligible callees.
    let callees: HashMap<String, FuncIr> = funcs
        .iter()
        .filter(|f| inlinable(f))
        .map(|f| (f.name.clone(), f.clone()))
        .collect();
    let mut expanded = 0;
    for f in funcs.iter_mut() {
        // A function must not inline itself (harmless with the no-calls
        // rule, but keep the guard explicit).
        while let Some((bi, ii, callee_name)) = find_site(f, &callees) {
            if callee_name == f.name {
                break;
            }
            let callee = &callees[&callee_name];
            splice(f, bi, ii, callee);
            f.validate();
            expanded += 1;
        }
    }
    expanded
}

fn find_site(f: &FuncIr, callees: &HashMap<String, FuncIr>) -> Option<(usize, usize, String)> {
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let Inst::Call {
                callee: Callee::Direct(name),
                ..
            } = inst
            {
                if callees.contains_key(name) && *name != f.name {
                    return Some((bi, ii, name.clone()));
                }
            }
        }
    }
    None
}

fn remap_operand(op: &mut Operand, temp_map: &HashMap<u32, u32>) {
    if let Operand::Temp(t) = op {
        *t = temp_map[t];
    }
}

fn splice(f: &mut FuncIr, bi: usize, ii: usize, callee: &FuncIr) {
    let original = std::mem::take(&mut f.blocks[bi]);
    let mut pre: Vec<Inst> = original.insts[..ii].to_vec();
    let post_insts: Vec<Inst> = original.insts[ii + 1..].to_vec();
    let post_term = original.term;
    let Inst::Call { dst, args, .. } = original.insts[ii].clone() else {
        unreachable!("find_site returned a call")
    };

    // Fresh slot space for the callee's params + locals, plus one result
    // slot.
    let slot_base = f.n_slots;
    f.n_slots += callee.n_slots;
    let result_slot = f.slot();

    // Pass arguments through the param slots.
    for (j, arg) in args.iter().enumerate() {
        pre.push(Inst::StoreLocal {
            slot: slot_base + j as u32,
            src: *arg,
        });
    }

    // Temps defined in `pre` but used in `post` (or its terminator) must
    // cross through slots.
    let mut defined_pre: HashSet<u32> = HashSet::new();
    for inst in &pre {
        if let Some(d) = inst.dst() {
            defined_pre.insert(d);
        }
    }
    let mut used_post: HashSet<u32> = HashSet::new();
    for inst in &post_insts {
        for op in inst.operands() {
            if let Operand::Temp(t) = op {
                used_post.insert(t);
            }
        }
    }
    match &post_term {
        Term::Br {
            cond: Operand::Temp(t),
            ..
        } => {
            used_post.insert(*t);
        }
        Term::Ret(Some(Operand::Temp(t))) => {
            used_post.insert(*t);
        }
        _ => {}
    }
    let mut crossing: Vec<u32> = defined_pre.intersection(&used_post).copied().collect();
    crossing.sort_unstable(); // deterministic emission order
    let mut cross_slot: HashMap<u32, u32> = HashMap::new();
    for &t in &crossing {
        let s = f.slot();
        pre.push(Inst::StoreLocal {
            slot: s,
            src: Operand::Temp(t),
        });
        cross_slot.insert(t, s);
    }

    // Allocate block ids: callee blocks + the post block.
    let callee_block_base = f.blocks.len() as BlockId;
    for _ in 0..callee.blocks.len() {
        f.new_block();
    }
    let post_bid = f.new_block();

    // The pre half jumps into the callee entry clone.
    f.blocks[bi] = Block {
        insts: pre,
        term: Term::Jmp(callee_block_base),
    };

    // Clone callee blocks with renumbered temps/slots/blocks; returns
    // store into the result slot and jump to the post block.
    for (k, cb) in callee.blocks.iter().enumerate() {
        let mut temp_map: HashMap<u32, u32> = HashMap::new();
        let mut insts = Vec::with_capacity(cb.insts.len() + 1);
        for inst in &cb.insts {
            let mut inst = inst.clone();
            inst.map_operands(|op| {
                if let Operand::Temp(t) = op {
                    *t = *temp_map.get(t).expect("use before def in callee");
                }
            });
            // Remap slots.
            match &mut inst {
                Inst::LoadLocal { slot, .. } | Inst::StoreLocal { slot, .. } => {
                    *slot += slot_base;
                }
                _ => {}
            }
            // Remap the defined temp to a fresh caller temp.
            if let Some(d) = inst.dst() {
                let fresh = f.n_temps;
                f.n_temps += 1;
                temp_map.insert(d, fresh);
                set_dst(&mut inst, fresh);
            }
            insts.push(inst);
        }
        let term = match &cb.term {
            Term::Jmp(t) => Term::Jmp(callee_block_base + *t),
            Term::Br { cond, t, f: fb } => {
                let mut cond = *cond;
                remap_operand(&mut cond, &temp_map);
                Term::Br {
                    cond,
                    t: callee_block_base + *t,
                    f: callee_block_base + *fb,
                }
            }
            Term::Ret(v) => {
                if let Some(mut v) = *v {
                    remap_operand(&mut v, &temp_map);
                    insts.push(Inst::StoreLocal {
                        slot: result_slot,
                        src: v,
                    });
                }
                Term::Jmp(post_bid)
            }
        };
        f.blocks[(callee_block_base as usize) + k] = Block { insts, term };
    }

    // The post half: reload crossing temps and the call result under
    // fresh names, rename uses.
    let mut rename: HashMap<u32, u32> = HashMap::new();
    let mut insts = Vec::with_capacity(post_insts.len() + crossing.len() + 1);
    for &t in &crossing {
        let s = cross_slot[&t];
        let fresh = f.n_temps;
        f.n_temps += 1;
        insts.push(Inst::LoadLocal {
            dst: fresh,
            slot: s,
        });
        rename.insert(t, fresh);
    }
    if let Some(d) = dst {
        let fresh = f.n_temps;
        f.n_temps += 1;
        insts.push(Inst::LoadLocal {
            dst: fresh,
            slot: result_slot,
        });
        rename.insert(d, fresh);
    }
    for mut inst in post_insts {
        inst.map_operands(|op| {
            if let Operand::Temp(t) = op {
                if let Some(&n) = rename.get(t) {
                    *t = n;
                }
            }
        });
        // Re-defined temps in post keep their ids (still unique within
        // the new block: they were unique in the original block).
        insts.push(inst);
    }
    let term = match post_term {
        Term::Br { mut cond, t, f: fb } => {
            if let Operand::Temp(tt) = &mut cond {
                if let Some(&n) = rename.get(tt) {
                    *tt = n;
                }
            }
            Term::Br { cond, t, f: fb }
        }
        Term::Ret(Some(mut v)) => {
            if let Operand::Temp(tt) = &mut v {
                if let Some(&n) = rename.get(tt) {
                    *tt = n;
                }
            }
            Term::Ret(Some(v))
        }
        other => other,
    };
    f.blocks[post_bid as usize] = Block { insts, term };
}

fn set_dst(inst: &mut Inst, fresh: u32) {
    match inst {
        Inst::Bin { dst, .. }
        | Inst::Un { dst, .. }
        | Inst::LoadGlobal { dst, .. }
        | Inst::AddrOf { dst, .. }
        | Inst::LoadLocal { dst, .. }
        | Inst::LoadMem { dst, .. } => *dst = fresh,
        Inst::Call { dst, .. } | Inst::Intr { dst, .. } => *dst = Some(fresh),
        _ => unreachable!("dst() returned Some for a store"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lower::lower_unit;
    use crate::parser::parse;

    fn lowered(src: &str) -> Vec<FuncIr> {
        lower_unit(&parse(&lex(src).unwrap()).unwrap())
            .unwrap()
            .funcs
    }

    #[test]
    fn small_leaf_is_inlined() {
        let mut funcs = lowered(
            "i64 sq(i64 a) { return a * a; } \
             i64 f(i64 x) { return sq(x) + sq(x + 1); }",
        );
        let n = run_unit(&mut funcs);
        assert_eq!(n, 2);
        let f = funcs.iter().find(|f| f.name == "f").unwrap();
        assert!(
            !f.blocks
                .iter()
                .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. }))),
            "no calls remain"
        );
    }

    #[test]
    fn multiverse_functions_are_never_inlined() {
        let mut funcs = lowered(
            "multiverse bool s; \
             multiverse void g(void) { if (s) { } } \
             void f(void) { g(); }",
        );
        assert_eq!(run_unit(&mut funcs), 0);
    }

    #[test]
    fn big_functions_are_not_inlined() {
        let body = "x = x + 1;".repeat(MAX_INSTS + 4);
        let src = format!("i64 g(i64 x) {{ {body} return x; }} i64 f(i64 y) {{ return g(y); }}");
        let mut funcs = lowered(&src);
        assert_eq!(run_unit(&mut funcs), 0);
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        let mut funcs = lowered(
            "i64 r(i64 n) { if (n < 1) { return 0; } return r(n - 1); } \
             i64 f(void) { return r(3); }",
        );
        // `r` calls itself, so it is not a leaf and not inlinable.
        assert_eq!(run_unit(&mut funcs), 0);
    }
}
