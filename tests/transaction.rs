//! The §2 transaction pattern: multiverse deliberately avoids
//! synchronization, so a subsystem wraps switch writes and per-switch
//! commits in its own critical section — `subsystem_set_config()` from
//! the paper, with the object-layout translation step in between.

use multiverse::Program;

const SRC: &str = r#"
    multiverse bool compressed;     // A in the paper's sketch
    multiverse bool checksummed;    // B

    u64 objects[16];
    u64 translations;

    multiverse i64 obj_read(i64 i) {
        i64 v = objects[i];
        if (compressed) { v = v * 2; }       // "decompress"
        if (checksummed) { v = v + 1; }      // strip checksum marker
        return v;
    }

    // translate_objects(): rewrite stored objects to the new layout so
    // reads stay consistent with the re-committed code.
    void translate_to(i64 comp, i64 chk) {
        for (i64 i = 0; i < 16; i++) {
            i64 plain = obj_read(i);
            i64 stored = plain;
            if (comp) { stored = stored / 2; }
            if (chk) { stored = stored - 1; }
            objects[i] = stored;
        }
        translations = translations + 1;
    }

    i64 main(void) { return 0; }
"#;

#[test]
fn transaction_keeps_data_and_code_consistent() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();

    // Seed plain objects (layout: uncompressed, unchecksummed). Values
    // are odd so the encoded layout (v = stored*2 + 1) stays integral.
    let objects = w.sym("objects").unwrap();
    for i in 0..16u64 {
        w.machine
            .mem
            .write_int(objects + 8 * i, 10 * i + 1, 8)
            .unwrap();
    }
    w.set("compressed", 0).unwrap();
    w.set("checksummed", 0).unwrap();
    w.commit().unwrap();
    assert_eq!(w.call("obj_read", &[3]).unwrap(), 31);

    // The paper's subsystem_set_config(A=1, B=1):
    //   lock; A = 1; commit_refs(&A); B = 1; commit_refs(&B);
    //   translate_objects(); unlock;
    w.set("compressed", 1).unwrap();
    w.commit_refs("compressed").unwrap();
    w.set("checksummed", 1).unwrap();
    w.commit_refs("checksummed").unwrap();
    // translate_objects(): rewrite the data into the layout the newly
    // committed code expects (read decodes as stored*2 + 1).
    for i in 0..16u64 {
        let plain = 10 * i + 1;
        let stored = (plain - 1) / 2;
        w.machine.mem.write_int(objects + 8 * i, stored, 8).unwrap();
    }

    // Reads are consistent under the new configuration.
    assert_eq!(w.call("obj_read", &[3]).unwrap(), 31);
    assert_eq!(w.call("obj_read", &[7]).unwrap(), 71);

    // And the committed code no longer consults the switches: exactly
    // the two switch loads per call disappear relative to the generic.
    let committed = w.time_calls("obj_read", &[5], 200, false).unwrap();
    // Same configuration, generic binding: the only delta is the two
    // dynamic switch reads.
    w.revert().unwrap();
    let generic = w.time_calls("obj_read", &[5], 200, false).unwrap();
    assert_eq!(
        generic.stats.loads - committed.stats.loads,
        2 * 200,
        "two switch loads per call are gone"
    );
}

#[test]
fn per_switch_commits_are_independent() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    w.set("compressed", 1).unwrap();
    w.set("checksummed", 1).unwrap();
    // Committing only A leaves obj_read bound to a variant… no: obj_read
    // references both switches, so commit_refs(&A) re-selects it using
    // the *current* values of both — exactly the §2 note that binding is
    // per function, not per switch.
    w.commit_refs("compressed").unwrap();
    let objects = w.sym("objects").unwrap();
    w.machine.mem.write_int(objects, 4, 8).unwrap();
    assert_eq!(w.call("obj_read", &[0]).unwrap(), 9, "4*2+1");
    // Flipping B without a commit has no effect (frozen).
    w.set("checksummed", 0).unwrap();
    assert_eq!(w.call("obj_read", &[0]).unwrap(), 9);
    w.commit_refs("checksummed").unwrap();
    assert_eq!(w.call("obj_read", &[0]).unwrap(), 8, "4*2");
}
