//! The configuration space: switch domains, mixed-radix leaf indexing and
//! the [`LeafSet`] bitmask that keys every variational context.
//!
//! A *leaf* is one full assignment of every switch — one corner of the
//! cross product. Leaves are numbered mixed-radix: switch 0 is the
//! fastest-varying digit, so `leaf = Σ digit(sw) · stride(sw)` with
//! `stride(0) = 1` and `stride(k+1) = stride(k) · |domain(k)|`. The
//! encoding makes the two operations the engine leans on cheap:
//!
//! * `mask(sw, idx)` — the set of leaves where switch `sw` takes its
//!   `idx`-th domain value (precomputed once per space), and
//! * [`ConfigSpace::project_digit0`] — "forget switch `sw`": map every
//!   leaf to its twin with digit 0 in position `sw`, which is how the
//!   join rule decides whether two contexts differ *only* in that switch.

use std::fmt;

/// Hard cap on the cross-product size. Wider spaces must bail to
/// enumeration (or sampling) — the bitmask representation is dense.
pub const MAX_LEAVES: usize = 1 << 16;

/// One switch and its value domain.
#[derive(Clone, Debug)]
pub struct SwitchDomain {
    /// Symbol name of the switch variable (for reports; may be synthetic).
    pub name: String,
    /// Guest address of the switch cell.
    pub addr: u64,
    /// Cell width in bytes (1, 2, 4 or 8).
    pub width: usize,
    /// Whether loads of the cell sign-extend.
    pub signed: bool,
    /// Domain values, sorted and deduplicated. Never empty: at minimum it
    /// holds the cell's current value.
    pub values: Vec<i64>,
}

/// Why a [`ConfigSpace`] could not be built.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpaceError {
    /// The cross product exceeds [`MAX_LEAVES`].
    TooWide {
        /// The offending product (may overflow usize, hence u128).
        leaves: u128,
        /// The cap that was exceeded.
        cap: usize,
    },
    /// A switch arrived with an empty domain.
    EmptyDomain {
        /// Name of the offending switch.
        switch: String,
    },
    /// Two switches overlap in memory — per-switch values would alias.
    Overlap {
        /// Names of the overlapping switches.
        a: String,
        /// Second switch.
        b: String,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::TooWide { leaves, cap } => {
                write!(f, "config space has {leaves} leaves, cap is {cap}")
            }
            SpaceError::EmptyDomain { switch } => {
                write!(f, "switch {switch} has an empty domain")
            }
            SpaceError::Overlap { a, b } => {
                write!(f, "switches {a} and {b} overlap in memory")
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// A dense set of leaves, one bit per leaf.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LeafSet {
    bits: usize,
    words: Vec<u64>,
}

impl LeafSet {
    /// The empty set over `bits` leaves.
    pub fn empty(bits: usize) -> LeafSet {
        LeafSet {
            bits,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// The full set over `bits` leaves.
    pub fn full(bits: usize) -> LeafSet {
        let mut s = LeafSet::empty(bits);
        for i in 0..bits {
            s.insert(i);
        }
        s
    }

    /// Number of leaves the set ranges over (not its cardinality).
    pub fn capacity(&self) -> usize {
        self.bits
    }

    /// Adds leaf `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        i < self.bits && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Cardinality.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no leaf is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &LeafSet) -> LeafSet {
        debug_assert_eq!(self.bits, other.bits);
        LeafSet {
            bits: self.bits,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Set union.
    pub fn union(&self, other: &LeafSet) -> LeafSet {
        debug_assert_eq!(self.bits, other.bits);
        LeafSet {
            bits: self.bits,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// `true` if the sets share no leaf.
    pub fn is_disjoint(&self, other: &LeafSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterates the member leaves in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits).filter(move |&i| self.contains(i))
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

/// The full configuration space of a program: every integer switch with
/// its recovered domain, plus the mixed-radix leaf indexing over them.
#[derive(Clone, Debug)]
pub struct ConfigSpace {
    switches: Vec<SwitchDomain>,
    strides: Vec<usize>,
    leaves: usize,
    /// `masks[sw][idx]` = leaves where switch `sw` has its `idx`-th value.
    masks: Vec<Vec<LeafSet>>,
}

impl ConfigSpace {
    /// Builds the space, precomputing per-value leaf masks. Fails if the
    /// cross product exceeds [`MAX_LEAVES`], if a domain is empty, or if
    /// two switch cells alias.
    pub fn new(mut switches: Vec<SwitchDomain>) -> Result<ConfigSpace, SpaceError> {
        for sw in &mut switches {
            sw.values.sort_unstable();
            sw.values.dedup();
            if sw.values.is_empty() {
                return Err(SpaceError::EmptyDomain {
                    switch: sw.name.clone(),
                });
            }
        }
        for i in 0..switches.len() {
            for j in i + 1..switches.len() {
                let (a, b) = (&switches[i], &switches[j]);
                if a.addr < b.addr + b.width as u64 && b.addr < a.addr + a.width as u64 {
                    return Err(SpaceError::Overlap {
                        a: a.name.clone(),
                        b: b.name.clone(),
                    });
                }
            }
        }
        let mut product: u128 = 1;
        for sw in &switches {
            product *= sw.values.len() as u128;
        }
        if product > MAX_LEAVES as u128 {
            return Err(SpaceError::TooWide {
                leaves: product,
                cap: MAX_LEAVES,
            });
        }
        let leaves = product as usize;
        let mut strides = Vec::with_capacity(switches.len());
        let mut stride = 1usize;
        for sw in &switches {
            strides.push(stride);
            stride *= sw.values.len();
        }
        let mut masks = Vec::with_capacity(switches.len());
        for (s, sw) in switches.iter().enumerate() {
            let mut per_value = vec![LeafSet::empty(leaves); sw.values.len()];
            for leaf in 0..leaves {
                per_value[leaf / strides[s] % sw.values.len()].insert(leaf);
            }
            masks.push(per_value);
        }
        Ok(ConfigSpace {
            switches,
            strides,
            leaves,
            masks,
        })
    }

    /// The switches, in digit order.
    pub fn switches(&self) -> &[SwitchDomain] {
        &self.switches
    }

    /// Total number of leaves (the cross-product size, ≥ 1).
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// The value *index* switch `sw` takes at `leaf`.
    #[inline]
    pub fn digit(&self, leaf: usize, sw: usize) -> usize {
        leaf / self.strides[sw] % self.switches[sw].values.len()
    }

    /// The domain *value* switch `sw` takes at `leaf`.
    #[inline]
    pub fn value(&self, leaf: usize, sw: usize) -> i64 {
        self.switches[sw].values[self.digit(leaf, sw)]
    }

    /// The full assignment at `leaf`, in switch order.
    pub fn assignment(&self, leaf: usize) -> Vec<(String, i64)> {
        (0..self.switches.len())
            .map(|s| (self.switches[s].name.clone(), self.value(leaf, s)))
            .collect()
    }

    /// Compact `name=value,...` label for `leaf`.
    pub fn label(&self, leaf: usize) -> String {
        self.assignment(leaf)
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// All leaves.
    pub fn full_set(&self) -> LeafSet {
        LeafSet::full(self.leaves)
    }

    /// Leaves where switch `sw` takes its `idx`-th domain value.
    pub fn mask(&self, sw: usize, idx: usize) -> &LeafSet {
        &self.masks[sw][idx]
    }

    /// Value indices of switch `sw` that occur in `set`.
    pub fn live_digits(&self, set: &LeafSet, sw: usize) -> Vec<usize> {
        (0..self.switches[sw].values.len())
            .filter(|&idx| !self.masks[sw][idx].is_disjoint(set))
            .collect()
    }

    /// Maps every leaf in `set` to its twin with digit 0 for switch `sw`
    /// ("forget switch `sw`"). Two contexts are joinable over `sw` iff
    /// their projections are equal: they then agree on every other digit.
    pub fn project_digit0(&self, set: &LeafSet, sw: usize) -> LeafSet {
        let mut out = LeafSet::empty(self.leaves);
        for leaf in set.iter() {
            out.insert(leaf - self.digit(leaf, sw) * self.strides[sw]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw(name: &str, addr: u64, values: &[i64]) -> SwitchDomain {
        SwitchDomain {
            name: name.into(),
            addr,
            width: 4,
            signed: true,
            values: values.to_vec(),
        }
    }

    fn space2() -> ConfigSpace {
        ConfigSpace::new(vec![sw("a", 0x100, &[0, 3, 7]), sw("b", 0x200, &[0, 1])]).unwrap()
    }

    #[test]
    fn mixed_radix_indexing() {
        let s = space2();
        assert_eq!(s.leaf_count(), 6);
        // Switch 0 is the fastest digit.
        assert_eq!(s.value(0, 0), 0);
        assert_eq!(s.value(1, 0), 3);
        assert_eq!(s.value(2, 0), 7);
        assert_eq!(s.value(3, 0), 0);
        assert_eq!(s.value(0, 1), 0);
        assert_eq!(s.value(3, 1), 1);
        assert_eq!(s.label(5), "a=7,b=1");
    }

    #[test]
    fn masks_partition_the_space() {
        let s = space2();
        for d in 0..2 {
            let mut union = LeafSet::empty(s.leaf_count());
            for idx in 0..s.switches()[d].values.len() {
                assert!(union.is_disjoint(s.mask(d, idx)));
                union = union.union(s.mask(d, idx));
            }
            assert_eq!(union, s.full_set());
        }
    }

    #[test]
    fn projection_detects_single_switch_difference() {
        let s = space2();
        // a=0 arm vs a∈{3,7} arm at fixed b: joinable over a.
        let arm0 = s.mask(0, 0).clone();
        let arm1 = s.mask(0, 1).union(s.mask(0, 2));
        assert_eq!(s.project_digit0(&arm0, 0), s.project_digit0(&arm1, 0));
        // But not joinable over b.
        assert_ne!(s.project_digit0(&arm0, 1), s.project_digit0(&arm1, 1));
    }

    #[test]
    fn too_wide_is_rejected() {
        let wide: Vec<SwitchDomain> = (0..17)
            .map(|i| sw(&format!("s{i}"), 0x100 + 8 * i as u64, &[0, 1]))
            .collect();
        let err = ConfigSpace::new(wide).unwrap_err();
        assert!(matches!(err, SpaceError::TooWide { .. }));
    }

    #[test]
    fn overlap_is_rejected() {
        let err =
            ConfigSpace::new(vec![sw("a", 0x100, &[0, 1]), sw("b", 0x102, &[0, 1])]).unwrap_err();
        assert!(matches!(err, SpaceError::Overlap { .. }));
    }

    #[test]
    fn domains_are_sorted_and_deduped() {
        let s = ConfigSpace::new(vec![sw("a", 0x100, &[7, 0, 3, 7])]).unwrap();
        assert_eq!(s.switches()[0].values, vec![0, 3, 7]);
    }

    #[test]
    fn leafset_ops() {
        let mut a = LeafSet::empty(70);
        a.insert(0);
        a.insert(65);
        let mut b = LeafSet::empty(70);
        b.insert(65);
        assert_eq!(a.count(), 2);
        assert!(!a.is_disjoint(&b));
        assert_eq!(a.intersect(&b).iter().collect::<Vec<_>>(), vec![65]);
        assert_eq!(a.union(&b).count(), 2);
        assert_eq!(a.first(), Some(0));
        assert!(LeafSet::empty(70).is_empty());
        assert_eq!(LeafSet::full(70).count(), 70);
    }
}
