//! Multiversed functions calling multiversed functions: call sites inside
//! *variant bodies* are recorded and patched too, so a committed call
//! chain is direct end to end — and reverts unwind every level.

use multiverse::Program;

const SRC: &str = r#"
    multiverse bool outer_on;
    multiverse bool inner_on;

    multiverse i64 inner(void) {
        if (inner_on) { return 10; }
        return 20;
    }

    // The call to inner() exists in the generic body and in both outer
    // variants; each occurrence is a recorded call site.
    multiverse i64 outer(void) {
        i64 base = inner();
        if (outer_on) { return base + 1000; }
        return base;
    }

    i64 drive(void) { return outer(); }
    i64 main(void) { return 0; }
"#;

#[test]
fn callsites_inside_variants_are_recorded_and_patched() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();

    // inner is called from: drive→outer chain has sites in outer's
    // generic + 2 variants, plus outer's site in drive = 4 total.
    let rt = w.rt.as_ref().unwrap();
    let inner = w.sym("inner").unwrap();
    let outer = w.sym("outer").unwrap();
    assert_eq!(rt.callsites_of(inner), 3, "generic + two outer variants");
    assert_eq!(rt.callsites_of(outer), 1);

    // Commit everything; the whole chain binds.
    w.set("outer_on", 1).unwrap();
    w.set("inner_on", 1).unwrap();
    w.commit().unwrap();
    assert_eq!(w.call("drive", &[]).unwrap(), 1010);

    // Both switch reads disappear from the committed chain (remaining
    // loads are frame-slot traffic, identical across bindings).
    let committed = w.time_calls("drive", &[], 100, false).unwrap();
    w.revert().unwrap();
    let generic = w.time_calls("drive", &[], 100, false).unwrap();
    assert_eq!(
        generic.stats.loads - committed.stats.loads,
        2 * 100,
        "one outer_on and one inner_on load per call are gone"
    );
    w.commit().unwrap();

    // Re-commit only inner: the site inside outer's *committed variant*
    // must be repatched.
    w.set("inner_on", 0).unwrap();
    w.commit_refs("inner_on").unwrap();
    assert_eq!(w.call("drive", &[]).unwrap(), 1020);

    // Universal revert unwinds both levels back to dynamic evaluation.
    w.revert().unwrap();
    w.set("outer_on", 0).unwrap();
    w.set("inner_on", 1).unwrap();
    assert_eq!(w.call("drive", &[]).unwrap(), 10);
}

#[test]
fn deep_commit_revert_interleavings_stay_consistent() {
    let program = Program::build(&[("t.c", SRC)]).unwrap();
    let mut w = program.boot();
    let expected = |o: i64, i: i64| -> u64 {
        let base = if i != 0 { 10 } else { 20 };
        (if o != 0 { base + 1000 } else { base }) as u64
    };
    for (o, i, op) in [
        (1, 0, "commit"),
        (0, 0, "refs_outer"),
        (0, 1, "refs_inner"),
        (1, 1, "commit"),
        (0, 0, "revert"),
        (1, 0, "func_outer"),
    ] {
        w.set("outer_on", o).unwrap();
        w.set("inner_on", i).unwrap();
        match op {
            "commit" => {
                w.commit().unwrap();
            }
            "refs_outer" => {
                w.commit_refs("outer_on").unwrap();
            }
            "refs_inner" => {
                w.commit_refs("inner_on").unwrap();
            }
            "func_outer" => {
                w.commit_func("outer").unwrap();
            }
            "revert" => {
                w.revert().unwrap();
            }
            _ => unreachable!(),
        }
        // Whatever the binding state, behaviour equals the dynamic
        // semantics of the *current* values — because every bound
        // variant was selected for them and every unbound function reads
        // them live.
        assert_eq!(
            w.call("drive", &[]).unwrap(),
            expected(o, i),
            "after {op} with ({o},{i})"
        );
    }
}
