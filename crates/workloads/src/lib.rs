#![warn(missing_docs)]
//! The paper's case studies (§6), rebuilt in MVC and run on the simulated
//! machine:
//!
//! * [`spinlock`] — Linux lock elision (Fig. 1 and Fig. 4 left): the
//!   `CONFIG_SMP` spinlock in four kernel builds (no elision / `if`
//!   elision / multiverse elision / static UP).
//! * [`pvops`] — paravirtual operations (Fig. 4 right): `sti`/`cli`
//!   through the PV-Ops function-pointer table with boot-time patching
//!   and the custom all-callee-saved calling convention, versus
//!   multiversed interrupt operations, versus statically disabled
//!   paravirtualization.
//! * [`musl`] — the musl C library (Fig. 5): `__lock`/`__lockfile`
//!   elision keyed on `threads_minus_1`, measured through `random()`,
//!   `malloc(0)`, `malloc(1)` and `fputc('a')`.
//! * [`grep`] — GNU grep (§6.2.3): the multibyte-locale mode switch in
//!   the line-matching loop over a generated hex-random corpus.
//! * [`cpython`] — cPython (§6.2.1): the GC enable flag on the
//!   object-allocation path.
//! * [`alternative`] — the `alternative`/`alternative_smp` macro family
//!   (§1.1): boot-time single-instruction patching (the SMAP guards),
//!   subsumed by multiverse.
//! * [`smp_contention`] — true SMP spinlock contention with quiesced
//!   concurrent commits rewriting the lock functions mid-flight (the
//!   E15 experiment).
//! * [`commit_storm`] — flip requests arriving faster than commits can
//!   land, driven through the `mvd` commit control plane vs. a naive
//!   one-commit-per-request baseline.
//! * [`textgen`] — deterministic workload-input generation.
//!
//! Every module exposes the MVC source, builders for the relevant
//! configurations, and measurement helpers shared by the Criterion
//! benches and the `paper_tables` harness.

pub mod alternative;
pub mod commit_storm;
pub mod cpython;
pub mod grep;
pub mod musl;
pub mod pvops;
pub mod smp_contention;
pub mod spinlock;
pub mod textgen;
