//! CFG cleanup: unreachable-block removal, jump threading through empty
//! blocks, and straight-line block merging.

use crate::ir::{BlockId, FuncIr, Term};
use std::collections::{HashMap, HashSet};

/// Runs the pass; returns `true` if anything changed.
pub fn run(f: &mut FuncIr) -> bool {
    let mut changed = false;
    changed |= thread_jumps(f);
    changed |= merge_chains(f);
    changed |= drop_unreachable(f);
    changed
}

/// Redirects edges that point at an empty block whose only content is a
/// `jmp` to another block.
fn thread_jumps(f: &mut FuncIr) -> bool {
    let mut target: HashMap<BlockId, BlockId> = HashMap::new();
    for (i, b) in f.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            if let Term::Jmp(t) = b.term {
                if t != i as BlockId {
                    target.insert(i as BlockId, t);
                }
            }
        }
    }
    if target.is_empty() {
        return false;
    }
    // Resolve chains (with a cycle guard).
    let resolve = |mut b: BlockId| {
        let mut seen = HashSet::new();
        while let Some(&t) = target.get(&b) {
            if !seen.insert(b) {
                break;
            }
            b = t;
        }
        b
    };
    let mut changed = false;
    for b in &mut f.blocks {
        match &mut b.term {
            Term::Jmp(t) => {
                let r = resolve(*t);
                if r != *t {
                    *t = r;
                    changed = true;
                }
            }
            Term::Br { t, f: fb, .. } => {
                let (rt, rf) = (resolve(*t), resolve(*fb));
                if rt != *t || rf != *fb {
                    *t = rt;
                    *fb = rf;
                    changed = true;
                }
            }
            Term::Ret(_) => {}
        }
    }
    changed
}

/// Merges `a -> jmp b` where `b` has exactly one predecessor.
fn merge_chains(f: &mut FuncIr) -> bool {
    let mut changed = false;
    loop {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        let reachable = reachable_set(f);
        for &b in &reachable {
            for s in f.blocks[b as usize].term.succs() {
                preds.entry(s).or_default().push(b);
            }
        }
        let mut merged = false;
        for &a in &reachable {
            let Term::Jmp(b) = f.blocks[a as usize].term else {
                continue;
            };
            if b == a || b == 0 {
                continue; // never merge the entry away
            }
            if preds.get(&b).map(|p| p.len()) != Some(1) {
                continue;
            }
            // Move b's contents into a.
            let donor = std::mem::take(&mut f.blocks[b as usize]);
            let a_blk = &mut f.blocks[a as usize];
            a_blk.insts.extend(donor.insts);
            a_blk.term = donor.term;
            // Leave b empty with a self-loop-free Ret; it becomes
            // unreachable and is dropped later.
            f.blocks[b as usize].term = Term::Ret(None);
            merged = true;
            changed = true;
            break; // recompute preds
        }
        if !merged {
            break;
        }
    }
    changed
}

fn reachable_set(f: &FuncIr) -> Vec<BlockId> {
    let mut seen = HashSet::new();
    let mut stack = vec![0 as BlockId];
    let mut out = Vec::new();
    while let Some(b) = stack.pop() {
        if !seen.insert(b) {
            continue;
        }
        out.push(b);
        stack.extend(f.blocks[b as usize].term.succs());
    }
    out
}

/// Removes unreachable blocks, compacting ids.
fn drop_unreachable(f: &mut FuncIr) -> bool {
    let reachable = reachable_set(f);
    if reachable.len() == f.blocks.len() {
        return false;
    }
    let mut order: Vec<BlockId> = reachable;
    order.sort_unstable();
    let remap: HashMap<BlockId, BlockId> = order
        .iter()
        .enumerate()
        .map(|(new, &old)| (old, new as BlockId))
        .collect();
    let old_blocks = std::mem::take(&mut f.blocks);
    for (old_id, mut b) in old_blocks.into_iter().enumerate() {
        if !remap.contains_key(&(old_id as BlockId)) {
            continue;
        }
        match &mut b.term {
            Term::Jmp(t) => *t = remap[t],
            Term::Br { t, f: fb, .. } => {
                *t = remap[t];
                *fb = remap[fb];
            }
            Term::Ret(_) => {}
        }
        f.blocks.push(b);
    }
    true
}
