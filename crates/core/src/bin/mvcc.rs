//! `mvcc` — the multiverse compiler driver.
//!
//! ```text
//! mvcc build  <file.c>… [-j N] [--timings] [--stats]
//!                                   compile + link, print image summary;
//!                                   -j runs the optimize/codegen pipeline
//!                                   stages on N threads (0 = all cores,
//!                                   output byte-identical to -j 1);
//!                                   --timings/--stats print the staged
//!                                   pipeline's wall-time / counter report
//!                                   (--timings additionally records
//!                                   stage_begin/stage_end/cache_query
//!                                   events — exported with --out/--format
//!                                   like `mvcc trace`)
//! mvcc compile <file.c> -o out.mvo  separate compilation: write one
//!                                   relocatable MVO object
//! mvcc link   <file.mvo>… [--run]   link MVO objects (and optionally run
//!                                   main)
//! mvcc dump   <file.c>…             list switches, functions, variants,
//!                                   guards and call sites
//! mvcc disasm <file.c>… [--fn NAME] disassemble the text segment (or one
//!                                   function)
//! mvcc run    <file.c>… [--call F] [--set VAR=V]… [--commit] [--smp N]
//!             [--tier T]
//!                                   execute main (or F) on the machine;
//!                                   --smp N boots an N-vCPU SMP machine,
//!                                   runs F (or main) on every vCPU and
//!                                   prints per-vCPU results plus the
//!                                   machine-wide roll-up (a --commit is
//!                                   performed as a quiesced concurrent
//!                                   commit, see --strategy); --tier picks
//!                                   the execution engine (see common
//!                                   flags)
//! mvcc verify <file.c>… [--set VAR=V]… [--commit] [--smp N]
//!                                   dry-run the commit validate phase and
//!                                   print a per-function / per-site health
//!                                   report (nothing is patched unless
//!                                   --commit is given first; with --commit
//!                                   the per-phase commit timing is printed;
//!                                   with --smp N the commit runs as a
//!                                   quiesced concurrent commit against N
//!                                   vCPUs executing main/F, and the
//!                                   quiesce report is printed)
//! mvcc trace  <file.c>… [--set VAR=V]… [--commit] [--call F]
//!             [--out PATH] [--format chrome|jsonl|text]
//!                                   record the runtime's structured events
//!                                   while committing (and optionally
//!                                   calling F), then export them — chrome
//!                                   format opens in chrome://tracing or
//!                                   Perfetto
//! mvcc stats  <file.c>… [--set VAR=V]… [--call F] [--per-fn] [--commit]
//!             [--json]
//!                                   execute main (or F) under the
//!                                   per-function profiler; with --commit,
//!                                   run generic and committed images and
//!                                   print a per-function comparison (the
//!                                   §6.2 branch-reduction report) plus the
//!                                   trace-ring kept/dropped counters;
//!                                   --per-fn appends the per-(function,
//!                                   variant) residency table; --json emits
//!                                   the profile as a versioned JSON
//!                                   document instead of text
//! mvcc metrics [<file.c>…] [--smoke] [--set VAR=V]… [--commit] [--call F]
//!             [--prom|--json] [--out PATH]
//!                                   run main (or F) with the mvmetrics
//!                                   registry attached and export every
//!                                   mv_vm_*/mv_rt_* metric — Prometheus
//!                                   text exposition by default (--prom),
//!                                   or the versioned JSON snapshot with
//!                                   --json; --smoke uses the built-in
//!                                   storm kernel (no input files)
//! mvcc vexec  [<file.c>…] [--smoke] [--call F] [--configs all|sampled]
//!             [--oracle] [--set VAR=V]…
//!                                   run F (default main) under *every*
//!                                   switch assignment in one variational
//!                                   pass and print the per-configuration
//!                                   observations plus the sharing
//!                                   statistics; --configs picks how many
//!                                   leaves the enumerate-and-rerun
//!                                   cross-check replays (all = every
//!                                   leaf, sampled = a deterministic
//!                                   subset); --oracle additionally
//!                                   replays each leaf through set +
//!                                   commit + call and asserts the
//!                                   committed variants observe the same
//!                                   exit/output; --smoke uses a built-in
//!                                   three-switch kernel (no input files)
//! mvcc serve  <file.c>… [--smp N] [--call F] [--strategy S]
//!                                   boot an SMP world and drive the mvd
//!                                   commit daemon from stdin, one command
//!                                   per line: `flip VAR V`, `prio VAR V`,
//!                                   `commit`, `revert`, `pump [ROUNDS]`,
//!                                   `stats`, `metrics [json]`,
//!                                   `release VAR`, `quit`
//! mvcc storm  [<file.c>…] [--smoke] [--smp N] [--requests N] [--burst N]
//!             [--seed N] [--strategy S] [--history PATH]
//!                                   submit a randomized flip storm for
//!                                   every switch in the image through the
//!                                   mvd daemon and print throughput,
//!                                   latency percentiles and the daemon
//!                                   counters; --smoke uses a built-in
//!                                   kernel (no input files), checks the
//!                                   workers stayed exact and reconciles
//!                                   the metrics registry against the
//!                                   daemon counters; --history writes the
//!                                   versioned switch-history JSON (flip
//!                                   timeline + variant residency)
//!
//! common flags:
//!   --dynamic            build without multiverse (binding B)
//!   --static VAR=V       fix a switch at compile time (binding A)
//!   --variant-limit N    override the variant-explosion limit
//!   -j / --jobs N        pipeline worker threads (default 1, 0 = cores)
//!   --no-cache           disable the in-process compile cache
//!   --smp N              run/verify on an N-vCPU SMP machine
//!   --strategy S         concurrent-commit protocol for --smp commits:
//!                        stop-machine (default) or breakpoint
//!   --tier T             execution engine: tierless (default), block
//!                        (tier-0 decode cache), superblock (tier-1
//!                        fused blocks) or native (tier-2 lowered
//!                        regions) — observationally identical, tiered
//!                        runs print the block-cache counters
//!   --backend B          runtime backend: mv64 (default) or native —
//!                        identical committed images; the native backend
//!                        additionally lowers live function bodies to
//!                        pre-resolved regions after every commit and
//!                        moves the machine to the native tier
//! ```

use multiverse::mvc::Options;
use multiverse::{mvasm, mvobj, mvrt, Program};
use std::process::ExitCode;

struct Args {
    cmd: String,
    files: Vec<String>,
    opts: Options,
    call: Option<String>,
    sets: Vec<(String, i64)>,
    commit: bool,
    func: Option<String>,
    output: Option<String>,
    run: bool,
    out: Option<String>,
    format: Option<String>,
    per_fn: bool,
    timings: bool,
    stats_flag: bool,
    smp: usize,
    strategy: mvrt::CommitStrategy,
    tier: multiverse::mvvm::ExecTier,
    /// `--tier` was given on the command line (as opposed to defaulted),
    /// which makes a conflicting `--backend` an error instead of a
    /// silent override.
    tier_explicit: bool,
    backend: Option<String>,
    configs: String,
    oracle: bool,
    smoke: bool,
    requests: u64,
    burst: u64,
    seed: u64,
    prom: bool,
    json: bool,
    history: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let cmd = it
        .next()
        .ok_or("missing command (build|compile|link|dump|disasm|run|verify|trace|stats)")?;
    let mut args = Args {
        cmd,
        files: Vec::new(),
        opts: Options::default(),
        call: None,
        sets: Vec::new(),
        commit: false,
        func: None,
        output: None,
        run: false,
        out: None,
        format: None,
        per_fn: false,
        timings: false,
        stats_flag: false,
        smp: 0,
        strategy: mvrt::CommitStrategy::default(),
        tier: multiverse::mvvm::ExecTier::default(),
        tier_explicit: false,
        backend: None,
        configs: "all".to_string(),
        oracle: false,
        smoke: false,
        requests: 96,
        burst: 24,
        seed: 42,
        prom: false,
        json: false,
        history: None,
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dynamic" => args.opts = Options::dynamic(),
            "--static" => {
                let kv = it.next().ok_or("--static needs VAR=V")?;
                let (k, v) = kv.split_once('=').ok_or("--static needs VAR=V")?;
                args.opts.multiverse = false;
                args.opts
                    .static_config
                    .insert(k.to_string(), v.parse().map_err(|_| "bad value")?);
            }
            "--variant-limit" => {
                args.opts.variant_limit = it
                    .next()
                    .ok_or("--variant-limit needs N")?
                    .parse()
                    .map_err(|_| "bad limit")?;
            }
            "--call" => args.call = Some(it.next().ok_or("--call needs a name")?),
            "--set" => {
                let kv = it.next().ok_or("--set needs VAR=V")?;
                let (k, v) = kv.split_once('=').ok_or("--set needs VAR=V")?;
                args.sets
                    .push((k.to_string(), v.parse().map_err(|_| "bad value")?));
            }
            "--commit" => args.commit = true,
            "--fn" => args.func = Some(it.next().ok_or("--fn needs a name")?),
            "-o" => args.output = Some(it.next().ok_or("-o needs a path")?),
            "--run" => args.run = true,
            "--out" => args.out = Some(it.next().ok_or("--out needs a path")?),
            "--format" => args.format = Some(it.next().ok_or("--format needs a name")?),
            "--per-fn" => args.per_fn = true,
            "-j" | "--jobs" => {
                args.opts.jobs = it
                    .next()
                    .ok_or("-j needs a worker count (0 = all cores)")?
                    .parse()
                    .map_err(|_| "bad worker count")?;
            }
            "--no-cache" => args.opts.cache = false,
            "--smp" => {
                args.smp = it
                    .next()
                    .ok_or("--smp needs a vCPU count")?
                    .parse()
                    .map_err(|_| "bad vCPU count")?;
                if args.smp == 0 {
                    return Err("--smp needs at least 1 vCPU".into());
                }
            }
            "--strategy" => {
                let s = it.next().ok_or("--strategy needs a protocol name")?;
                args.strategy = mvrt::CommitStrategy::parse(&s)
                    .ok_or(format!("unknown strategy `{s}` (stop-machine|breakpoint)"))?;
            }
            "--tier" => {
                let s = it.next().ok_or("--tier needs an engine name")?;
                args.tier = multiverse::mvvm::ExecTier::parse(&s).ok_or(format!(
                    "unknown tier `{s}` (tierless|block|superblock|native)"
                ))?;
                args.tier_explicit = true;
            }
            "--backend" => {
                let s = it.next().ok_or("--backend needs a backend name")?;
                if mvrt::backend::parse(&s).is_none() {
                    return Err(format!("unknown backend `{s}` (mv64|native)"));
                }
                args.backend = Some(s);
            }
            "--configs" => {
                let s = it.next().ok_or("--configs needs a mode (all|sampled)")?;
                if s != "all" && s != "sampled" {
                    return Err(format!("unknown --configs mode `{s}` (all|sampled)"));
                }
                args.configs = s;
            }
            "--oracle" => args.oracle = true,
            "--timings" => args.timings = true,
            "--stats" => args.stats_flag = true,
            "--smoke" => args.smoke = true,
            "--prom" => args.prom = true,
            "--json" => args.json = true,
            "--history" => args.history = Some(it.next().ok_or("--history needs a path")?),
            "--requests" => {
                args.requests = it
                    .next()
                    .ok_or("--requests needs a count")?
                    .parse()
                    .map_err(|_| "bad request count")?;
            }
            "--burst" => {
                args.burst = it
                    .next()
                    .ok_or("--burst needs a count")?
                    .parse()
                    .map_err(|_| "bad burst size")?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|_| "bad seed")?;
            }
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // A backend that forces an execution tier contradicts an explicit
    // `--tier` asking for a different one. Historically the backend won
    // silently (set_backend runs after set_tier); fail fast instead and
    // name both flags.
    if args.tier_explicit {
        if let Some(b) = &args.backend {
            if let Some(pt) = mvrt::backend::parse(b).and_then(|bk| bk.preferred_tier()) {
                if pt != args.tier {
                    return Err(format!(
                        "conflicting flags: `--backend {b}` forces the `{pt}` execution \
                         tier, but `--tier {}` was also given; drop one of the two flags",
                        args.tier
                    ));
                }
            }
        }
    }
    if args.files.is_empty()
        && !(matches!(args.cmd.as_str(), "storm" | "metrics" | "vexec") && args.smoke)
    {
        return Err("no input files".into());
    }
    Ok(args)
}

fn read_units(args: &Args) -> Result<Vec<(String, String)>, String> {
    let mut units = Vec::new();
    for f in &args.files {
        let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        units.push((f.clone(), src));
    }
    Ok(units)
}

fn build(args: &Args) -> Result<Program, String> {
    let units = read_units(args)?;
    let refs: Vec<(&str, &str)> = units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let p = Program::build_with(&refs, &args.opts).map_err(|e| e.to_string())?;
    for w in p.warnings() {
        eprintln!("{w}");
    }
    Ok(p)
}

fn cmd_build(args: &Args) -> Result<(), String> {
    use multiverse::mvtrace::{ChromeSink, JsonlSink, TextSink, TraceSink};
    let units = read_units(args)?;
    let refs: Vec<(&str, &str)> = units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let mut pipeline = multiverse::mvc::Pipeline::new(args.opts.clone());
    if args.timings {
        multiverse::mvtrace::set_enabled(true);
        pipeline.enable_tracing(65536);
    }
    let p = Program::build_with_pipeline(&refs, &mut pipeline, args.opts.multiverse)
        .map_err(|e| e.to_string())?;
    for w in p.warnings() {
        eprintln!("{w}");
    }
    let exe = p.exe();
    println!("image: {} bytes, entry {:#x}", p.image_size(), exe.entry);
    for sec in [
        mvobj::SEC_TEXT,
        mvobj::SEC_RODATA,
        mvobj::SEC_DATA,
        mvobj::SEC_BSS,
        mvobj::SEC_MV_VARIABLES,
        mvobj::SEC_MV_FUNCTIONS,
        mvobj::SEC_MV_CALLSITES,
    ] {
        let (addr, size) = exe.section(sec);
        if size > 0 {
            println!("  {sec:22} {addr:#10x}  {size:>8} B");
        }
    }
    if args.timings || args.stats_flag {
        print!("{}", pipeline.stats().report());
    }
    if args.timings {
        let events = pipeline.take_trace();
        match &args.out {
            Some(path) => {
                let format = args.format.as_deref().unwrap_or("chrome");
                let sink: Box<dyn TraceSink> = match format {
                    "chrome" => Box::new(ChromeSink::with_dropped(0)),
                    "jsonl" => Box::new(JsonlSink::default()),
                    "text" => Box::new(TextSink),
                    other => return Err(format!("unknown --format `{other}` (chrome|jsonl|text)")),
                };
                let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
                sink.export(&events, &mut f).map_err(|e| e.to_string())?;
                eprintln!("wrote {path} ({format}, {} events)", events.len());
            }
            None => print!("{}", TextSink.export_string(&events)),
        }
    }
    Ok(())
}

fn cmd_dump(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let world = p.boot();
    let Some(rt) = &world.rt else {
        println!("(no multiverse descriptors in this build)");
        return Ok(());
    };
    println!(
        "{} switches, {} functions, {} call sites",
        rt.num_variables(),
        rt.num_functions(),
        rt.num_callsites()
    );
    // Reverse symbol table for pretty names.
    let exe = p.exe();
    let sym_name = |addr: u64| -> String {
        exe.symbolize(addr)
            .filter(|(_, off)| *off == 0)
            .map(|(n, _)| n.to_string())
            .unwrap_or_else(|| format!("{addr:#x}"))
    };
    for (name, &addr) in &exe.symbols {
        if let Some(variants) = rt.variants_of(addr) {
            if variants.is_empty() {
                continue;
            }
            println!("fn {name} @ {addr:#x}");
            for v in variants {
                println!("  variant {} @ {v:#x}", sym_name(v));
            }
            println!("  call sites: {}", rt.callsites_of(addr));
        }
    }
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let world = p.boot();
    let exe = p.exe();
    if let Some(f) = &args.func {
        let addr = exe.symbol(f).ok_or_else(|| format!("no symbol `{f}`"))?;
        // Disassemble until the next symbol or 256 bytes.
        let end = exe
            .symbols
            .values()
            .filter(|&&a| a > addr)
            .min()
            .copied()
            .unwrap_or(addr + 256);
        let bytes = world
            .machine
            .mem
            .read_vec(addr, (end - addr) as usize)
            .map_err(|e| e.to_string())?;
        print!("{}", mvasm::disasm(&bytes, addr));
    } else {
        let (taddr, tsize) = exe.section(mvobj::SEC_TEXT);
        let bytes = world
            .machine
            .mem
            .read_vec(taddr, tsize as usize)
            .map_err(|e| e.to_string())?;
        print!("{}", mvasm::disasm(&bytes, taddr));
    }
    Ok(())
}

/// Prints one quiesce report line (shared by `run --smp` and
/// `verify --smp`).
fn print_quiesce(q: &mvrt::QuiesceReport) {
    println!(
        "quiesce[{}]: {} rounds, {} parked, {} trap hits, {} shootdowns, {} stall cycles",
        q.strategy, q.rounds, q.parked, q.trap_hits, q.shootdowns, q.stall_cycles
    );
    println!(
        "commit: {} variants bound, {} generic fallbacks, {} sites, {} unchanged",
        q.commit.variants_committed,
        q.commit.generic_fallbacks,
        q.commit.sites_touched,
        q.commit.unchanged
    );
}

/// Boots an SMP world with `smp` vCPUs, spawns `main` (or `--call F`) on
/// every vCPU and applies the `--set` assignments. Shared by `run --smp`,
/// `verify --smp` and `serve`.
fn boot_smp_workers(args: &Args, p: &Program, smp: usize) -> Result<multiverse::SmpWorld, String> {
    let mut w = p.boot_smp(smp);
    w.smp.set_tier(args.tier);
    if let Some(b) = &args.backend {
        w.set_backend(b).map_err(|e| e.to_string())?;
    }
    for (k, v) in &args.sets {
        w.set(k, *v).map_err(|e| e.to_string())?;
        println!("set {k} = {v}");
    }
    match &args.call {
        Some(f) => w.spawn_all(f, &[]).map_err(|e| e.to_string())?,
        None => {
            let entry = p.exe().entry;
            for i in 0..smp {
                w.smp.spawn(i, entry, &[]).map_err(|e| e.to_string())?;
            }
        }
    }
    Ok(w)
}

fn cmd_run_smp(args: &Args, p: &Program) -> Result<(), String> {
    let mut w = boot_smp_workers(args, p, args.smp)?;
    // Let the workers get under way before committing, so a --commit
    // exercises the concurrent protocol rather than patching an idle
    // machine.
    for _ in 0..4 {
        w.smp.step_round();
    }
    if args.commit {
        let q = w
            .commit_quiesced(args.strategy)
            .map_err(|e| e.to_string())?;
        print_quiesce(&q);
    }
    let results = w.run(10_000_000).map_err(|e| e.to_string())?;
    let out = w.smp.machine.take_output();
    if !out.is_empty() {
        println!("--- output ({} bytes) ---", out.len());
        println!("{}", String::from_utf8_lossy(&out));
    }
    for (i, r) in results.iter().enumerate() {
        println!(
            "vcpu {i}: result {r} ({} cycles, {} stalled)",
            w.smp.cycles_of(i),
            w.smp.stall_cycles(i)
        );
    }
    let stats = w.total_stats();
    println!(
        "smp: {} vcpus, {} rounds, {} instructions, {} cycles wall-clock",
        w.vcpus(),
        w.smp.rounds(),
        stats.instructions,
        w.smp.max_cycles()
    );
    print_block_stats(w.smp.machine.tier(), w.smp.block_stats());
    print_native_stats(w.smp.machine.tier(), w.smp.machine.native_stats());
    Ok(())
}

/// Prints the block-cache counters after a tiered run (`--tier block`,
/// `--tier superblock` or `--tier native`); tierless runs have no block
/// layer to report.
fn print_block_stats(tier: multiverse::mvvm::ExecTier, s: multiverse::mvvm::BlockCacheStats) {
    if tier == multiverse::mvvm::ExecTier::Tierless {
        return;
    }
    println!(
        "blocks[{tier}]: {} hits, {} recorded, {} evicted, {} promoted",
        s.hits, s.misses, s.evictions, s.promotions
    );
}

/// Prints the native-region counters after a native-tier run (`--tier
/// native` or `--backend native`).
fn print_native_stats(tier: multiverse::mvvm::ExecTier, n: multiverse::mvvm::NativeStats) {
    if tier != multiverse::mvvm::ExecTier::Native {
        return;
    }
    println!(
        "native: {} regions ({} blocks) lowered, {} runs, {} insns, {} invalidated",
        n.regions, n.blocks, n.runs, n.insns, n.invalidations
    );
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    if args.smp > 0 {
        return cmd_run_smp(args, &p);
    }
    let mut world = p.boot();
    world.machine.set_tier(args.tier);
    if let Some(b) = &args.backend {
        world.set_backend(b).map_err(|e| e.to_string())?;
    }
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
        println!("set {k} = {v}");
    }
    if args.commit {
        let report = world.commit().map_err(|e| e.to_string())?;
        println!(
            "commit: {} variants bound, {} generic fallbacks, {} sites",
            report.variants_committed, report.generic_fallbacks, report.sites_touched
        );
    }
    let result = match &args.call {
        Some(f) => world.call(f, &[]).map_err(|e| e.to_string())?,
        None => {
            let entry = p.exe().entry;
            world.machine.call(entry, &[]).map_err(|e| e.to_string())?
        }
    };
    let out = world.machine.take_output();
    if !out.is_empty() {
        println!("--- output ({} bytes) ---", out.len());
        println!("{}", String::from_utf8_lossy(&out));
    }
    println!("result: {result} ({} cycles)", world.cycles());
    print_block_stats(world.machine.tier(), world.machine.block_stats());
    print_native_stats(world.machine.tier(), world.machine.native_stats());
    if let Some(rt) = &world.rt {
        let s = rt.stats;
        if s.sites_patched > 0 {
            println!(
                "patcher: {} sites patched, {} inlined, {} bytes written",
                s.sites_patched, s.sites_inlined, s.bytes_written
            );
        }
    }
    let _ = mvrt::PatchStrategy::CallSites; // (re-exported for scripting)
    Ok(())
}

/// Runs the validate dry-run against `m` and prints the health report.
fn print_validation(
    rt: &mvrt::Runtime,
    m: &multiverse::mvvm::Machine,
    exe: &mvobj::Executable,
) -> Result<(), String> {
    let sym_name = |addr: u64| -> String {
        exe.symbolize(addr)
            .filter(|(_, off)| *off == 0)
            .map(|(n, _)| n.to_string())
            .unwrap_or_else(|| format!("{addr:#x}"))
    };
    let report = rt.validate(m);
    println!(
        "verify: {} functions, {} call sites",
        report.functions.len(),
        report.sites.len()
    );
    for f in &report.functions {
        let binding = match f.binding {
            mvrt::FnBinding::Generic => "generic".to_string(),
            mvrt::FnBinding::Variant(v) => format!("variant {}", sym_name(v)),
        };
        let selected = match f.selected {
            Some(v) => format!("selects {}", sym_name(v)),
            None => "generic fallback".to_string(),
        };
        match &f.issue {
            Some(issue) => println!(
                "  fn {:20} bound: {binding:24} {selected}  !! {issue}",
                sym_name(f.generic)
            ),
            None => println!(
                "  fn {:20} bound: {binding:24} {selected}  ok",
                sym_name(f.generic)
            ),
        }
    }
    for s in &report.sites {
        let state = if s.patched { "patched" } else { "original" };
        match &s.issue {
            Some(issue) => println!(
                "  site {:#10x} -> {:20} {state:9} !! {issue}",
                s.site,
                sym_name(s.callee)
            ),
            None => println!(
                "  site {:#10x} -> {:20} {state:9} ok",
                s.site,
                sym_name(s.callee)
            ),
        }
    }
    if report.healthy() {
        println!("image healthy: a full commit would pass validation");
        Ok(())
    } else {
        Err(format!("{} issue(s) found", report.issues()))
    }
}

/// `verify --smp N`: commit concurrently against N running vCPUs, then
/// validate the quiesced image.
fn cmd_verify_smp(args: &Args, p: &Program) -> Result<(), String> {
    let mut w = boot_smp_workers(args, p, args.smp)?;
    if w.rt.is_none() {
        println!("(no multiverse descriptors in this build — nothing to verify)");
        return Ok(());
    }
    for _ in 0..4 {
        w.smp.step_round();
    }
    if args.commit {
        let q = w
            .commit_quiesced(args.strategy)
            .map_err(|e| e.to_string())?;
        print_quiesce(&q);
    }
    let results = w.run(10_000_000).map_err(|e| e.to_string())?;
    println!(
        "smp: {} vcpus finished ({} rounds, {} stall cycles)",
        results.len(),
        w.smp.rounds(),
        w.smp.total_stall_cycles()
    );
    let rt = w.rt.as_ref().expect("runtime present");
    print_validation(rt, &w.smp.machine, p.exe())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    if args.smp > 0 {
        return cmd_verify_smp(args, &p);
    }
    let mut world = p.boot();
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
        println!("set {k} = {v}");
    }
    if args.commit {
        let report = world.commit().map_err(|e| e.to_string())?;
        println!(
            "commit: {} variants bound, {} generic fallbacks, {} sites, {} unchanged, {} repatched",
            report.variants_committed,
            report.generic_fallbacks,
            report.sites_touched,
            report.unchanged,
            report.repatched
        );
        if let Some(rt) = &world.rt {
            let s = rt.stats;
            println!(
                "batching: {} pages touched, {} mprotects, {} flushes, {} sites skipped",
                s.pages_touched, s.mprotects, s.icache_flushes, s.sites_skipped
            );
            let t = rt.last_timing;
            println!(
                "timing: {:.1} µs total (plan {:.1} µs, validate {:.1} µs, apply {:.1} µs) over {} sites",
                t.elapsed.as_secs_f64() * 1e6,
                t.plan.as_secs_f64() * 1e6,
                t.validate.as_secs_f64() * 1e6,
                t.apply.as_secs_f64() * 1e6,
                t.sites
            );
        }
    }
    let Some(rt) = &world.rt else {
        println!("(no multiverse descriptors in this build — nothing to verify)");
        return Ok(());
    };
    print_validation(rt, &world.machine, p.exe())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    use multiverse::mvtrace::{build_spans, ChromeSink, JsonlSink, TextSink, TraceSink};
    let p = build(args)?;
    let mut world = p.boot();
    {
        let Some(rt) = world.rt.as_mut() else {
            return Err("no multiverse descriptors in this build — nothing to trace".into());
        };
        rt.enable_tracing(65536);
    }
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
        eprintln!("set {k} = {v}");
    }
    if args.commit {
        let report = world.commit().map_err(|e| e.to_string())?;
        eprintln!(
            "commit: {} variants bound, {} generic fallbacks, {} sites",
            report.variants_committed, report.generic_fallbacks, report.sites_touched
        );
    }
    if let Some(f) = &args.call {
        let r = world.call(f, &[]).map_err(|e| e.to_string())?;
        eprintln!("call {f} -> {r}");
    }
    let rt = world.rt.as_mut().expect("runtime present");
    let dropped = rt.trace_dropped();
    let events = rt.take_trace();
    if events.is_empty() {
        eprintln!("warning: no events recorded (pass --commit to trace a commit)");
    }
    let forest = build_spans(&events);
    eprintln!(
        "trace: {} events ({dropped} dropped by the ring), {} commit span(s)",
        events.len(),
        forest.commits.len()
    );
    let format = args.format.as_deref().unwrap_or("chrome");
    let sink: Box<dyn TraceSink> = match format {
        "chrome" => Box::new(ChromeSink::with_dropped(dropped)),
        "jsonl" => Box::new(JsonlSink::with_dropped(dropped)),
        "text" => Box::new(TextSink),
        other => return Err(format!("unknown --format `{other}` (chrome|jsonl|text)")),
    };
    match &args.out {
        Some(path) => {
            let mut f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            sink.export(&events, &mut f).map_err(|e| e.to_string())?;
            eprintln!("wrote {path} ({format})");
        }
        None => {
            let mut out = std::io::stdout();
            sink.export(&events, &mut out).map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), String> {
    if args.json && args.commit {
        return Err("--json reports a single profiled run (drop --commit)".into());
    }
    let p = build(args)?;
    // One fresh world per run so the generic and committed measurements
    // start from identical data-segment state. The committed run records
    // the runtime's events into a deliberately small ring so the
    // kept/dropped counters below reflect real ring behavior.
    const STATS_RING: usize = 64;
    type StatsRun = (multiverse::mvvm::Profiler, u64, Option<(usize, u64)>);
    let run = |commit: bool| -> Result<StatsRun, String> {
        let mut world = p.boot();
        for (k, v) in &args.sets {
            world.set(k, *v).map_err(|e| e.to_string())?;
        }
        if commit {
            if let Some(rt) = world.rt.as_mut() {
                rt.enable_tracing(STATS_RING);
            }
            world.commit().map_err(|e| e.to_string())?;
        }
        world.machine.enable_profile(p.exe());
        let result = match &args.call {
            Some(f) => world.call(f, &[]).map_err(|e| e.to_string())?,
            None => {
                let entry = p.exe().entry;
                world.machine.call(entry, &[]).map_err(|e| e.to_string())?
            }
        };
        let prof = world.machine.take_profile().expect("profiler installed");
        let trace = world
            .rt
            .as_mut()
            .filter(|_| commit)
            .map(|rt| (rt.take_trace().len(), rt.trace_dropped()));
        Ok((prof, result, trace))
    };
    if args.commit {
        let (generic, r0, _) = run(false)?;
        let (committed, r1, trace) = run(true)?;
        if r0 != r1 {
            eprintln!("warning: generic returned {r0}, committed returned {r1}");
        }
        println!(
            "{:<24} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8}",
            "function", "cyc(gen)", "cyc(com)", "br(gen)", "br(com)", "mp(gen)", "mp(com)"
        );
        // Union of names, ordered by generic cycles descending, then the
        // committed-only rows (variant bodies) by committed cycles.
        let mut names: Vec<String> = generic.report().iter().map(|r| r.name.clone()).collect();
        for r in committed.report() {
            if !names.contains(&r.name) {
                names.push(r.name.clone());
            }
        }
        let empty = multiverse::mvvm::FnCounters::default();
        let mut tot_g = empty;
        let mut tot_c = empty;
        for name in &names {
            let g = generic.counters_of(name).unwrap_or(empty);
            let c = committed.counters_of(name).unwrap_or(empty);
            tot_g.cycles += g.cycles;
            tot_c.cycles += c.cycles;
            tot_g.stats += g.stats;
            tot_c.stats += c.stats;
            println!(
                "{:<24} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8}",
                name,
                g.cycles,
                c.cycles,
                g.stats.branches,
                c.stats.branches,
                g.stats.mispredicts,
                c.stats.mispredicts
            );
        }
        let pct = |a: u64, b: u64| -> String {
            if a == 0 {
                return "-".into();
            }
            format!("{:+.1}%", (b as f64 - a as f64) / a as f64 * 100.0)
        };
        println!(
            "{:<24} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8}",
            "total",
            tot_g.cycles,
            tot_c.cycles,
            tot_g.stats.branches,
            tot_c.stats.branches,
            tot_g.stats.mispredicts,
            tot_c.stats.mispredicts
        );
        println!(
            "delta: cycles {}, branches {}, mispredicts {}",
            pct(tot_g.cycles, tot_c.cycles),
            pct(tot_g.stats.branches, tot_c.stats.branches),
            pct(tot_g.stats.mispredicts, tot_c.stats.mispredicts)
        );
        if let Some((kept, dropped)) = trace {
            println!("trace ring: {kept} events kept, {dropped} dropped (cap {STATS_RING})");
        }
    } else {
        let (prof, result, _) = run(false)?;
        if args.json {
            println!("{}", stats_json(&prof, result));
        } else if args.per_fn {
            print!("{}", prof.render());
            println!("residency (per function/variant):");
            let rows = multiverse::telemetry::residency_rows(&prof);
            print!("{}", multiverse::telemetry::render_residency(&rows));
        } else {
            let total: u64 = prof.report().iter().map(|r| r.counters.cycles).sum();
            println!("result: {result} ({total} profiled cycles)");
            print!("{}", prof.render());
        }
    }
    Ok(())
}

/// The `mvcc stats --json` document: the profiler report plus its
/// residency join, written with the shared `mvmetrics` JSON writer.
fn stats_json(prof: &multiverse::mvvm::Profiler, result: u64) -> String {
    use multiverse::mvmetrics::json::{array, Obj};
    let functions = prof.report().into_iter().map(|r| {
        let mut o = Obj::new();
        o.str("name", &r.name)
            .u64("cycles", r.counters.cycles)
            .u64("instructions", r.counters.stats.instructions)
            .u64("branches", r.counters.stats.branches)
            .u64("mispredicts", r.counters.stats.mispredicts);
        o.finish()
    });
    let residency = multiverse::telemetry::residency_rows(prof);
    let rows = residency.iter().map(|r| {
        let mut o = Obj::new();
        o.str("function", &r.function)
            .str("variant", &r.variant)
            .u64("cycles", r.cycles)
            .u64("instructions", r.instructions);
        o.finish()
    });
    let mut doc = Obj::new();
    doc.u64("version", 1)
        .str("kind", "mv-stats")
        .u64("result", result)
        .u64(
            "total_cycles",
            multiverse::telemetry::total_attributed_cycles(prof),
        )
        .raw("functions", array(functions))
        .raw("residency", array(rows));
    doc.finish()
}

/// `mvcc metrics`: run main (or `--call F`) with the mvmetrics registry
/// attached and export every registered metric — Prometheus text by
/// default, the versioned JSON snapshot with `--json`.
fn cmd_metrics(args: &Args) -> Result<(), String> {
    use multiverse::mvmetrics::{export, Registry};
    if args.prom && args.json {
        return Err("--prom and --json are mutually exclusive".into());
    }
    let smoke = args.smoke && args.files.is_empty();
    let p = if smoke {
        Program::build(&[("smoke.c", SMOKE_SRC)]).map_err(|e| e.to_string())?
    } else {
        build(args)?
    };
    let registry = Registry::new();
    let mut world = p.boot();
    world.enable_metrics(&registry);
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
    }
    if smoke {
        world.set("fast_path", 1).map_err(|e| e.to_string())?;
    }
    if (args.commit || smoke) && world.rt.is_some() {
        world.commit().map_err(|e| e.to_string())?;
    }
    let result = match &args.call {
        Some(f) => world.call(f, &[]).map_err(|e| e.to_string())?,
        None => {
            let entry = world.exe().entry;
            world.machine.call(entry, &[]).map_err(|e| e.to_string())?
        }
    };
    world.sync_metrics();
    let snap = registry.snapshot();
    eprintln!("result: {result} ({} metrics)", snap.len());
    let text = if args.json {
        let mut s = export::json(&snap);
        s.push('\n');
        s
    } else {
        export::prometheus(&snap)
    };
    match &args.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

/// Built-in kernel for `storm --smoke`: two switched functions and a
/// worker loop whose return value is its own iteration count.
const SMOKE_SRC: &str = r#"
    multiverse bool fast_path;
    multiverse bool logging;
    i64 sink;

    multiverse i64 step_fast(void) {
        if (fast_path) { return 3; }
        return 5;
    }

    multiverse i64 step_log(void) {
        if (logging) { return 7; }
        return 11;
    }

    i64 worker(i64 iters) {
        i64 i = 0;
        while (i < iters) {
            sink = step_fast() + step_log();
            i = i + 1;
        }
        return i;
    }

    i64 main(void) { return worker(8); }
"#;

/// Iterations given to each smoke worker.
const SMOKE_ITERS: u64 = 2_000;

/// Renders an `MvdOutcome` for the serve/storm report lines.
fn outcome_str(o: &mvrt::MvdOutcome) -> String {
    match o {
        mvrt::MvdOutcome::Committed(q) => format!("committed ({} rounds)", q.rounds),
        mvrt::MvdOutcome::Failed(e) => format!("failed: {e}"),
        mvrt::MvdOutcome::Quarantined => "quarantined (fast-fail)".into(),
        mvrt::MvdOutcome::Shed => "shed (backpressure)".into(),
        mvrt::MvdOutcome::Expired => "expired (deadline)".into(),
        mvrt::MvdOutcome::Rejected => "rejected (queue full)".into(),
    }
}

/// Renders an `MvdOp` with the switch's symbol name when available.
fn op_str(op: &mvrt::MvdOp, exe: &multiverse::mvobj::Executable) -> String {
    match op {
        mvrt::MvdOp::Flip { switch, value } => {
            let name = exe
                .symbolize(*switch)
                .filter(|(_, off)| *off == 0)
                .map(|(n, _)| n.to_string())
                .unwrap_or_else(|| format!("{switch:#x}"));
            format!("flip {name}={value}")
        }
        mvrt::MvdOp::CommitAll => "commit-all".into(),
        mvrt::MvdOp::RevertAll => "revert-all".into(),
    }
}

/// Prints every pending completion of `daemon`.
fn print_completions(daemon: &mut mvrt::CommitDaemon, exe: &multiverse::mvobj::Executable) {
    for c in daemon.take_completions() {
        println!(
            "req {:>3} {:<24} -> {}",
            c.id,
            op_str(&c.op, exe),
            outcome_str(&c.outcome)
        );
    }
}

fn print_daemon_stats(daemon: &mvrt::CommitDaemon, exe: &multiverse::mvobj::Executable) {
    let s = daemon.stats();
    println!(
        "daemon: {} submitted, {} admitted, {} coalesced, {} committed, {} failed",
        s.submitted, s.admitted, s.coalesced, s.committed, s.failed
    );
    println!(
        "        {} shed, {} expired, {} rejected, {} fast-failed, {} attempts",
        s.shed, s.expired, s.rejected, s.fast_failed, s.attempts
    );
    println!(
        "        {} quarantined, {} degraded, {} healed, epoch {}, pending {}{}",
        s.quarantined,
        s.degraded,
        s.healed,
        daemon.epoch(),
        daemon.pending(),
        if daemon.degraded() { " [degraded]" } else { "" }
    );
    for q in daemon.quarantined() {
        println!(
            "quarantine: {:<24} {} failures since epoch {}: {}",
            op_str(&q.op, exe),
            q.failures,
            q.since_epoch,
            q.error
        );
    }
}

/// `mvcc serve`: an interactive (stdin-driven) mvd control plane over a
/// running SMP world.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use std::io::BufRead;
    let p = build(args)?;
    let smp = if args.smp == 0 { 2 } else { args.smp };
    let mut w = boot_smp_workers(args, &p, smp)?;
    if w.rt.is_none() {
        return Err("no multiverse descriptors in this build — nothing to serve".into());
    }
    let mut daemon = mvrt::CommitDaemon::new(mvrt::MvdConfig {
        strategy: args.strategy,
        ..mvrt::MvdConfig::default()
    });
    let registry = multiverse::mvmetrics::Registry::new();
    w.enable_metrics(&registry);
    daemon.enable_metrics(&registry);
    let exe = p.exe();
    println!(
        "serving {} vCPUs, strategy {}; commands: flip VAR V | prio VAR V | commit | revert | pump [N] | stats | metrics [json] | release VAR | quit",
        smp, args.strategy
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let words: Vec<&str> = line.split_whitespace().collect();
        let res: Result<(), String> = match words.as_slice() {
            [] => Ok(()),
            ["quit"] | ["exit"] => break,
            [lane @ ("flip" | "prio"), var, v] => {
                let value: i64 = v.parse().map_err(|_| format!("bad value `{v}`"))?;
                let lane = if *lane == "prio" {
                    mvrt::Lane::Priority
                } else {
                    mvrt::Lane::Normal
                };
                w.submit_flip(&mut daemon, var, value, lane)
                    .map(|id| println!("queued req {id} ({} pending)", daemon.pending()))
                    .map_err(|e| e.to_string())
            }
            ["commit"] => w
                .submit_op(&mut daemon, mvrt::MvdOp::CommitAll, mvrt::Lane::Normal)
                .map(|id| println!("queued req {id} (commit-all)"))
                .map_err(|e| e.to_string()),
            ["revert"] => w
                .submit_op(&mut daemon, mvrt::MvdOp::RevertAll, mvrt::Lane::Normal)
                .map(|id| println!("queued req {id} (revert-all)"))
                .map_err(|e| e.to_string()),
            ["pump", rest @ ..] => {
                let rounds: u64 = match rest {
                    [] => 4,
                    [n] => n.parse().map_err(|_| format!("bad round count `{n}`"))?,
                    _ => return Err("pump takes at most one argument".into()),
                };
                for _ in 0..rounds {
                    if w.smp.any_live() {
                        w.smp.step_round();
                    }
                }
                let n = w.drain_daemon(&mut daemon).map_err(|e| e.to_string())?;
                println!("pumped {rounds} rounds, processed {n} entries");
                Ok(())
            }
            ["stats"] => {
                print_daemon_stats(&daemon, exe);
                Ok(())
            }
            ["metrics", rest @ ..] if matches!(rest, [] | ["json"]) => {
                w.sync_metrics();
                let snap = registry.snapshot();
                if rest.is_empty() {
                    print!("{}", multiverse::mvmetrics::export::prometheus(&snap));
                } else {
                    println!("{}", multiverse::mvmetrics::export::json(&snap));
                }
                Ok(())
            }
            ["release", var] => {
                let addr = w.sym(var).map_err(|e| e.to_string())?;
                match daemon.release(mvrt::MvdOp::Flip {
                    switch: addr,
                    value: 0,
                }) {
                    Some(q) => {
                        println!("released {} ({} failures)", op_str(&q.op, exe), q.failures)
                    }
                    None => println!("{var} is not quarantined"),
                }
                Ok(())
            }
            _ => Err(format!("unknown command `{line}`")),
        };
        if let Err(e) = res {
            println!("error: {e}");
        }
        print_completions(&mut daemon, exe);
    }
    print_daemon_stats(&daemon, exe);
    Ok(())
}

/// `mvcc storm`: a randomized flip storm for every switch in the image,
/// driven through the mvd daemon, with a throughput/latency report.
fn cmd_storm(args: &Args) -> Result<(), String> {
    let p = if args.smoke && args.files.is_empty() {
        Program::build(&[("smoke.c", SMOKE_SRC)]).map_err(|e| e.to_string())?
    } else {
        build(args)?
    };
    let smp = if args.smp == 0 { 4 } else { args.smp };
    let mut w = p.boot_smp(smp);
    w.smp.set_seed(args.seed);
    if args.smoke && args.files.is_empty() {
        w.spawn_all("worker", &[SMOKE_ITERS])
            .map_err(|e| e.to_string())?;
    } else {
        match &args.call {
            Some(f) => w.spawn_all(f, &[]).map_err(|e| e.to_string())?,
            None => {
                let entry = p.exe().entry;
                for i in 0..smp {
                    w.smp.spawn(i, entry, &[]).map_err(|e| e.to_string())?;
                }
            }
        }
    }
    let switches = {
        let Some(rt) = w.rt.as_mut() else {
            return Err("no multiverse descriptors in this build — nothing to storm".into());
        };
        rt.enable_tracing(4096);
        rt.switch_addrs()
    };
    if switches.is_empty() {
        return Err("no integer configuration switches to flip".into());
    }

    let mut daemon = mvrt::CommitDaemon::new(mvrt::MvdConfig {
        capacity: (2 * args.burst as usize).max(8),
        strategy: args.strategy,
        ..mvrt::MvdConfig::default()
    });
    let registry = multiverse::mvmetrics::Registry::new();
    w.enable_metrics(&registry);
    daemon.enable_metrics(&registry);
    daemon.enable_history(w.switch_history());
    w.smp.machine.enable_profile(p.exe());
    // Deterministic xorshift64 request stream over the seed.
    let mut x = args.seed | 1;
    let mut stream = Vec::with_capacity(args.requests as usize);
    for _ in 0..args.requests {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        stream.push((
            switches[((x >> 8) as usize) % switches.len()],
            ((x >> 32) & 1) as i64,
        ));
    }

    let mut latencies: Vec<u64> = Vec::new();
    for chunk in stream.chunks(args.burst.max(1) as usize) {
        for &(switch, value) in chunk {
            let rt = w.rt.as_mut().expect("runtime present");
            daemon.submit(rt, mvrt::MvdOp::Flip { switch, value }, mvrt::Lane::Normal);
        }
        for _ in 0..4 {
            if w.smp.any_live() {
                w.smp.step_round();
            }
        }
        loop {
            let before = daemon.stats().committed;
            let t0 = w.smp.max_cycles();
            let rt = w.rt.as_mut().expect("runtime present");
            if !daemon.step(rt, &mut w.smp) {
                break;
            }
            if daemon.stats().committed > before {
                latencies.push(w.smp.max_cycles() - t0);
            }
        }
    }
    daemon.take_completions();
    let rets = w.run(10_000_000).map_err(|e| e.to_string())?;

    let exe = p.exe();
    let s = daemon.stats();
    println!(
        "storm[{}]: {} requests over {} switches -> {} commits ({:.1}x coalesced), {} failed",
        args.strategy,
        args.requests,
        switches.len(),
        s.committed,
        args.requests as f64 / s.committed.max(1) as f64,
        s.failed
    );
    latencies.sort_unstable();
    let pct = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let i = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[i]
    };
    println!(
        "latency: p50 {} cycles, p95 {} cycles ({} samples)",
        pct(0.50),
        pct(0.95),
        latencies.len()
    );
    print_daemon_stats(&daemon, exe);
    let rt = w.rt.as_mut().expect("runtime present");
    let dropped = rt.trace_dropped();
    println!(
        "trace: {} events kept, {dropped} dropped by the ring",
        rt.take_trace().len()
    );
    w.sync_metrics();
    let history = daemon.take_history().expect("history enabled");
    let prof = w.smp.machine.take_profile().expect("profiler installed");
    let residency = multiverse::telemetry::residency_rows(&prof);
    let total_cycles = multiverse::telemetry::total_attributed_cycles(&prof);
    println!(
        "history: {} flips, {} residency rows over {total_cycles} profiled cycles",
        history.flip_count(),
        residency.len()
    );
    if let Some(path) = &args.history {
        let doc = history.to_json(&residency, total_cycles);
        std::fs::write(path, &doc).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
    }
    if args.smoke && args.files.is_empty() {
        if daemon.pending() != 0 {
            return Err(format!(
                "smoke: queue failed to drain ({} pending)",
                daemon.pending()
            ));
        }
        if !rets.iter().all(|&r| r == SMOKE_ITERS) {
            return Err(format!("smoke: a worker lost iterations: {rets:?}"));
        }
        if s.committed == 0 {
            return Err("smoke: no commit ever landed".into());
        }
        // Reconcile the registry against the daemon's own counters:
        // both are fed from MvdStats with store_max at every
        // submit/step, so any disagreement is a sync bug.
        let snap = registry.snapshot();
        let counter = |name: &str| -> u64 {
            snap.iter()
                .find(|smp| smp.name == name)
                .and_then(|smp| match smp.value {
                    multiverse::mvmetrics::SampleValue::Counter(v) => Some(v),
                    _ => None,
                })
                .unwrap_or(0)
        };
        let pairs = [
            ("mv_mvd_submitted_total", s.submitted),
            ("mv_mvd_admitted_total", s.admitted),
            ("mv_mvd_coalesced_total", s.coalesced),
            ("mv_mvd_shed_total", s.shed),
            ("mv_mvd_expired_total", s.expired),
            ("mv_mvd_rejected_total", s.rejected),
            ("mv_mvd_fast_failed_total", s.fast_failed),
            ("mv_mvd_committed_total", s.committed),
            ("mv_mvd_failed_total", s.failed),
            ("mv_mvd_quarantined_total", s.quarantined),
            ("mv_mvd_degraded_total", s.degraded),
            ("mv_mvd_healed_total", s.healed),
            ("mv_mvd_attempts_total", s.attempts),
        ];
        for (name, want) in pairs {
            let got = counter(name);
            if got != want {
                return Err(format!("smoke: {name} = {got}, daemon says {want}"));
            }
        }
        if history.flip_count() != s.committed {
            return Err(format!(
                "smoke: {} flips recorded vs {} commits",
                history.flip_count(),
                s.committed
            ));
        }
        let row_sum: u64 = residency.iter().map(|r| r.cycles).sum();
        if row_sum != total_cycles {
            return Err(format!(
                "smoke: residency rows sum to {row_sum}, profiler attributed {total_cycles}"
            ));
        }
        println!(
            "smoke: ok ({} workers exact, {} mvd counters reconciled)",
            rets.len(),
            pairs.len()
        );
    }
    Ok(())
}

/// The built-in `vexec --smoke` kernel: three switches (3 × 2 × 2 = 12
/// leaves), config-dependent branching in a callee so the pass both
/// splits and re-joins, and per-configuration output bytes.
const VEXEC_SMOKE_SRC: &str = r#"
    multiverse(0, 1, 2) i32 mode;
    multiverse bool loud;
    multiverse bool deep;
    multiverse i64 step(i64 x) {
        if (mode == 1) { return x + 10; }
        if (mode == 2) { return x * 3; }
        return x;
    }
    multiverse i64 kernel(i64 x) {
        i64 acc = 0;
        i64 i = 0;
        while (i < 8) { acc = acc + step(x + i); i = i + 1; }
        if (deep) { acc = acc + step(acc); }
        if (loud) { __out(acc); }
        return acc;
    }
    i64 main(void) { return kernel(7); }
"#;

fn cmd_vexec(args: &Args) -> Result<(), String> {
    use multiverse::{enumerate_check, oracle_check};
    let p = if args.smoke {
        Program::build(&[("smoke.c", VEXEC_SMOKE_SRC)]).map_err(|e| e.to_string())?
    } else {
        build(args)?
    };
    let mut world = p.boot();
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
    }
    let space = world.config_space().map_err(|e| e.to_string())?;
    println!(
        "config space: {} switches, {} leaf configurations",
        space.switches().len(),
        space.leaf_count()
    );
    for s in space.switches() {
        println!("  {} @{:#x}: {:?}", s.name, s.addr, s.values);
    }
    let func = args.call.clone().unwrap_or_else(|| {
        if args.smoke {
            "kernel".into()
        } else {
            "main".into()
        }
    });
    let report = world
        .vexec_in(&space, &func, &[])
        .map_err(|e| e.to_string())?;
    let shown = report.leaves.len().min(24);
    for leaf in &report.leaves[..shown] {
        println!(
            "  [{:>4}] {:40} -> {} ({} out bytes)",
            leaf.leaf,
            space.label(leaf.leaf),
            leaf.exit as i64,
            leaf.out.len()
        );
    }
    if shown < report.leaves.len() {
        println!("  … {} more leaves", report.leaves.len() - shown);
    }
    let st = &report.stats;
    println!(
        "vexec: {} shared steps for {} enumeration-equivalent insns \
         (sharing ratio {:.1}), {} splits, {} joins, {} live contexts peak",
        st.steps,
        st.enum_equiv_insns,
        st.shared_prefix_ratio(),
        st.splits,
        st.joins,
        st.max_live
    );
    // The replay cross-checks work off a leaf list; `--configs sampled`
    // thins it to a deterministic subset (first, last, every k-th).
    let mut checked = report.clone();
    if args.configs == "sampled" && checked.leaves.len() > 8 {
        let k = checked.leaves.len().div_ceil(8);
        let last = checked.leaves.len() - 1;
        checked.leaves.retain(|l| l.leaf % k == 0 || l.leaf == last);
    }
    let chk =
        enumerate_check(&p, &space, &func, &[], &checked).map_err(|e| format!("FAILED: {e}"))?;
    println!(
        "enumerate-and-rerun check: {} of {} leaves replayed, {} insns \
         (vexec speedup {:.1}x over the replayed subset)",
        chk.leaves_checked,
        report.leaves.len(),
        chk.insns,
        chk.insns as f64 / st.steps.max(1) as f64 * report.leaves.len() as f64
            / chk.leaves_checked.max(1) as f64
    );
    if args.oracle {
        let och =
            oracle_check(&p, &space, &func, &[], &checked).map_err(|e| format!("FAILED: {e}"))?;
        println!(
            "oracle check: {} leaves replayed through set + commit + call, all equal",
            och.leaves_checked
        );
    }
    Ok(())
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    if args.files.len() != 1 {
        return Err("compile takes exactly one source file".into());
    }
    let f = &args.files[0];
    let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
    let (obj, warnings) =
        multiverse::mvc::compile(&src, f, &args.opts).map_err(|e| e.to_string())?;
    for w in &warnings {
        eprintln!("{w}");
    }
    let out = args
        .output
        .clone()
        .unwrap_or_else(|| format!("{}.mvo", f.trim_end_matches(".c")));
    let bytes = mvobj::write_object(&obj);
    std::fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{out}: {} bytes ({} sections, {} symbols, {} relocs)",
        bytes.len(),
        obj.sections.len(),
        obj.symbols.len(),
        obj.relocs.len()
    );
    Ok(())
}

fn cmd_link(args: &Args) -> Result<(), String> {
    let mut objects = Vec::new();
    for f in &args.files {
        let bytes = std::fs::read(f).map_err(|e| format!("{f}: {e}"))?;
        objects.push(mvobj::read_object(&bytes).map_err(|e| format!("{f}: {e}"))?);
    }
    let exe = mvobj::link(&objects, &mvobj::Layout::default()).map_err(|e| e.to_string())?;
    println!(
        "linked {} objects: image {} bytes, entry {:#x}",
        objects.len(),
        exe.image_size(),
        exe.entry
    );
    if args.run {
        let mut m = multiverse::mvvm::Machine::boot(&exe);
        let result = m.call(exe.entry, &[]).map_err(|e| e.to_string())?;
        println!("result: {result} ({} cycles)", m.cycles());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mvcc: {e}");
            eprintln!(
                "usage: mvcc build|dump|disasm|run|vexec|verify|trace|stats|metrics|serve|storm <file.c>… [flags]"
            );
            return ExitCode::FAILURE;
        }
    };
    let r = match args.cmd.as_str() {
        "build" => cmd_build(&args),
        "compile" => cmd_compile(&args),
        "link" => cmd_link(&args),
        "dump" => cmd_dump(&args),
        "disasm" => cmd_disasm(&args),
        "run" => cmd_run(&args),
        "vexec" => cmd_vexec(&args),
        "verify" => cmd_verify(&args),
        "trace" => cmd_trace(&args),
        "stats" => cmd_stats(&args),
        "metrics" => cmd_metrics(&args),
        "serve" => cmd_serve(&args),
        "storm" => cmd_storm(&args),
        other => Err(format!("unknown command `{other}`")),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mvcc: {e}");
            ExitCode::FAILURE
        }
    }
}
