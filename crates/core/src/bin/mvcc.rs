//! `mvcc` — the multiverse compiler driver.
//!
//! ```text
//! mvcc build  <file.c>…             compile + link, print image summary
//! mvcc compile <file.c> -o out.mvo  separate compilation: write one
//!                                   relocatable MVO object
//! mvcc link   <file.mvo>… [--run]   link MVO objects (and optionally run
//!                                   main)
//! mvcc dump   <file.c>…             list switches, functions, variants,
//!                                   guards and call sites
//! mvcc disasm <file.c>… [--fn NAME] disassemble the text segment (or one
//!                                   function)
//! mvcc run    <file.c>… [--call F] [--set VAR=V]… [--commit]
//!                                   execute main (or F) on the machine
//! mvcc verify <file.c>… [--set VAR=V]… [--commit]
//!                                   dry-run the commit validate phase and
//!                                   print a per-function / per-site health
//!                                   report (nothing is patched unless
//!                                   --commit is given first)
//!
//! common flags:
//!   --dynamic            build without multiverse (binding B)
//!   --static VAR=V       fix a switch at compile time (binding A)
//!   --variant-limit N    override the variant-explosion limit
//! ```

use multiverse::mvc::Options;
use multiverse::{mvasm, mvobj, mvrt, Program};
use std::process::ExitCode;

struct Args {
    cmd: String,
    files: Vec<String>,
    opts: Options,
    call: Option<String>,
    sets: Vec<(String, i64)>,
    commit: bool,
    func: Option<String>,
    output: Option<String>,
    run: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let cmd = it
        .next()
        .ok_or("missing command (build|compile|link|dump|disasm|run|verify)")?;
    let mut args = Args {
        cmd,
        files: Vec::new(),
        opts: Options::default(),
        call: None,
        sets: Vec::new(),
        commit: false,
        func: None,
        output: None,
        run: false,
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dynamic" => args.opts = Options::dynamic(),
            "--static" => {
                let kv = it.next().ok_or("--static needs VAR=V")?;
                let (k, v) = kv.split_once('=').ok_or("--static needs VAR=V")?;
                args.opts.multiverse = false;
                args.opts
                    .static_config
                    .insert(k.to_string(), v.parse().map_err(|_| "bad value")?);
            }
            "--variant-limit" => {
                args.opts.variant_limit = it
                    .next()
                    .ok_or("--variant-limit needs N")?
                    .parse()
                    .map_err(|_| "bad limit")?;
            }
            "--call" => args.call = Some(it.next().ok_or("--call needs a name")?),
            "--set" => {
                let kv = it.next().ok_or("--set needs VAR=V")?;
                let (k, v) = kv.split_once('=').ok_or("--set needs VAR=V")?;
                args.sets
                    .push((k.to_string(), v.parse().map_err(|_| "bad value")?));
            }
            "--commit" => args.commit = true,
            "--fn" => args.func = Some(it.next().ok_or("--fn needs a name")?),
            "-o" => args.output = Some(it.next().ok_or("-o needs a path")?),
            "--run" => args.run = true,
            f if !f.starts_with('-') => args.files.push(f.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(args)
}

fn build(args: &Args) -> Result<Program, String> {
    let mut units = Vec::new();
    for f in &args.files {
        let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        units.push((f.clone(), src));
    }
    let refs: Vec<(&str, &str)> = units
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let p = Program::build_with(&refs, &args.opts).map_err(|e| e.to_string())?;
    for w in p.warnings() {
        eprintln!("{w}");
    }
    Ok(p)
}

fn cmd_build(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let exe = p.exe();
    println!("image: {} bytes, entry {:#x}", p.image_size(), exe.entry);
    for sec in [
        mvobj::SEC_TEXT,
        mvobj::SEC_RODATA,
        mvobj::SEC_DATA,
        mvobj::SEC_BSS,
        mvobj::SEC_MV_VARIABLES,
        mvobj::SEC_MV_FUNCTIONS,
        mvobj::SEC_MV_CALLSITES,
    ] {
        let (addr, size) = exe.section(sec);
        if size > 0 {
            println!("  {sec:22} {addr:#10x}  {size:>8} B");
        }
    }
    Ok(())
}

fn cmd_dump(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let world = p.boot();
    let Some(rt) = &world.rt else {
        println!("(no multiverse descriptors in this build)");
        return Ok(());
    };
    println!(
        "{} switches, {} functions, {} call sites",
        rt.num_variables(),
        rt.num_functions(),
        rt.num_callsites()
    );
    // Reverse symbol table for pretty names.
    let exe = p.exe();
    let sym_name = |addr: u64| -> String {
        exe.symbolize(addr)
            .filter(|(_, off)| *off == 0)
            .map(|(n, _)| n.to_string())
            .unwrap_or_else(|| format!("{addr:#x}"))
    };
    for (name, &addr) in &exe.symbols {
        if let Some(variants) = rt.variants_of(addr) {
            if variants.is_empty() {
                continue;
            }
            println!("fn {name} @ {addr:#x}");
            for v in variants {
                println!("  variant {} @ {v:#x}", sym_name(v));
            }
            println!("  call sites: {}", rt.callsites_of(addr));
        }
    }
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let world = p.boot();
    let exe = p.exe();
    if let Some(f) = &args.func {
        let addr = exe.symbol(f).ok_or_else(|| format!("no symbol `{f}`"))?;
        // Disassemble until the next symbol or 256 bytes.
        let end = exe
            .symbols
            .values()
            .filter(|&&a| a > addr)
            .min()
            .copied()
            .unwrap_or(addr + 256);
        let bytes = world
            .machine
            .mem
            .read_vec(addr, (end - addr) as usize)
            .map_err(|e| e.to_string())?;
        print!("{}", mvasm::disasm(&bytes, addr));
    } else {
        let (taddr, tsize) = exe.section(mvobj::SEC_TEXT);
        let bytes = world
            .machine
            .mem
            .read_vec(taddr, tsize as usize)
            .map_err(|e| e.to_string())?;
        print!("{}", mvasm::disasm(&bytes, taddr));
    }
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let mut world = p.boot();
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
        println!("set {k} = {v}");
    }
    if args.commit {
        let report = world.commit().map_err(|e| e.to_string())?;
        println!(
            "commit: {} variants bound, {} generic fallbacks, {} sites",
            report.variants_committed, report.generic_fallbacks, report.sites_touched
        );
    }
    let result = match &args.call {
        Some(f) => world.call(f, &[]).map_err(|e| e.to_string())?,
        None => {
            let entry = p.exe().entry;
            world.machine.call(entry, &[]).map_err(|e| e.to_string())?
        }
    };
    let out = world.machine.take_output();
    if !out.is_empty() {
        println!("--- output ({} bytes) ---", out.len());
        println!("{}", String::from_utf8_lossy(&out));
    }
    println!("result: {result} ({} cycles)", world.cycles());
    if let Some(rt) = &world.rt {
        let s = rt.stats;
        if s.sites_patched > 0 {
            println!(
                "patcher: {} sites patched, {} inlined, {} bytes written",
                s.sites_patched, s.sites_inlined, s.bytes_written
            );
        }
    }
    let _ = mvrt::PatchStrategy::CallSites; // (re-exported for scripting)
    Ok(())
}

fn cmd_verify(args: &Args) -> Result<(), String> {
    let p = build(args)?;
    let mut world = p.boot();
    for (k, v) in &args.sets {
        world.set(k, *v).map_err(|e| e.to_string())?;
        println!("set {k} = {v}");
    }
    if args.commit {
        let report = world.commit().map_err(|e| e.to_string())?;
        println!(
            "commit: {} variants bound, {} generic fallbacks, {} sites",
            report.variants_committed, report.generic_fallbacks, report.sites_touched
        );
    }
    let Some(rt) = &world.rt else {
        println!("(no multiverse descriptors in this build — nothing to verify)");
        return Ok(());
    };
    let exe = p.exe();
    let sym_name = |addr: u64| -> String {
        exe.symbolize(addr)
            .filter(|(_, off)| *off == 0)
            .map(|(n, _)| n.to_string())
            .unwrap_or_else(|| format!("{addr:#x}"))
    };
    let report = rt.validate(&world.machine);
    println!(
        "verify: {} functions, {} call sites",
        report.functions.len(),
        report.sites.len()
    );
    for f in &report.functions {
        let binding = match f.binding {
            mvrt::FnBinding::Generic => "generic".to_string(),
            mvrt::FnBinding::Variant(v) => format!("variant {}", sym_name(v)),
        };
        let selected = match f.selected {
            Some(v) => format!("selects {}", sym_name(v)),
            None => "generic fallback".to_string(),
        };
        match &f.issue {
            Some(issue) => println!(
                "  fn {:20} bound: {binding:24} {selected}  !! {issue}",
                sym_name(f.generic)
            ),
            None => println!(
                "  fn {:20} bound: {binding:24} {selected}  ok",
                sym_name(f.generic)
            ),
        }
    }
    for s in &report.sites {
        let state = if s.patched { "patched" } else { "original" };
        match &s.issue {
            Some(issue) => println!(
                "  site {:#10x} -> {:20} {state:9} !! {issue}",
                s.site,
                sym_name(s.callee)
            ),
            None => println!(
                "  site {:#10x} -> {:20} {state:9} ok",
                s.site,
                sym_name(s.callee)
            ),
        }
    }
    if report.healthy() {
        println!("image healthy: a full commit would pass validation");
        Ok(())
    } else {
        Err(format!("{} issue(s) found", report.issues()))
    }
}

fn cmd_compile(args: &Args) -> Result<(), String> {
    if args.files.len() != 1 {
        return Err("compile takes exactly one source file".into());
    }
    let f = &args.files[0];
    let src = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
    let (obj, warnings) =
        multiverse::mvc::compile(&src, f, &args.opts).map_err(|e| e.to_string())?;
    for w in &warnings {
        eprintln!("{w}");
    }
    let out = args
        .output
        .clone()
        .unwrap_or_else(|| format!("{}.mvo", f.trim_end_matches(".c")));
    let bytes = mvobj::write_object(&obj);
    std::fs::write(&out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{out}: {} bytes ({} sections, {} symbols, {} relocs)",
        bytes.len(),
        obj.sections.len(),
        obj.symbols.len(),
        obj.relocs.len()
    );
    Ok(())
}

fn cmd_link(args: &Args) -> Result<(), String> {
    let mut objects = Vec::new();
    for f in &args.files {
        let bytes = std::fs::read(f).map_err(|e| format!("{f}: {e}"))?;
        objects.push(mvobj::read_object(&bytes).map_err(|e| format!("{f}: {e}"))?);
    }
    let exe = mvobj::link(&objects, &mvobj::Layout::default()).map_err(|e| e.to_string())?;
    println!(
        "linked {} objects: image {} bytes, entry {:#x}",
        objects.len(),
        exe.image_size(),
        exe.entry
    );
    if args.run {
        let mut m = multiverse::mvvm::Machine::boot(&exe);
        let result = m.call(exe.entry, &[]).map_err(|e| e.to_string())?;
        println!("result: {result} ({} cycles)", m.cycles());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mvcc: {e}");
            eprintln!("usage: mvcc build|dump|disasm|run|verify <file.c>… [flags]");
            return ExitCode::FAILURE;
        }
    };
    let r = match args.cmd.as_str() {
        "build" => cmd_build(&args),
        "compile" => cmd_compile(&args),
        "link" => cmd_link(&args),
        "dump" => cmd_dump(&args),
        "disasm" => cmd_disasm(&args),
        "run" => cmd_run(&args),
        "verify" => cmd_verify(&args),
        other => Err(format!("unknown command `{other}`")),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mvcc: {e}");
            ExitCode::FAILURE
        }
    }
}
