//! The musl C library — the Fig. 5 case study.
//!
//! musl guards its internal state with a word spinlock (`__lock`) and its
//! stdio `FILE` objects with an owner lock (`__lockfile`); both are taken
//! unconditionally in the pristine library, but musl already maintains
//! `threads_minus_1`, updated on every `pthread_create`/`exit`. The paper
//! marks that counter as a configuration switch, multiverses the lock and
//! unlock functions so the single-threaded variants have *empty bodies*
//! (erased into wide NOPs at every call site), and commits around the
//! second thread's lifetime (§6.2.2, 67 changed lines across 10 files).
//!
//! The mini-musl here implements the three benchmarked entry points over
//! the same locking structure:
//!
//! * `random()` — the LCG behind musl's `random`, lock-protected;
//! * `malloc(n)`/`free(p)` — a size-class free-list allocator over a
//!   static arena, lock-protected (`malloc(0)` is the special case the
//!   paper benchmarks separately);
//! * `fputc(c)` — buffered stdio write under the file lock, flushing
//!   through the machine's `out` port (the paper reports the bandwidth
//!   gain 124 → 264 MiB/s).

use multiverse::mvc::Options;
use multiverse::mvvm::Stats;
use multiverse::{BuildError, Program, World};

/// The mini-musl source.
pub const SRC: &str = r#"
    // musl keeps this up to date on every pthread_create/pthread_exit;
    // the paper turns it into a configuration switch with domain {0, 1}.
    multiverse(0, 1) i32 threads_minus_1;

    // ---- libc-internal locks -------------------------------------------
    i64 libc_lock;
    i64 file_lock;

    multiverse void __lock(void) {
        if (threads_minus_1) {
            while (__xchg(&libc_lock, 1) != 0) { __pause(); }
        }
    }
    multiverse void __unlock(void) {
        if (threads_minus_1) {
            libc_lock = 0;
        }
    }
    multiverse void __lockfile(void) {
        if (threads_minus_1) {
            while (__xchg(&file_lock, 1) != 0) { __pause(); }
        }
    }
    multiverse void __unlockfile(void) {
        if (threads_minus_1) {
            file_lock = 0;
        }
    }

    // ---- random() ------------------------------------------------------
    u64 rand_state = 1;

    i64 random_(void) {
        __lock();
        rand_state = rand_state * 6364136223846793005 + 1442695040888963407;
        i64 r = rand_state >> 33;
        __unlock();
        return r;
    }

    void srandom_(i64 seed) {
        __lock();
        rand_state = seed;
        __unlock();
    }

    // ---- malloc()/free(): size-class free lists over a static arena ----
    // Chunk 0 is reserved so 0 can mean NULL; free-list next pointers
    // live in a side table indexed by chunk number (offset / 16).
    u8 heap[262144];
    u64 heap_brk = 16;
    u64 free_head[8];        // classes of 16, 32, ..., 128 bytes
    u64 free_next[16384];
    u64 alloc_count;

    i64 size_class(i64 n) {
        if (n <= 0) { return 0; }    // malloc(0): smallest class
        return (n - 1) >> 4;
    }

    i64 malloc_(i64 n) {
        __lock();
        alloc_count = alloc_count + 1;
        i64 c = size_class(n);
        i64 p = 0;
        if (c < 8) {
            i64 head = free_head[c];
            if (head != 0) {
                free_head[c] = free_next[head >> 4];
                p = head;
            }
        }
        if (p == 0) {
            i64 sz = (c + 1) * 16;
            if (c >= 8) { sz = n + 16; }
            if (heap_brk + sz > 262144) {
                __unlock();
                return 0;            // out of arena
            }
            p = heap_brk;
            heap_brk = heap_brk + sz;
        }
        __unlock();
        return p;
    }

    void free_(i64 p, i64 n) {
        if (p == 0) { return; }
        __lock();
        i64 c = size_class(n);
        if (c < 8) {
            free_next[p >> 4] = free_head[c];
            free_head[c] = p;
        }
        __unlock();
    }

    // ---- fputc(): buffered stdio under the file lock --------------------
    u8 file_buf[4096];
    i64 file_pos;

    void flush_(void) {
        for (i64 i = 0; i < file_pos; i++) {
            __out(file_buf[i]);
        }
        file_pos = 0;
    }

    i64 fputc_(i64 c) {
        __lockfile();
        file_buf[file_pos] = c;
        file_pos = file_pos + 1;
        if (file_pos == 4096) {
            flush_();
        }
        __unlockfile();
        return c;
    }

    // ---- benchmark drivers (10 M tight-loop invocations in the paper) --
    i64 bench_random(i64 n) {
        i64 acc = 0;
        for (i64 i = 0; i < n; i++) { acc = acc + random_(); }
        return acc;
    }

    i64 bench_malloc(i64 n, i64 size) {
        i64 acc = 0;
        for (i64 i = 0; i < n; i++) {
            i64 p = malloc_(size);
            acc = acc + p;
            free_(p, size);
        }
        return acc;
    }

    i64 bench_fputc(i64 n) {
        for (i64 i = 0; i < n; i++) { fputc_('a'); }
        return file_pos;
    }

    i64 main(void) { return 0; }
"#;

/// Whether the library is built with multiverse (w/) or as the pristine
/// dynamic library (w/o).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MuslBuild {
    /// Unmodified musl: locks test `threads_minus_1` dynamically.
    Without,
    /// Multiversed locks, committed for the current thread count.
    With,
}

impl MuslBuild {
    /// Display label matching Fig. 5.
    pub fn label(self) -> &'static str {
        match self {
            MuslBuild::Without => "w/o Multiverse",
            MuslBuild::With => "w/ Multiverse",
        }
    }
}

/// Thread mode of the process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadMode {
    /// One thread (`threads_minus_1 == 0`): locks are elidable.
    Single,
    /// Two or more threads (`threads_minus_1 == 1`): locks are taken.
    Multi,
}

impl ThreadMode {
    /// Display label matching Fig. 5.
    pub fn label(self) -> &'static str {
        match self {
            ThreadMode::Single => "Single Threaded",
            ThreadMode::Multi => "Multi Threaded",
        }
    }
}

/// Builds and boots mini-musl; for [`MuslBuild::With`] the lock variants
/// are committed for the thread mode (the paper calls
/// `multiverse_commit()` around the second thread's spawn/exit).
pub fn boot(build: MuslBuild, threads: ThreadMode) -> Result<World, BuildError> {
    let opts = match build {
        MuslBuild::Without => Options::dynamic(),
        MuslBuild::With => Options::default(),
    };
    let program = Program::build_with(&[("musl.c", SRC)], &opts)?;
    let mut world = program.boot();
    world.set("threads_minus_1", (threads == ThreadMode::Multi) as i64)?;
    if build == MuslBuild::With {
        world.commit()?;
    }
    Ok(world)
}

/// One benchmarked libc function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LibcFn {
    /// `random()`.
    Random,
    /// `malloc(0)` (+ paired free).
    Malloc0,
    /// `malloc(1)` (+ paired free).
    Malloc1,
    /// `fputc('a')`.
    Fputc,
}

impl LibcFn {
    /// Display label matching Fig. 5.
    pub fn label(self) -> &'static str {
        match self {
            LibcFn::Random => "random()",
            LibcFn::Malloc0 => "malloc(0)",
            LibcFn::Malloc1 => "malloc(1)",
            LibcFn::Fputc => "fputc('a')",
        }
    }

    /// All four, in figure order.
    pub fn all() -> [LibcFn; 4] {
        [
            LibcFn::Random,
            LibcFn::Malloc0,
            LibcFn::Malloc1,
            LibcFn::Fputc,
        ]
    }
}

/// Runs `n` invocations of `func` and returns `(total cycles, stats)`.
pub fn run_bench(world: &mut World, func: LibcFn, n: u64) -> Result<(u64, Stats), BuildError> {
    let (name, args): (&str, Vec<u64>) = match func {
        LibcFn::Random => ("bench_random", vec![n]),
        LibcFn::Malloc0 => ("bench_malloc", vec![n, 0]),
        LibcFn::Malloc1 => ("bench_malloc", vec![n, 1]),
        LibcFn::Fputc => ("bench_fputc", vec![n]),
    };
    let s0 = world.machine.stats;
    let c0 = world.cycles();
    world.call(name, &args)?;
    Ok((world.cycles() - c0, world.machine.stats.since(&s0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_sequence_is_deterministic_lcg() {
        let mut w = boot(MuslBuild::Without, ThreadMode::Single).unwrap();
        w.call("srandom_", &[42]).unwrap();
        let a = w.call("random_", &[]).unwrap();
        let b = w.call("random_", &[]).unwrap();
        // Rust reference.
        let mut st: u64 = 42;
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let ra = st >> 33;
        st = st
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let rb = st >> 33;
        assert_eq!((a, b), (ra, rb));
    }

    #[test]
    fn malloc_returns_distinct_reusable_chunks() {
        let mut w = boot(MuslBuild::With, ThreadMode::Single).unwrap();
        let p1 = w.call("malloc_", &[24]).unwrap();
        let p2 = w.call("malloc_", &[24]).unwrap();
        assert_ne!(p1, 0);
        assert_ne!(p2, 0);
        assert_ne!(p1, p2);
        w.call("free_", &[p2, 24]).unwrap();
        let p3 = w.call("malloc_", &[20]).unwrap();
        assert_eq!(p3, p2, "same size class reuses the freed chunk");
    }

    #[test]
    fn free_list_chains_beyond_one_chunk() {
        let mut w = boot(MuslBuild::Without, ThreadMode::Single).unwrap();
        let ps: Vec<u64> = (0..5).map(|_| w.call("malloc_", &[8]).unwrap()).collect();
        for &p in &ps {
            w.call("free_", &[p, 8]).unwrap();
        }
        // LIFO reuse through the chained free list.
        for &p in ps.iter().rev() {
            assert_eq!(w.call("malloc_", &[8]).unwrap(), p);
        }
    }

    #[test]
    fn malloc_zero_is_valid_and_small() {
        let mut w = boot(MuslBuild::Without, ThreadMode::Single).unwrap();
        let p = w.call("malloc_", &[0]).unwrap();
        assert_ne!(p, 0, "mini-musl returns a unique chunk for malloc(0)");
    }

    #[test]
    fn malloc_exhaustion_returns_null() {
        let mut w = boot(MuslBuild::Without, ThreadMode::Single).unwrap();
        let mut got_null = false;
        for _ in 0..40 {
            if w.call("malloc_", &[8192]).unwrap() == 0 {
                got_null = true;
                break;
            }
        }
        assert!(got_null);
    }

    #[test]
    fn fputc_buffers_and_flushes() {
        let mut w = boot(MuslBuild::With, ThreadMode::Single).unwrap();
        for _ in 0..4095 {
            w.call("fputc_", &[b'a' as u64]).unwrap();
        }
        assert!(w.machine.output().is_empty(), "not flushed yet");
        w.call("fputc_", &[b'b' as u64]).unwrap();
        let out = w.machine.take_output();
        assert_eq!(out.len(), 4096);
        assert_eq!(out[0], b'a');
        assert_eq!(out[4095], b'b');
    }

    #[test]
    fn locks_are_taken_only_in_multi_mode() {
        let mut single = boot(MuslBuild::With, ThreadMode::Single).unwrap();
        let a0 = single.machine.stats.atomics;
        single.call("random_", &[]).unwrap();
        assert_eq!(
            single.machine.stats.atomics, a0,
            "no atomic single-threaded"
        );

        let mut multi = boot(MuslBuild::With, ThreadMode::Multi).unwrap();
        let a0 = multi.machine.stats.atomics;
        multi.call("random_", &[]).unwrap();
        assert!(
            multi.machine.stats.atomics > a0,
            "lock taken multi-threaded"
        );
    }

    #[test]
    fn results_identical_with_and_without_multiverse() {
        // Soundness across the two builds for every benchmarked function.
        for threads in [ThreadMode::Single, ThreadMode::Multi] {
            let mut a = boot(MuslBuild::Without, threads).unwrap();
            let mut b = boot(MuslBuild::With, threads).unwrap();
            for f in LibcFn::all() {
                let (name, args): (&str, Vec<u64>) = match f {
                    LibcFn::Random => ("bench_random", vec![50]),
                    LibcFn::Malloc0 => ("bench_malloc", vec![50, 0]),
                    LibcFn::Malloc1 => ("bench_malloc", vec![50, 1]),
                    LibcFn::Fputc => ("bench_fputc", vec![50]),
                };
                let ra = a.call(name, &args).unwrap();
                let rb = b.call(name, &args).unwrap();
                assert_eq!(ra, rb, "{f:?} {threads:?}");
            }
        }
    }

    #[test]
    fn fig5_single_threaded_speedup_in_paper_range() {
        // Fig. 5: single-threaded improvements between −43 % and −54 %.
        let n = 3000;
        for f in LibcFn::all() {
            let (without, _) = run_bench(
                &mut boot(MuslBuild::Without, ThreadMode::Single).unwrap(),
                f,
                n,
            )
            .unwrap();
            let (with, _) = run_bench(
                &mut boot(MuslBuild::With, ThreadMode::Single).unwrap(),
                f,
                n,
            )
            .unwrap();
            let delta = 1.0 - with as f64 / without as f64;
            assert!(
                (0.08..=0.70).contains(&delta),
                "{f:?}: improvement {:.1}% out of plausible range",
                delta * 100.0
            );
        }
    }

    #[test]
    fn fig5_multi_threaded_is_roughly_unchanged() {
        let n = 3000;
        for f in [LibcFn::Random, LibcFn::Malloc1] {
            let (without, _) = run_bench(
                &mut boot(MuslBuild::Without, ThreadMode::Multi).unwrap(),
                f,
                n,
            )
            .unwrap();
            let (with, _) =
                run_bench(&mut boot(MuslBuild::With, ThreadMode::Multi).unwrap(), f, n).unwrap();
            let delta = (1.0 - with as f64 / without as f64).abs();
            assert!(
                delta < 0.10,
                "{f:?}: multi-threaded delta {:.1}%",
                delta * 100.0
            );
        }
    }

    #[test]
    fn branch_reduction_for_malloc1() {
        // §6.2.2 reports ≈ −40 % executed branches for malloc(1).
        let n = 2000;
        let (_, s_without) = run_bench(
            &mut boot(MuslBuild::Without, ThreadMode::Single).unwrap(),
            LibcFn::Malloc1,
            n,
        )
        .unwrap();
        let (_, s_with) = run_bench(
            &mut boot(MuslBuild::With, ThreadMode::Single).unwrap(),
            LibcFn::Malloc1,
            n,
        )
        .unwrap();
        let delta = 1.0 - s_with.branches as f64 / s_without.branches as f64;
        assert!(
            delta > 0.15,
            "branch reduction {:.1}% (without={} with={})",
            delta * 100.0,
            s_without.branches,
            s_with.branches
        );
    }

    #[test]
    fn empty_lock_bodies_are_inlined_as_nops() {
        let w = boot(MuslBuild::With, ThreadMode::Single).unwrap();
        let rt = w.rt.as_ref().unwrap();
        // All four lock functions committed, with the empty variants
        // inlined at their call sites.
        assert!(rt.stats.sites_inlined >= 4, "{}", rt.stats.sites_inlined);
    }
}
