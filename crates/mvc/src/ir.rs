//! The MVC intermediate representation — a three-address CFG, the stand-in
//! for GIMPLE in the paper's plugin pipeline.
//!
//! Invariants:
//!
//! * Temporaries are **block-local** and single-assignment; values that
//!   cross blocks go through numbered local *slots* (no phi nodes needed).
//! * All temporaries hold 64-bit values; memory accesses carry their width
//!   and sign-extend on load, truncate on store.
//!
//! [`FuncIr::canonical_key`] renders a function in a numbering-independent
//! normal form; two variants whose keys match are *structurally identical
//! after optimization* and are merged by the multiverse pass, exactly like
//! the body merge of Fig. 2.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Temporary id (block-local, single assignment).
pub type TempId = u32;
/// Basic-block id.
pub type BlockId = u32;
/// Local-variable slot id (frame-allocated).
pub type SlotId = u32;

/// An instruction operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A temporary.
    Temp(TempId),
    /// An integer constant.
    Const(i64),
}

/// IR binary operations (comparisons yield 0/1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum IrBin {
    Add,
    Sub,
    Mul,
    Divs,
    Divu,
    Rems,
    Remu,
    And,
    Or,
    Xor,
    Shl,
    Shrs,
    Shru,
    CmpEq,
    CmpNe,
    CmpLts,
    CmpLes,
    CmpGts,
    CmpGes,
    CmpLtu,
    CmpLeu,
    CmpGtu,
    CmpGeu,
}

impl IrBin {
    /// Constant-folds the operation; `None` on division by zero (left to
    /// fault at run time).
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            IrBin::Add => a.wrapping_add(b),
            IrBin::Sub => a.wrapping_sub(b),
            IrBin::Mul => a.wrapping_mul(b),
            IrBin::Divs => {
                if b == 0 {
                    return None;
                }
                a.wrapping_div(b)
            }
            IrBin::Divu => {
                if b == 0 {
                    return None;
                }
                ((a as u64) / (b as u64)) as i64
            }
            IrBin::Rems => {
                if b == 0 {
                    return None;
                }
                a.wrapping_rem(b)
            }
            IrBin::Remu => {
                if b == 0 {
                    return None;
                }
                ((a as u64) % (b as u64)) as i64
            }
            IrBin::And => a & b,
            IrBin::Or => a | b,
            IrBin::Xor => a ^ b,
            IrBin::Shl => a.wrapping_shl(b as u32),
            IrBin::Shrs => a.wrapping_shr(b as u32),
            IrBin::Shru => ((a as u64).wrapping_shr(b as u32)) as i64,
            IrBin::CmpEq => (a == b) as i64,
            IrBin::CmpNe => (a != b) as i64,
            IrBin::CmpLts => (a < b) as i64,
            IrBin::CmpLes => (a <= b) as i64,
            IrBin::CmpGts => (a > b) as i64,
            IrBin::CmpGes => (a >= b) as i64,
            IrBin::CmpLtu => ((a as u64) < (b as u64)) as i64,
            IrBin::CmpLeu => ((a as u64) <= (b as u64)) as i64,
            IrBin::CmpGtu => ((a as u64) > (b as u64)) as i64,
            IrBin::CmpGeu => ((a as u64) >= (b as u64)) as i64,
        })
    }
}

/// IR unary operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum IrUn {
    Neg,
    /// Logical not (0 → 1, non-zero → 0).
    Not,
    BitNot,
}

impl IrUn {
    /// Constant-folds the operation.
    pub fn eval(self, a: i64) -> i64 {
        match self {
            IrUn::Neg => a.wrapping_neg(),
            IrUn::Not => (a == 0) as i64,
            IrUn::BitNot => !a,
        }
    }
}

/// Call targets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Callee {
    /// Direct call to a named function.
    Direct(String),
    /// Indirect call through a `fnptr` global.
    Ptr(String),
}

/// Intrinsics (the machine-level escape hatches of MVC).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Intrinsic {
    /// `__xchg(ptr, val)` — bus-locked 64-bit exchange.
    Xchg,
    /// `__cli()`.
    Cli,
    /// `__sti()`.
    Sti,
    /// `__hypercall(n)`.
    Hypercall,
    /// `__rdtsc()`.
    Rdtsc,
    /// `__out(byte)`.
    Out,
    /// `__pause()`.
    Pause,
    /// `__mfence()`.
    Mfence,
    /// `__halt()`.
    Halt,
    /// `__flush_btb()` is intentionally absent: predictor state is not
    /// architectural; benchmarks flush it from the host side.
    _Reserved,
}

/// One IR instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inst {
    /// `dst ← a op b`.
    Bin {
        /// Operation.
        op: IrBin,
        /// Destination temp.
        dst: TempId,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst ← op a`.
    Un {
        /// Operation.
        op: IrUn,
        /// Destination temp.
        dst: TempId,
        /// Operand.
        a: Operand,
    },
    /// `dst ← global` (the configuration-switch read the multiverse pass
    /// substitutes).
    LoadGlobal {
        /// Destination temp.
        dst: TempId,
        /// Global name.
        global: String,
        /// Access width in bytes.
        width: u8,
        /// Sign-extend.
        signed: bool,
    },
    /// `global ← src`.
    StoreGlobal {
        /// Global name.
        global: String,
        /// Source operand.
        src: Operand,
        /// Access width in bytes.
        width: u8,
    },
    /// `dst ← &symbol` (global or function address).
    AddrOf {
        /// Destination temp.
        dst: TempId,
        /// Symbol name.
        symbol: String,
    },
    /// `dst ← slot`.
    LoadLocal {
        /// Destination temp.
        dst: TempId,
        /// Slot.
        slot: SlotId,
    },
    /// `slot ← src`.
    StoreLocal {
        /// Slot.
        slot: SlotId,
        /// Source operand.
        src: Operand,
    },
    /// `dst ← mem[addr]`.
    LoadMem {
        /// Destination temp.
        dst: TempId,
        /// Address operand.
        addr: Operand,
        /// Access width in bytes.
        width: u8,
        /// Sign-extend.
        signed: bool,
    },
    /// `mem[addr] ← src`.
    StoreMem {
        /// Address operand.
        addr: Operand,
        /// Source operand.
        src: Operand,
        /// Access width in bytes.
        width: u8,
    },
    /// Function call.
    Call {
        /// Result temp (`None` for void).
        dst: Option<TempId>,
        /// Callee.
        callee: Callee,
        /// Arguments.
        args: Vec<Operand>,
    },
    /// Machine intrinsic.
    Intr {
        /// Result temp (for `__xchg`, `__rdtsc`).
        dst: Option<TempId>,
        /// Which intrinsic.
        kind: Intrinsic,
        /// Arguments.
        args: Vec<Operand>,
    },
}

impl Inst {
    /// Destination temp defined by this instruction, if any.
    pub fn dst(&self) -> Option<TempId> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::LoadGlobal { dst, .. }
            | Inst::AddrOf { dst, .. }
            | Inst::LoadLocal { dst, .. }
            | Inst::LoadMem { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } | Inst::Intr { dst, .. } => *dst,
            Inst::StoreGlobal { .. } | Inst::StoreLocal { .. } | Inst::StoreMem { .. } => None,
        }
    }

    /// `true` if removing the instruction (when its result is unused)
    /// changes program behaviour.
    pub fn has_side_effect(&self) -> bool {
        match self {
            Inst::Bin { op, b, .. } => {
                // Division by a non-constant (or zero) divisor can fault.
                matches!(op, IrBin::Divs | IrBin::Divu | IrBin::Rems | IrBin::Remu)
                    && !matches!(b, Operand::Const(c) if *c != 0)
            }
            Inst::Un { .. }
            | Inst::AddrOf { .. }
            | Inst::LoadLocal { .. }
            | Inst::LoadGlobal { .. } => false,
            // Loads from raw memory can fault.
            Inst::LoadMem { .. } => true,
            Inst::StoreGlobal { .. }
            | Inst::StoreLocal { .. }
            | Inst::StoreMem { .. }
            | Inst::Call { .. }
            | Inst::Intr { .. } => true,
        }
    }

    /// Operands read by this instruction.
    pub fn operands(&self) -> Vec<Operand> {
        match self {
            Inst::Bin { a, b, .. } => vec![*a, *b],
            Inst::Un { a, .. } => vec![*a],
            Inst::LoadGlobal { .. } | Inst::AddrOf { .. } | Inst::LoadLocal { .. } => vec![],
            Inst::StoreGlobal { src, .. } | Inst::StoreLocal { src, .. } => vec![*src],
            Inst::LoadMem { addr, .. } => vec![*addr],
            Inst::StoreMem { addr, src, .. } => vec![*addr, *src],
            Inst::Call { args, .. } | Inst::Intr { args, .. } => args.clone(),
        }
    }

    /// Applies `f` to every operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Inst::Bin { a, b, .. } => {
                f(a);
                f(b);
            }
            Inst::Un { a, .. } => f(a),
            Inst::LoadGlobal { .. } | Inst::AddrOf { .. } | Inst::LoadLocal { .. } => {}
            Inst::StoreGlobal { src, .. } | Inst::StoreLocal { src, .. } => f(src),
            Inst::LoadMem { addr, .. } => f(addr),
            Inst::StoreMem { addr, src, .. } => {
                f(addr);
                f(src);
            }
            Inst::Call { args, .. } | Inst::Intr { args, .. } => {
                for a in args {
                    f(a);
                }
            }
        }
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Term {
    /// Unconditional jump.
    Jmp(BlockId),
    /// Conditional branch (non-zero → `t`).
    Br {
        /// Condition operand.
        cond: Operand,
        /// Taken successor.
        t: BlockId,
        /// Fall-through successor.
        f: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
}

impl Term {
    /// Successor block ids.
    pub fn succs(&self) -> Vec<BlockId> {
        match self {
            Term::Jmp(b) => vec![*b],
            Term::Br { t, f, .. } => vec![*t, *f],
            Term::Ret(_) => vec![],
        }
    }
}

/// A basic block.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Block {
    /// Instructions.
    pub insts: Vec<Inst>,
    /// Terminator (`Ret(None)` by default).
    pub term: Term,
}

impl Default for Term {
    fn default() -> Term {
        Term::Ret(None)
    }
}

/// Function-level attributes relevant to later passes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FnAttrs {
    /// Declared `multiverse`.
    pub multiverse: bool,
    /// Uses the PV-Ops calling convention.
    pub pvop_cc: bool,
    /// Partial specialization: only these switches are bound in variants.
    pub bind: Option<Vec<String>>,
}

/// A function in IR form.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncIr {
    /// Function name (variants get mangled names like `f.A=1`).
    pub name: String,
    /// Number of parameters (slots `0..n_params`).
    pub n_params: u32,
    /// Total local slots (params first).
    pub n_slots: u32,
    /// Next fresh temp id.
    pub n_temps: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Returns a value.
    pub has_ret: bool,
    /// Attributes.
    pub attrs: FnAttrs,
}

impl FuncIr {
    /// Creates an empty function with one (entry) block.
    pub fn new(name: &str, n_params: u32, has_ret: bool) -> FuncIr {
        FuncIr {
            name: name.to_string(),
            n_params,
            n_slots: n_params,
            n_temps: 0,
            blocks: vec![Block::default()],
            has_ret,
            attrs: FnAttrs::default(),
        }
    }

    /// Allocates a fresh temp.
    pub fn temp(&mut self) -> TempId {
        let t = self.n_temps;
        self.n_temps += 1;
        t
    }

    /// Allocates a fresh local slot.
    pub fn slot(&mut self) -> SlotId {
        let s = self.n_slots;
        self.n_slots += 1;
        s
    }

    /// Appends a new empty block and returns its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        (self.blocks.len() - 1) as BlockId
    }

    /// The set of multiverse switches read by this function, given a
    /// predicate identifying switch globals.
    pub fn globals_read(&self, is_switch: impl Fn(&str) -> bool) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for b in &self.blocks {
            for i in &b.insts {
                if let Inst::LoadGlobal { global, .. } = i {
                    if is_switch(global) && seen.insert(global.clone()) {
                        out.push(global.clone());
                    }
                }
            }
        }
        out
    }

    /// Renders the function in a canonical, numbering-independent textual
    /// form: blocks in DFS order from the entry, temps renumbered in
    /// first-definition order. Two functions with equal keys compute the
    /// same thing instruction-for-instruction.
    pub fn canonical_key(&self) -> String {
        // DFS block order.
        let mut order = Vec::new();
        let mut seen = HashSet::new();
        let mut stack = vec![0 as BlockId];
        while let Some(b) = stack.pop() {
            if !seen.insert(b) {
                continue;
            }
            order.push(b);
            // Push successors in reverse so the first successor is visited
            // first (stable order).
            for s in self.blocks[b as usize].term.succs().into_iter().rev() {
                stack.push(s);
            }
        }
        let block_rank: HashMap<BlockId, usize> =
            order.iter().enumerate().map(|(i, &b)| (b, i)).collect();

        let mut temp_rank: HashMap<TempId, usize> = HashMap::new();
        let rank = |t: TempId, map: &mut HashMap<TempId, usize>| -> usize {
            let next = map.len();
            *map.entry(t).or_insert(next)
        };
        let fmt_op = |o: Operand, map: &mut HashMap<TempId, usize>| match o {
            Operand::Temp(t) => {
                let next = map.len();
                format!("t{}", *map.entry(t).or_insert(next))
            }
            Operand::Const(c) => format!("{c}"),
        };

        let mut s = String::new();
        let _ = writeln!(s, "fn[{} params, ret={}]", self.n_params, self.has_ret);
        for &b in &order {
            let _ = writeln!(s, "b{}:", block_rank[&b]);
            for inst in &self.blocks[b as usize].insts {
                let line = match inst {
                    Inst::Bin { op, dst, a, b } => {
                        let (a, b) = (fmt_op(*a, &mut temp_rank), fmt_op(*b, &mut temp_rank));
                        format!("t{} = {op:?} {a}, {b}", rank(*dst, &mut temp_rank))
                    }
                    Inst::Un { op, dst, a } => {
                        let a = fmt_op(*a, &mut temp_rank);
                        format!("t{} = {op:?} {a}", rank(*dst, &mut temp_rank))
                    }
                    Inst::LoadGlobal {
                        dst,
                        global,
                        width,
                        signed,
                    } => format!(
                        "t{} = ldg {global} w{width} s{signed}",
                        rank(*dst, &mut temp_rank)
                    ),
                    Inst::StoreGlobal { global, src, width } => {
                        format!("stg {global} w{width}, {}", fmt_op(*src, &mut temp_rank))
                    }
                    Inst::AddrOf { dst, symbol } => {
                        format!("t{} = addr {symbol}", rank(*dst, &mut temp_rank))
                    }
                    Inst::LoadLocal { dst, slot } => {
                        format!("t{} = ldl s{slot}", rank(*dst, &mut temp_rank))
                    }
                    Inst::StoreLocal { slot, src } => {
                        format!("stl s{slot}, {}", fmt_op(*src, &mut temp_rank))
                    }
                    Inst::LoadMem {
                        dst,
                        addr,
                        width,
                        signed,
                    } => {
                        let a = fmt_op(*addr, &mut temp_rank);
                        format!(
                            "t{} = ldm [{a}] w{width} s{signed}",
                            rank(*dst, &mut temp_rank)
                        )
                    }
                    Inst::StoreMem { addr, src, width } => {
                        let a = fmt_op(*addr, &mut temp_rank);
                        let v = fmt_op(*src, &mut temp_rank);
                        format!("stm [{a}] w{width}, {v}")
                    }
                    Inst::Call { dst, callee, args } => {
                        let args: Vec<String> =
                            args.iter().map(|&a| fmt_op(a, &mut temp_rank)).collect();
                        let d = dst.map(|d| format!("t{} = ", rank(d, &mut temp_rank)));
                        format!(
                            "{}call {callee:?}({})",
                            d.unwrap_or_default(),
                            args.join(",")
                        )
                    }
                    Inst::Intr { dst, kind, args } => {
                        let args: Vec<String> =
                            args.iter().map(|&a| fmt_op(a, &mut temp_rank)).collect();
                        let d = dst.map(|d| format!("t{} = ", rank(d, &mut temp_rank)));
                        format!("{}{kind:?}({})", d.unwrap_or_default(), args.join(","))
                    }
                };
                let _ = writeln!(s, "  {line}");
            }
            let term = match &self.blocks[b as usize].term {
                Term::Jmp(t) => format!("jmp b{}", block_rank[t]),
                Term::Br { cond, t, f } => {
                    let c = fmt_op(*cond, &mut temp_rank);
                    format!("br {c} ? b{} : b{}", block_rank[t], block_rank[f])
                }
                Term::Ret(Some(v)) => format!("ret {}", fmt_op(*v, &mut temp_rank)),
                Term::Ret(None) => "ret".to_string(),
            };
            let _ = writeln!(s, "  {term}");
        }
        s
    }

    /// Checks structural invariants: temps defined before use and not
    /// crossing blocks, block references in range. Panics on violation
    /// (compiler bug).
    pub fn validate(&self) {
        for (bi, b) in self.blocks.iter().enumerate() {
            let mut defined: HashSet<TempId> = HashSet::new();
            for inst in &b.insts {
                for op in inst.operands() {
                    if let Operand::Temp(t) = op {
                        assert!(
                            defined.contains(&t),
                            "{}: t{t} used before def in block {bi}",
                            self.name
                        );
                    }
                }
                if let Some(d) = inst.dst() {
                    assert!(
                        defined.insert(d),
                        "{}: t{d} defined twice in block {bi}",
                        self.name
                    );
                }
            }
            if let Term::Br {
                cond: Operand::Temp(t),
                ..
            } = b.term
            {
                assert!(
                    defined.contains(&t),
                    "{}: branch cond t{t} undefined in block {bi}",
                    self.name
                );
            }
            if let Term::Ret(Some(Operand::Temp(t))) = b.term {
                assert!(
                    defined.contains(&t),
                    "{}: ret value t{t} undefined in block {bi}",
                    self.name
                );
            }
            for s in b.term.succs() {
                assert!(
                    (s as usize) < self.blocks.len(),
                    "{}: bad successor b{s}",
                    self.name
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_folds_correctly() {
        assert_eq!(IrBin::Add.eval(2, 3), Some(5));
        assert_eq!(IrBin::Divs.eval(7, 2), Some(3));
        assert_eq!(IrBin::Divs.eval(7, 0), None);
        assert_eq!(IrBin::CmpLtu.eval(-1, 0), Some(0)); // unsigned: max > 0
        assert_eq!(IrBin::CmpLts.eval(-1, 0), Some(1));
        assert_eq!(IrUn::Not.eval(0), 1);
        assert_eq!(IrUn::Not.eval(5), 0);
    }

    #[test]
    fn canonical_key_ignores_numbering() {
        // f: t5 = 1+2; ret t5  vs  t0 = 1+2; ret t0
        let mut a = FuncIr::new("a", 0, true);
        a.n_temps = 10;
        a.blocks[0].insts.push(Inst::Bin {
            op: IrBin::Add,
            dst: 5,
            a: Operand::Const(1),
            b: Operand::Const(2),
        });
        a.blocks[0].term = Term::Ret(Some(Operand::Temp(5)));

        let mut b = FuncIr::new("b", 0, true);
        b.n_temps = 1;
        b.blocks[0].insts.push(Inst::Bin {
            op: IrBin::Add,
            dst: 0,
            a: Operand::Const(1),
            b: Operand::Const(2),
        });
        b.blocks[0].term = Term::Ret(Some(Operand::Temp(0)));

        assert_eq!(a.canonical_key(), b.canonical_key());
    }

    #[test]
    fn canonical_key_distinguishes_semantics() {
        let mk = |c: i64| {
            let mut f = FuncIr::new("f", 0, true);
            f.blocks[0].term = Term::Ret(Some(Operand::Const(c)));
            f
        };
        assert_ne!(mk(1).canonical_key(), mk(2).canonical_key());
    }

    #[test]
    fn validate_catches_cross_block_temp() {
        let mut f = FuncIr::new("f", 0, true);
        let t = f.temp();
        f.blocks[0].insts.push(Inst::Bin {
            op: IrBin::Add,
            dst: t,
            a: Operand::Const(1),
            b: Operand::Const(1),
        });
        let b1 = f.new_block();
        f.blocks[0].term = Term::Jmp(b1);
        f.blocks[b1 as usize].term = Term::Ret(Some(Operand::Temp(t)));
        let r = std::panic::catch_unwind(|| f.validate());
        assert!(r.is_err());
    }

    #[test]
    fn globals_read_deduplicates() {
        let mut f = FuncIr::new("f", 0, false);
        for _ in 0..3 {
            let t = f.temp();
            f.blocks[0].insts.push(Inst::LoadGlobal {
                dst: t,
                global: "A".into(),
                width: 4,
                signed: true,
            });
        }
        let t = f.temp();
        f.blocks[0].insts.push(Inst::LoadGlobal {
            dst: t,
            global: "other".into(),
            width: 4,
            signed: true,
        });
        assert_eq!(f.globals_read(|g| g == "A"), vec!["A".to_string()]);
    }
}
