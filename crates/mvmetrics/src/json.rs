//! Minimal dependency-free JSON writing helpers, shared by the
//! metrics exporters, the switch-history serializer and the `mvcc
//! stats --json` report so every JSON surface escapes and formats
//! numbers the same way.

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders `s` as a quoted JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders an f64 as a JSON number. JSON has no Inf/NaN, so those are
/// rendered as strings (`"+Inf"`, `"-Inf"`, `"NaN"`); integral values
/// drop the fraction.
pub fn number(v: f64) -> String {
    if v.is_nan() {
        "\"NaN\"".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "\"+Inf\"".to_string()
        } else {
            "\"-Inf\"".to_string()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Incremental writer for JSON objects: collects `"key": value` pairs
/// and renders `{...}`. Values are passed pre-rendered, so nesting is
/// just `obj.raw("inner", inner.finish())`.
#[derive(Default)]
pub struct Obj {
    parts: Vec<String>,
}

impl Obj {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pre-rendered JSON value.
    pub fn raw(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        self.parts.push(format!("{}:{}", string(key), value.into()));
        self
    }

    /// Adds a string value (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.raw(key, string(value))
    }

    /// Adds an unsigned integer value.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Adds a signed integer value.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.raw(key, value.to_string())
    }

    /// Adds an f64 value via [`number`].
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.raw(key, number(value))
    }

    /// Adds a boolean value.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the collected pairs as a JSON object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

/// Renders pre-rendered JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.5), "3.5");
        assert_eq!(number(f64::INFINITY), "\"+Inf\"");
        assert_eq!(number(f64::NAN), "\"NaN\"");
    }

    #[test]
    fn obj_builder() {
        let mut o = Obj::new();
        o.str("name", "x").u64("n", 3).bool("ok", true);
        assert_eq!(o.finish(), "{\"name\":\"x\",\"n\":3,\"ok\":true}");
    }

    #[test]
    fn arrays() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
    }
}
