//! Configuration switches: atomic globals read like plain variables.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// A boolean configuration switch.
///
/// Reads use `Relaxed` ordering: a switch is a rarely-changing mode flag,
/// and the commit protocol (not the switch itself) provides any needed
/// synchronization — matching §2's "multiverse deliberately avoids
/// synchronization".
#[derive(Debug)]
pub struct MvBool {
    v: AtomicBool,
}

impl MvBool {
    /// Creates a switch with an initial value (const: usable in statics).
    pub const fn new(initial: bool) -> MvBool {
        MvBool {
            v: AtomicBool::new(initial),
        }
    }

    /// Dynamic read — what the generic variant does on every call.
    #[inline]
    pub fn read(&self) -> bool {
        self.v.load(Ordering::Relaxed)
    }

    /// Writes the switch. Takes effect for committed cells only at the
    /// next commit.
    #[inline]
    pub fn write(&self, value: bool) {
        self.v.store(value, Ordering::Relaxed);
    }
}

/// An integer configuration switch.
#[derive(Debug)]
pub struct MvInt {
    v: AtomicI64,
}

impl MvInt {
    /// Creates a switch with an initial value (const: usable in statics).
    pub const fn new(initial: i64) -> MvInt {
        MvInt {
            v: AtomicI64::new(initial),
        }
    }

    /// Dynamic read.
    #[inline]
    pub fn read(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Writes the switch.
    #[inline]
    pub fn write(&self, value: i64) {
        self.v.store(value, Ordering::Relaxed);
    }

    /// Atomic add-and-fetch, for counters used as switches (musl's
    /// `threads_minus_1` pattern).
    #[inline]
    pub fn fetch_add(&self, delta: i64) -> i64 {
        self.v.fetch_add(delta, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static FLAG: MvBool = MvBool::new(false);
    static COUNT: MvInt = MvInt::new(0);

    #[test]
    fn const_statics_work() {
        assert!(!FLAG.read());
        FLAG.write(true);
        assert!(FLAG.read());
        FLAG.write(false);
    }

    #[test]
    fn int_counter_pattern() {
        let before = COUNT.read();
        COUNT.fetch_add(1);
        COUNT.fetch_add(1);
        COUNT.fetch_add(-1);
        assert_eq!(COUNT.read(), before + 1);
    }
}
