//! Native Rust dynamic variability — the sound in-process analog of the
//! multiverse mechanism.
//!
//! Rust cannot soundly patch its own text segment, so the "commit"
//! operation here re-binds **dispatch cells** instead of call sites: a
//! [`MvFn0`]/[`MvFn1`]/[`MvFn2`] cell holds an index into a static table
//! of monomorphized variants and calls through it with one relaxed atomic
//! load plus an indirect call. This is exactly the *function pointer*
//! alternative the paper analyses in §7.2 — safe, portable, no
//! synchronization needed for the reader — and it doubles as the
//! fnptr-baseline implementation measured in the benchmarks.
//!
//! The intended idiom mirrors the paper's:
//!
//! * configuration switches are [`MvBool`]/[`MvInt`] statics, read
//!   dynamically by the *generic* variant;
//! * specialists are monomorphized with const generics
//!   (`fn hot<const FEATURE: bool>()`), so the switch read disappears
//!   from their bodies at compile time;
//! * a [`Registry`] of selector functions maps current switch values to
//!   variant indices on [`Registry::commit`], and [`Registry::revert`]
//!   re-binds every cell to its generic variant (index 0).
//!
//! # Examples
//!
//! ```
//! use multiverse::native::{MvBool, MvFn0, Registry};
//!
//! static SMP: MvBool = MvBool::new(true);
//!
//! fn lock_generic() -> u32 {
//!     if SMP.read() { 2 } else { 1 } // dynamic test on every call
//! }
//! fn lock_spec<const SMP_V: bool>() -> u32 {
//!     if SMP_V { 2 } else { 1 } // branch-free after monomorphization
//! }
//!
//! static LOCK: MvFn0<u32> =
//!     MvFn0::new(&[lock_generic, lock_spec::<false>, lock_spec::<true>]);
//!
//! let mv = Registry::new();
//! mv.register(|commit| {
//!     if commit {
//!         LOCK.bind(if SMP.read() { 2 } else { 1 });
//!     } else {
//!         LOCK.revert();
//!     }
//! });
//!
//! SMP.write(false);
//! mv.commit();
//! assert_eq!(LOCK.call(), 1);
//!
//! SMP.write(true); // no effect until the next commit (§2 semantics)
//! assert_eq!(LOCK.call(), 1);
//! mv.commit();
//! assert_eq!(LOCK.call(), 2);
//! ```

mod cell;
mod registry;
mod switch;

pub use cell::{MvFn0, MvFn1, MvFn2};
pub use registry::{global, Registry};
pub use switch::{MvBool, MvInt};
