//! mvd control plane — commit-storm throughput: the coalescing daemon
//! vs. the naive one-commit-per-request driver on the same randomized
//! flip stream, for both quiesce protocols.
//!
//! The guest-cycle sweep is deterministic (it also runs as the
//! `commit_storm_quick` CI gate); the criterion group measures the host
//! wall time of driving one full storm through the daemon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use multiverse::mvrt::CommitStrategy;
use mv_workloads::commit_storm;

fn bench(c: &mut Criterion) {
    let rows = mv_bench::commit_storm_data(4, 8000, 96, 48);
    println!("mvd commit storm (96 requests, burst 48, 4 vCPUs):");
    for r in &rows {
        println!(
            "  {:<12} {:>3} commits ({:.1}x coalesced, {:.1}x cycle speedup), \
             p50 {:.0} / p95 {:.0} cycles, exact: {}",
            r.strategy.name(),
            r.commits,
            r.commit_ratio,
            r.speedup,
            r.p50_cycles,
            r.p95_cycles,
            r.workers_exact
        );
        assert!(r.workers_exact, "{}: a worker lost iterations", r.strategy);
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_commit_storm.json");
    std::fs::write(path, mv_bench::commit_storm_json(&rows))
        .expect("write BENCH_commit_storm.json");
    println!("wrote {path}\n");

    let mut g = c.benchmark_group("commit_storm");
    for strategy in [CommitStrategy::StopMachine, CommitStrategy::Breakpoint] {
        for burst in [12u64, 48] {
            g.bench_with_input(
                BenchmarkId::new(strategy.name(), burst),
                &burst,
                |b, &burst| {
                    b.iter(|| {
                        let r = commit_storm::run_storm(4, 4000, 96, burst, strategy, 0x57)
                            .expect("storm");
                        assert!(r.workers_exact);
                        r.commits
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
