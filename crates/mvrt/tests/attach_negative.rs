//! Negative tests of the runtime: malformed descriptor sections and
//! descriptor/text mismatches must be rejected at attach, and injected
//! patching faults ([`mvvm::FaultPlan`]) must leave committed state
//! either fully applied or byte-identically rolled back.

use mvasm::{Assembler, Insn, Reg};
use mvobj::descriptor::{
    emit_callsite, emit_function, emit_variable, CallsiteDescSym, FnDescSym, GuardSym, VarDescSym,
    VariantDescSym, NOT_INLINABLE,
};
use mvobj::{link, Executable, Layout, Object, SectionKind};
use mvrt::{CommitPhase, RetryPolicy, RtError, Runtime};
use mvvm::{CostModel, FaultPlan, Machine, MachineConfig};

fn base_object() -> Object {
    let mut o = Object::new("t");
    let mut a = Assembler::new();
    a.emit(Insn::Halt);
    o.add_code("main", &a.finish().unwrap());
    o
}

fn attach(o: Object) -> Result<Runtime, RtError> {
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut m = Machine::new(CostModel::default(), MachineConfig::default());
    m.load(&exe);
    Runtime::attach(&m, &exe)
}

#[test]
fn truncated_variable_section_is_rejected() {
    let mut o = base_object();
    // 31 bytes: not a multiple of the 32-byte record size.
    o.append(mvobj::SEC_MV_VARIABLES, SectionKind::Rodata, &[0u8; 31]);
    assert!(matches!(attach(o), Err(RtError::Desc(_))));
}

#[test]
fn truncated_callsite_section_is_rejected() {
    let mut o = base_object();
    o.append(mvobj::SEC_MV_CALLSITES, SectionKind::Rodata, &[0u8; 17]);
    assert!(matches!(attach(o), Err(RtError::Desc(_))));
}

#[test]
fn function_section_with_phantom_variants_is_rejected() {
    let mut o = base_object();
    // A 48-byte header claiming 3 variants with no variant records.
    let mut rec = vec![0u8; 48];
    rec[16..20].copy_from_slice(&3u32.to_le_bytes());
    o.append(mvobj::SEC_MV_FUNCTIONS, SectionKind::Rodata, &rec);
    assert!(matches!(attach(o), Err(RtError::Desc(_))));
}

#[test]
fn callsite_descriptor_must_point_at_a_call() {
    // A descriptor whose site address holds a `halt`, not a call.
    let mut o = base_object();
    let mut a = Assembler::new();
    a.ret();
    o.add_code("victim", &a.finish().unwrap());
    emit_callsite(
        &mut o,
        &CallsiteDescSym {
            callee: "victim".into(),
            caller: "main".into(),
            offset: 0, // main+0 is `halt`, not a call
        },
    );
    let err = match attach(o) {
        Err(e) => e,
        Ok(_) => panic!("attach must fail"),
    };
    assert!(matches!(err, RtError::SiteVerifyFailed { .. }), "{err:?}");
}

#[test]
fn callsite_descriptor_with_wrong_callee_is_rejected() {
    // The call at the site targets a different function than the
    // descriptor claims.
    let mut o = base_object();
    let mut a = Assembler::new();
    a.ret();
    o.add_code("real_target", &a.finish().unwrap());
    let mut a = Assembler::new();
    a.ret();
    o.add_code("claimed_target", &a.finish().unwrap());
    let mut a = Assembler::new();
    let off = a.len() as u32;
    a.call_sym("real_target", false);
    a.ret();
    o.add_code("caller_fn", &a.finish().unwrap());
    emit_callsite(
        &mut o,
        &CallsiteDescSym {
            callee: "claimed_target".into(),
            caller: "caller_fn".into(),
            offset: off,
        },
    );
    let err = match attach(o) {
        Err(e) => e,
        Ok(_) => panic!("attach must fail"),
    };
    assert!(matches!(err, RtError::SiteVerifyFailed { .. }), "{err:?}");
}

#[test]
fn empty_descriptor_sections_attach_cleanly() {
    let rt = attach(base_object()).unwrap();
    assert_eq!(rt.num_variables(), 0);
    assert_eq!(rt.num_functions(), 0);
    assert_eq!(rt.num_callsites(), 0);
}

// --- transactional fault-injection tests ------------------------------

/// A minimal multiversed program: switch `A`, function `mv` with an
/// A=0 / A=1 variant pair, and a recorded call site in `caller`. A full
/// commit performs several text writes (call site + entry jump per
/// function), giving injected faults mid-commit positions to hit.
fn mv_fixture() -> (Machine, Executable, Runtime) {
    let mut o = Object::new("t");
    o.define_bss("A", 4);
    let mut a = Assembler::new();
    a.emit(Insn::Halt);
    o.add_code("main", &a.finish().unwrap());

    let mut a = Assembler::new();
    a.load_sym(Reg::R0, "A", 0, mvasm::Width::W32, true);
    a.ret();
    let g = a.finish().unwrap();
    let g_size = g.bytes.len() as u32;
    o.add_code("mv", &g);
    for (sym, val) in [("mv.A=0", 0i64), ("mv.A=1", 1i64)] {
        let mut a = Assembler::new();
        a.mov_ri(Reg::R0, val);
        a.ret();
        let v = a.finish().unwrap();
        let size = v.bytes.len() as u32;
        o.add_code(sym, &v);
        let _ = size;
    }
    let mut a = Assembler::new();
    let off = a.len() as u32;
    a.call_sym("mv", true);
    a.ret();
    o.add_code("caller", &a.finish().unwrap());
    emit_callsite(
        &mut o,
        &CallsiteDescSym {
            callee: "mv".into(),
            caller: "caller".into(),
            offset: off,
        },
    );
    emit_variable(
        &mut o,
        &VarDescSym {
            symbol: "A".into(),
            width: 4,
            signed: true,
            fn_ptr: false,
            name_sym: None,
        },
    );
    emit_function(
        &mut o,
        &FnDescSym {
            symbol: "mv".into(),
            generic_size: g_size,
            generic_inline_len: NOT_INLINABLE,
            name_sym: None,
            variants: vec![
                VariantDescSym {
                    symbol: "mv.A=0".into(),
                    body_size: 11,
                    inline_len: NOT_INLINABLE,
                    guards: vec![GuardSym {
                        var_symbol: "A".into(),
                        low: 0,
                        high: 0,
                    }],
                },
                VariantDescSym {
                    symbol: "mv.A=1".into(),
                    body_size: 11,
                    inline_len: NOT_INLINABLE,
                    guards: vec![GuardSym {
                        var_symbol: "A".into(),
                        low: 1,
                        high: 1,
                    }],
                },
            ],
        },
    );
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut m = Machine::new(CostModel::default(), MachineConfig::default());
    m.load(&exe);
    let rt = Runtime::attach(&m, &exe).unwrap();
    (m, exe, rt)
}

fn text_snapshot(m: &Machine, exe: &Executable) -> Vec<u8> {
    let (taddr, tsize) = exe.section(mvobj::SEC_TEXT);
    m.mem.read_vec(taddr, tsize as usize).unwrap()
}

#[test]
fn apply_fault_rolls_back_to_exact_bytes() {
    let (mut m, exe, mut rt) = mv_fixture();
    let pristine = text_snapshot(&m, &exe);
    let mv = exe.symbol("mv").unwrap();

    // Fail the 2nd text write of the apply phase (the entry jump, after
    // the call site was already rewritten).
    m.inject_fault(FaultPlan::fail_nth_write(2));
    let err = rt.commit(&mut m).unwrap_err();
    assert_eq!(err.commit_phase(), Some(CommitPhase::Apply));
    assert!(
        matches!(err.root_cause(), RtError::Mem(e) if e.mapped),
        "{err:?}"
    );
    assert!(err.is_transient());

    // Atomicity: the first write was undone, bindings are untouched.
    assert_eq!(text_snapshot(&m, &exe), pristine);
    assert_eq!(rt.binding_of(mv), Some(mvrt::FnBinding::Generic));
    assert_eq!(rt.stats.rollbacks, 1);
    assert!(rt.stats.journal_entries >= 2);

    // The one-shot fault healed: the same commit now succeeds.
    let report = rt.commit(&mut m).unwrap();
    assert_eq!(report.variants_committed, 1);
    assert_ne!(text_snapshot(&m, &exe), pristine);
}

#[test]
fn transient_fault_retries_and_converges() {
    let (mut m, exe, mut rt) = mv_fixture();
    rt.retry = RetryPolicy::retries(3);
    let mv = exe.symbol("mv").unwrap();

    // Fail once, then heal (one-shot): the bounded retry must converge
    // without the caller seeing an error.
    m.inject_fault(FaultPlan::fail_nth_write(1));
    let report = rt.commit(&mut m).unwrap();
    assert_eq!(report.variants_committed, 1);
    assert_eq!(rt.stats.retries, 1);
    assert_eq!(rt.stats.rollbacks, 1);
    assert_eq!(
        rt.binding_of(mv),
        Some(mvrt::FnBinding::Variant(exe.symbol("mv.A=0").unwrap()))
    );
}

#[test]
fn sticky_flush_fault_exhausts_the_retry_budget() {
    // A sticky lost-flush fault defeats every retry, but each attempt's
    // rollback still restores the bytes — the caller gets a clean Apply
    // failure and a pristine image after the budget is spent.
    let (mut m, exe, mut rt) = mv_fixture();
    rt.retry = RetryPolicy::retries(2);
    let pristine = text_snapshot(&m, &exe);

    m.inject_fault(FaultPlan::drop_nth_flush(1).sticky());
    let err = rt.commit(&mut m).unwrap_err();
    assert_eq!(err.commit_phase(), Some(CommitPhase::Apply));
    assert!(
        matches!(err.root_cause(), RtError::IcacheStale { .. }),
        "{err:?}"
    );
    assert_eq!(rt.stats.retries, 2, "budget spent");
    assert_eq!(rt.stats.rollbacks, 3, "every attempt rolled back");
    assert_eq!(text_snapshot(&m, &exe), pristine);
}

#[test]
fn sticky_write_fault_makes_rollback_itself_fail() {
    // If text writes fail *persistently*, the rollback's restores fail
    // too. That is the one case the transaction cannot hide: it reports
    // CommitPhase::Rollback (image may be torn) and never retries.
    let (mut m, _exe, mut rt) = mv_fixture();
    rt.retry = RetryPolicy::retries(2);

    m.inject_fault(FaultPlan::fail_nth_write(1).sticky());
    let err = rt.commit(&mut m).unwrap_err();
    assert_eq!(err.commit_phase(), Some(CommitPhase::Rollback));
    assert!(!err.is_transient(), "torn state must not be retried");
    assert_eq!(rt.stats.retries, 0);
    // The chain names the entry whose restore failed.
    match &err {
        RtError::Commit { source, .. } => {
            assert!(
                matches!(**source, RtError::RollbackFailed { .. }),
                "{err:?}"
            )
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn dropped_icache_flush_is_detected_and_rolled_back() {
    let (mut m, exe, mut rt) = mv_fixture();
    let pristine = text_snapshot(&m, &exe);

    m.inject_fault(FaultPlan::drop_nth_flush(1));
    let err = rt.commit(&mut m).unwrap_err();
    assert_eq!(err.commit_phase(), Some(CommitPhase::Apply));
    assert!(
        matches!(err.root_cause(), RtError::IcacheStale { .. }),
        "{err:?}"
    );
    assert!(err.is_transient());
    assert_eq!(text_snapshot(&m, &exe), pristine);

    // With a retry budget the lost flush is survivable.
    let (mut m, _exe, mut rt) = mv_fixture();
    rt.retry = RetryPolicy::retries(1);
    m.inject_fault(FaultPlan::drop_nth_flush(1));
    let report = rt.commit(&mut m).unwrap();
    assert_eq!(report.variants_committed, 1);
    assert_eq!(rt.stats.retries, 1);
}

#[test]
fn selection_error_during_planning_is_labelled_plan() {
    // A guard referencing a switch with no variable descriptor fails
    // while *planning* (variant selection), before anything is checked
    // or written. Historically this was mislabelled CommitPhase::Validate;
    // it must report CommitPhase::Plan.
    let mut o = base_object();
    o.define_bss("A", 4);
    o.define_bss("B", 4); // linkable, but no variable descriptor
    let mut a = Assembler::new();
    a.load_sym(Reg::R0, "A", 0, mvasm::Width::W32, true);
    a.ret();
    let g = a.finish().unwrap();
    let g_size = g.bytes.len() as u32;
    o.add_code("mv", &g);
    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 1);
    a.ret();
    o.add_code("mv.B=1", &a.finish().unwrap());
    emit_variable(
        &mut o,
        &VarDescSym {
            symbol: "A".into(),
            width: 4,
            signed: true,
            fn_ptr: false,
            name_sym: None,
        },
    );
    emit_function(
        &mut o,
        &FnDescSym {
            symbol: "mv".into(),
            generic_size: g_size,
            generic_inline_len: NOT_INLINABLE,
            name_sym: None,
            variants: vec![VariantDescSym {
                symbol: "mv.B=1".into(),
                body_size: 11,
                inline_len: NOT_INLINABLE,
                guards: vec![GuardSym {
                    var_symbol: "B".into(),
                    low: 1,
                    high: 1,
                }],
            }],
        },
    );
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut m = Machine::new(CostModel::default(), MachineConfig::default());
    m.load(&exe);
    let mut rt = Runtime::attach(&m, &exe).unwrap();

    let err = rt.commit(&mut m).unwrap_err();
    assert_eq!(err.commit_phase(), Some(CommitPhase::Plan), "{err:?}");
    assert!(
        matches!(
            err.root_cause(),
            RtError::UnknownGuardVariable { var_addr, .. }
                if *var_addr == exe.symbol("B").unwrap()
        ),
        "{err:?}"
    );
    // A plan failure writes nothing.
    assert_eq!(rt.stats.journal_entries, 0);
    assert_eq!(rt.stats.bytes_written, 0);
}

#[test]
fn unjournaled_commit_reports_the_raw_error() {
    // The legacy path (journal off) must keep its old failure shape: the
    // raw error, no Commit wrapper — and no rollback.
    let (mut m, _exe, mut rt) = mv_fixture();
    rt.journal = false;
    m.inject_fault(FaultPlan::fail_nth_write(1));
    let err = rt.commit(&mut m).unwrap_err();
    assert!(err.commit_phase().is_none(), "{err:?}");
    assert!(matches!(err, RtError::Mem(_)), "{err:?}");
    assert_eq!(rt.stats.rollbacks, 0);
    assert_eq!(rt.stats.journal_entries, 0);
}
