//! Runtime backends: the pluggable policy layer between the commit
//! machinery and the machine.
//!
//! The ISA-level contract (encodings, widths, displacement reach) lives
//! in [`mvasm::abi::Backend`]; this module layers the *runtime*-level
//! decisions on top as [`RtBackend`]: which ABI the patcher speaks,
//! which page protections bracket a text write, and what extra work a
//! successful commit must do to keep an execution tier coherent with
//! the new function bindings.
//!
//! Two implementations ship:
//!
//! * [`Mv64RtBackend`] — the reference backend. MV64 encodings, the
//!   classic transient-RW / restore-RX patch discipline, no post-commit
//!   work. This is what every runtime uses unless told otherwise.
//! * [`HostTierBackend`] — the native host-closure tier. Identical
//!   encodings and patch discipline (committed images are byte-for-byte
//!   those of [`Mv64RtBackend`]), but after every successful commit it
//!   reconciles the machine's [native region registry] against the
//!   current function bindings: the *live* body of every multiversed
//!   function (committed variant or generic fallback) is lowered to a
//!   pre-resolved micro-op region and executed by the VM's native tier,
//!   and regions for bodies that are no longer live are dropped.
//!
//! [native region registry]: mvvm::Machine::ensure_native
//!
//! Because the two backends produce identical images, traces and stats,
//! their observable behavior differs only in execution speed — the
//! differential test suite holds them to that.

use crate::runtime::{FnBinding, Runtime};
use mvobj::Prot;
use mvvm::{ExecTier, Machine};
use std::sync::Arc;

/// Runtime-level backend policy. Object-safe; the runtime stores one as
/// `Arc<dyn RtBackend>` and consults it on every patch and commit.
///
/// `Send + Sync` is required: the commit daemon moves whole runtimes
/// across threads.
pub trait RtBackend: Send + Sync {
    /// Stable backend name, as spelled in CLI flags and reports.
    fn name(&self) -> &'static str;

    /// The ISA contract this backend patches under.
    fn abi(&self) -> &'static dyn mvasm::Backend;

    /// Protection of the transient window a text write opens.
    fn window_prot(&self) -> Prot {
        Prot::RW
    }

    /// Protection text pages are restored to after a write.
    fn restore_prot(&self) -> Prot {
        Prot::RX
    }

    /// Execution tier this backend wants the machine on, if it cares.
    /// Boot facades apply it when the backend is installed; the sync
    /// hook itself only ever *upgrades* a tier, never downgrades one
    /// the embedder chose deliberately.
    fn preferred_tier(&self) -> Option<ExecTier> {
        None
    }

    /// Post-commit hook: runs once after every *successful* transaction
    /// (unicore and quiesced alike), with the new bindings already in
    /// place and the image flushed. The default does nothing.
    fn sync(&self, m: &mut Machine, rt: &Runtime) {
        let _ = (m, rt);
    }
}

/// The reference backend: MV64 encodings, default patch discipline,
/// no post-commit work.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mv64RtBackend;

impl RtBackend for Mv64RtBackend {
    fn name(&self) -> &'static str {
        "mv64"
    }

    fn abi(&self) -> &'static dyn mvasm::Backend {
        mvasm::MV64
    }
}

/// The native host-closure tier backend.
///
/// Encodings and patch discipline are exactly [`Mv64RtBackend`]'s, so
/// committed images are byte-identical; the difference is the
/// [`RtBackend::sync`] hook, which keeps the machine's native-tier
/// region registry congruent with the function bindings: one lowered
/// region per multiversed function, rooted at the committed variant's
/// entry (or the generic entry on fallback), stale roots dropped.
#[derive(Clone, Copy, Debug, Default)]
pub struct HostTierBackend;

impl RtBackend for HostTierBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn abi(&self) -> &'static dyn mvasm::Backend {
        mvasm::MV64
    }

    fn preferred_tier(&self) -> Option<ExecTier> {
        Some(ExecTier::Native)
    }

    fn sync(&self, m: &mut Machine, rt: &Runtime) {
        // The native tier is a superset of Superblock; switching a
        // machine that was left on a lower tier would silently discard
        // its caches, so only ever move Superblock → Native.
        if m.tier() == ExecTier::Superblock {
            m.set_tier(ExecTier::Native);
        }
        if m.tier() != ExecTier::Native {
            return;
        }
        // The live entry of every multiversed function: the committed
        // variant, or the generic body under fallback. Entry-jump
        // chasing is unnecessary — a Variant binding means calls land on
        // the variant directly (patched sites) or via the entry jump,
        // and the jump itself stays on the block engine.
        let desired: Vec<u64> = rt
            .fns
            .iter()
            .map(|f| match f.binding {
                FnBinding::Variant(v) => v,
                FnBinding::Generic => f.desc.generic,
            })
            .collect();
        m.retain_native(|entry| desired.contains(&entry));
        for &entry in &desired {
            // Best-effort: a body the lowerer cannot digest (indirect
            // control flow up front, unmapped pages) simply stays on
            // the block engine — semantics are tier-independent.
            m.ensure_native(entry);
        }
    }
}

/// Parses a CLI spelling into a backend (`mv64`, `native`/`host`).
pub fn parse(name: &str) -> Option<Arc<dyn RtBackend>> {
    match name {
        "mv64" => Some(Arc::new(Mv64RtBackend)),
        "native" | "host" => Some(Arc::new(HostTierBackend)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_back() {
        for name in ["mv64", "native"] {
            assert_eq!(parse(name).unwrap().name(), name);
        }
        assert_eq!(parse("host").unwrap().name(), "native");
        assert!(parse("nope").is_none());
    }

    #[test]
    fn default_protections_follow_wxorx() {
        let b = Mv64RtBackend;
        assert_eq!(b.window_prot(), Prot::RW);
        assert_eq!(b.restore_prot(), Prot::RX);
        assert_eq!(b.abi().name(), "mv64");
        assert_eq!(HostTierBackend.abi().name(), "mv64");
    }

    #[test]
    fn backends_are_object_safe_and_sendable() {
        fn takes_send_sync<T: Send + Sync>(_: T) {}
        let b: Arc<dyn RtBackend> = Arc::new(HostTierBackend);
        takes_send_sync(b);
    }
}
