//! §6.2.3 — grep end to end over a hex-random corpus, pattern `a.a`.

use criterion::{criterion_group, criterion_main, Criterion};
use multiverse::bench::render_table;
use mv_workloads::grep::{boot, run, GrepBuild};
use mv_workloads::textgen;

fn bench(c: &mut Criterion) {
    let (rows, improvement) = mv_bench::grep_data(262_144);
    println!("{}", render_table("§6.2.3 — grep end-to-end", &rows));
    println!(
        "multiverse improvement: {:.2} % (paper: 2.73 %)\n",
        improvement * 100.0
    );

    let corpus = textgen::hex_corpus(65_536, 2019);
    let mut g = c.benchmark_group("grep_end2end");
    for build in [GrepBuild::Without, GrepBuild::With] {
        let mut w = boot(build, &corpus, false).expect("boot");
        g.bench_function(format!("{build:?}"), |b| {
            b.iter(|| run(&mut w, corpus.len()).expect("run"))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Simulated workloads are deterministic; short sampling keeps the
    // full suite fast without changing any conclusion.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
