//! Paravirtual operations — the Fig. 4 (right) case study.
//!
//! Linux encapsulates privileged operations behind the PV-Ops
//! function-pointer table so the same kernel binary runs on bare metal and
//! as a Xen PV guest; at boot the indirect calls are binary-patched into
//! direct calls, and single-instruction native bodies (`sti`/`cli`) are
//! inlined into the call sites. PV-Ops functions use a *custom calling
//! convention with no scratch registers*, which makes the Xen
//! implementations pay callee-side save/restore traffic the paper
//! identified as the measurable difference (§6.1).
//!
//! Three kernels, as in the paper:
//!
//! 1. [`PvBuild::Current`] — PV-Ops pointers + boot-time patching +
//!    custom calling convention (the mainline mechanism);
//! 2. [`PvBuild::Multiverse`] — `irq_enable`/`irq_disable` multiversed
//!    over a `hv_type` enum switch, standard calling convention;
//! 3. [`PvBuild::IfdefDisabled`] — paravirtualization compiled out: raw
//!    `sti`/`cli` (on a Xen guest these trap, which is exactly why the
//!    mechanism exists — the paper could not run this kernel as a PV
//!    guest at all; we show the trap cost instead).

use multiverse::mvc::Options;
use multiverse::mvvm::{CostModel, MachineConfig, Platform};
use multiverse::{BuildError, Program, World};

/// The mainline PV-Ops kernel: pointer table, custom calling convention.
pub const SRC_CURRENT: &str = r#"
    // The pv_ops table entries: multiverse-attributed function pointers,
    // so every indirect call site is recorded for boot-time patching.
    multiverse fnptr pv_irq_disable = &native_cli;
    multiverse fnptr pv_irq_enable = &native_sti;

    // Xen keeps the event-channel mask and pending flag in the
    // shared-info page.
    u8 xen_upcall_mask[64];
    u8 xen_upcall_pending[64];

    // Native implementations: single privileged instruction, trivially
    // inlinable into the 9-byte indirect call site.
    pvop_cc void native_cli(void) { __cli(); }
    pvop_cc void native_sti(void) { __sti(); }

    // Xen implementations, as in the real kernel: disabling only sets
    // the event mask; enabling unmasks and hypercalls only when events
    // are pending. The custom convention forces the callee to save every
    // register it touches.
    pvop_cc void xen_cli(void) {
        xen_upcall_mask[0] = 1;
    }
    pvop_cc void xen_sti(void) {
        xen_upcall_mask[0] = 0;
        if (xen_upcall_pending[0]) {
            __hypercall(1);
        }
    }

    void boot_xen(void) {
        pv_irq_disable = &xen_cli;
        pv_irq_enable = &xen_sti;
    }

    // The benchmarked pair: disable + enable interrupts (cli + sti).
    void irq_toggle(void) {
        pv_irq_disable();
        pv_irq_enable();
    }

    i64 main(void) { return 0; }
"#;

/// The multiversed kernel: interrupt ops specialized over the hypervisor
/// type, standard calling convention.
pub const SRC_MULTIVERSE: &str = r#"
    enum hypervisor { HV_NATIVE = 0, HV_XEN = 1 };
    multiverse enum hypervisor hv_type;

    u8 xen_upcall_mask[64];
    u8 xen_upcall_pending[64];

    multiverse void irq_disable(void) {
        if (hv_type == 1) {
            xen_upcall_mask[0] = 1;
        } else {
            __cli();
        }
    }
    multiverse void irq_enable(void) {
        if (hv_type == 1) {
            xen_upcall_mask[0] = 0;
            if (xen_upcall_pending[0]) {
                __hypercall(1);
            }
        } else {
            __sti();
        }
    }

    void irq_toggle(void) {
        irq_disable();
        irq_enable();
    }

    i64 main(void) { return 0; }
"#;

/// Paravirtualization compiled out: raw privileged instructions.
pub const SRC_IFDEF: &str = r#"
    void irq_toggle(void) {
        __cli();
        __sti();
    }
    i64 main(void) { return 0; }
"#;

/// The three benchmarked kernel builds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PvBuild {
    /// Mainline PV-Ops patching (custom calling convention).
    Current,
    /// Multiversed interrupt operations (standard calling convention).
    Multiverse,
    /// Paravirtualization statically disabled.
    IfdefDisabled,
}

impl PvBuild {
    /// Display label matching Fig. 4.
    pub fn label(self) -> &'static str {
        match self {
            PvBuild::Current => "PV-Op Patching [current]",
            PvBuild::Multiverse => "PV-Op Patching [multiverse]",
            PvBuild::IfdefDisabled => "PV-Op Disabled [ifdef]",
        }
    }
}

/// Boots the given kernel on `platform` and performs its boot-time
/// binding (PV-Ops patch or multiverse commit).
pub fn boot(build: PvBuild, platform: Platform) -> Result<World, BuildError> {
    let (src, opts) = match build {
        PvBuild::Current => (SRC_CURRENT, Options::default()),
        PvBuild::Multiverse => (SRC_MULTIVERSE, Options::default()),
        PvBuild::IfdefDisabled => (SRC_IFDEF, Options::dynamic()),
    };
    let program = Program::build_with(&[("pvops.c", src)], &opts)?;
    let mut world = program.boot_with(
        CostModel::default(),
        MachineConfig {
            platform,
            ..MachineConfig::default()
        },
    );
    let xen = platform == Platform::XenGuest;
    match build {
        PvBuild::Current => {
            if xen {
                // The guest boot path rebinds the pv_ops table…
                world.call("boot_xen", &[])?;
            }
            // …and the kernel patches all recorded sites (apply_paravirt).
            world.commit()?;
        }
        PvBuild::Multiverse => {
            world.set("hv_type", xen as i64)?;
            world.commit()?;
        }
        PvBuild::IfdefDisabled => {}
    }
    Ok(world)
}

/// Average cycles for the `cli`+`sti` pair.
pub fn measure(world: &mut World, iterations: u64) -> Result<f64, BuildError> {
    Ok(world
        .time_calls("irq_toggle", &[], iterations, false)?
        .avg_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builds_boot_on_both_platforms() {
        for b in [
            PvBuild::Current,
            PvBuild::Multiverse,
            PvBuild::IfdefDisabled,
        ] {
            for p in [Platform::Native, Platform::XenGuest] {
                let mut w = boot(b, p).unwrap();
                w.call("irq_toggle", &[]).unwrap();
            }
        }
    }

    #[test]
    fn guest_kernels_use_pv_path_not_traps() {
        for b in [PvBuild::Current, PvBuild::Multiverse] {
            let mut w = boot(b, Platform::XenGuest).unwrap();
            let t0 = w.machine.stats.guest_traps;
            w.call("irq_toggle", &[]).unwrap();
            assert_eq!(w.machine.stats.guest_traps, t0, "{b:?}: no traps");
            // Masking is visible in the shared-info page.
            let mask = w.sym("xen_upcall_mask").unwrap();
            w.call("irq_disable_entry_for_test", &[]).ok(); // absent; ignore
            assert_eq!(
                w.machine.mem.read_uint(mask, 1).unwrap(),
                0,
                "unmasked after sti"
            );
            // With a pending event, enabling hypercalls exactly once.
            let pending = w.sym("xen_upcall_pending").unwrap();
            w.machine.mem.write_int(pending, 1, 1).unwrap();
            let h0 = w.machine.stats.hypercalls;
            w.call("irq_toggle", &[]).unwrap();
            assert_eq!(w.machine.stats.hypercalls, h0 + 1, "{b:?}");
            w.machine.mem.write_int(pending, 0, 1).unwrap();
        }
        // The ifdef kernel traps on every privileged instruction.
        let mut w = boot(PvBuild::IfdefDisabled, Platform::XenGuest).unwrap();
        let t0 = w.machine.stats.guest_traps;
        w.call("irq_toggle", &[]).unwrap();
        assert_eq!(w.machine.stats.guest_traps, t0 + 2);
    }

    #[test]
    fn native_patching_inlines_the_instruction() {
        // Both patching mechanisms inline the single-instruction native
        // bodies: no calls remain on the hot path (§6.1: "all the three
        // candidates appear to perform similarly"). The host-level entry
        // into `irq_toggle` itself does not execute a call instruction.
        for b in [PvBuild::Current, PvBuild::Multiverse] {
            let mut w = boot(b, Platform::Native).unwrap();
            w.call("irq_toggle", &[]).unwrap(); // decode fresh code
            let c0 = w.machine.stats.calls;
            let i0 = w.machine.stats.indirect_calls;
            w.call("irq_toggle", &[]).unwrap();
            assert_eq!(w.machine.stats.calls - c0, 0, "{b:?}");
            assert_eq!(w.machine.stats.indirect_calls - i0, 0, "{b:?}");
        }
    }

    #[test]
    fn fig4_native_parity_and_guest_gap() {
        let n = 5000;
        let cur_native =
            measure(&mut boot(PvBuild::Current, Platform::Native).unwrap(), n).unwrap();
        let mv_native =
            measure(&mut boot(PvBuild::Multiverse, Platform::Native).unwrap(), n).unwrap();
        let ifdef_native = measure(
            &mut boot(PvBuild::IfdefDisabled, Platform::Native).unwrap(),
            n,
        )
        .unwrap();
        // Native: all three perform similarly (the dynamic kernels are
        // not worse than the static one).
        let max = cur_native.max(mv_native).max(ifdef_native);
        let min = cur_native.min(mv_native).min(ifdef_native);
        assert!(
            max - min <= 4.0,
            "native parity: current={cur_native} mv={mv_native} ifdef={ifdef_native}"
        );

        // Xen guest: multiverse beats the current mechanism (standard
        // calling convention avoids the callee-side save/restore).
        let cur_xen = measure(&mut boot(PvBuild::Current, Platform::XenGuest).unwrap(), n).unwrap();
        let mv_xen = measure(
            &mut boot(PvBuild::Multiverse, Platform::XenGuest).unwrap(),
            n,
        )
        .unwrap();
        assert!(
            mv_xen < cur_xen,
            "guest: multiverse {mv_xen} < current {cur_xen}"
        );

        // And the unpatched privileged instructions would be catastrophic.
        let ifdef_xen = measure(
            &mut boot(PvBuild::IfdefDisabled, Platform::XenGuest).unwrap(),
            n,
        )
        .unwrap();
        assert!(
            ifdef_xen > 4.0 * cur_xen,
            "trap cost dominates: {ifdef_xen}"
        );
    }

    #[test]
    fn rebinding_pvops_at_runtime_works() {
        // Boot native, then migrate to a Xen-style binding: the same
        // image re-commits to hypercalls.
        let program =
            Program::build_with(&[("pvops.c", SRC_CURRENT)], &Options::default()).unwrap();
        let mut w = program.boot_with(
            CostModel::default(),
            MachineConfig {
                platform: Platform::XenGuest,
                ..MachineConfig::default()
            },
        );
        // Initially bound (dynamically) to native_cli — executing it in a
        // guest traps.
        w.call("irq_toggle", &[]).unwrap();
        assert!(w.machine.stats.guest_traps >= 2);
        w.call("boot_xen", &[]).unwrap();
        w.commit().unwrap();
        let t0 = w.machine.stats.guest_traps;
        w.call("irq_toggle", &[]).unwrap();
        assert_eq!(w.machine.stats.guest_traps, t0, "patched to hypercalls");
    }
}
