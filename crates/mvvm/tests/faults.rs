//! Fault-model tests: NX enforcement, unmapped execution, stack
//! exhaustion and bad jumps must all surface as structured faults, never
//! as silent misbehaviour — plus the deterministic fault-injection layer
//! ([`FaultPlan`]) that makes patching-time hazards reproducible.

use mvasm::{Assembler, Insn, Reg};
use mvobj::{link, Layout, Object, Prot};
use mvvm::{CostModel, Fault, FaultOp, FaultPlan, Machine, MachineConfig, SmpMachine};

fn boot(build: impl FnOnce(&mut Object)) -> (Machine, mvobj::Executable) {
    let mut o = Object::new("t");
    build(&mut o);
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut m = Machine::new(CostModel::default(), MachineConfig::default());
    m.load(&exe);
    (m, exe)
}

#[test]
fn executing_data_faults_nx() {
    // A function pointer aimed at the .data segment: fetch must fault
    // (the data segment is RW, not X — W^X cuts both ways).
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.lea_sym(Reg::R1, "blob");
        a.emit(Insn::CallInd { target: Reg::R1 });
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
        // Valid instruction bytes, but in a non-executable section.
        o.define_data("blob", &mvasm::encode(&Insn::Ret));
    });
    match m.run_entry(&exe) {
        Err(Fault::Mem(e)) => {
            assert!(e.mapped, "mapped but not executable");
        }
        other => panic!("expected NX fault, got {other:?}"),
    }
}

#[test]
fn jumping_into_the_void_faults() {
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.mov_ri(Reg::R1, 0xdead_0000);
        a.emit(Insn::CallInd { target: Reg::R1 });
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    match m.run_entry(&exe) {
        Err(Fault::Mem(e)) => assert!(!e.mapped),
        other => panic!("expected unmapped fault, got {other:?}"),
    }
}

#[test]
fn runaway_recursion_overflows_the_stack() {
    // main calls itself forever; the stack guard (unmapped page below
    // the stack) stops it with a memory fault, not a host crash.
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.label("self");
        a.call_sym("main", false);
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    match m.run_entry(&exe) {
        Err(Fault::Mem(e)) => assert!(!e.mapped, "fell off the stack mapping"),
        other => panic!("expected stack overflow fault, got {other:?}"),
    }
}

#[test]
fn zero_bytes_are_never_valid_instructions() {
    // Jump into the zero-filled BSS-like padding within the text page.
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.emit(Insn::Jmp { rel: 64 }); // far past the emitted code
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    match m.run_entry(&exe) {
        Err(Fault::Decode { err, .. }) => {
            assert!(matches!(err, mvasm::DecodeError::BadOpcode(0)));
        }
        other => panic!("expected decode fault, got {other:?}"),
    }
}

/// The full W^X patch dance over `addr`: unlock, write, relock, flush.
fn patch(m: &mut Machine, addr: u64, bytes: &[u8]) -> Result<(), mvvm::MemError> {
    m.mem.mprotect(addr, bytes.len() as u64, Prot::RW)?;
    m.mem.write(addr, bytes)?;
    m.mem.mprotect(addr, bytes.len() as u64, Prot::RX)?;
    m.mem.flush_icache(addr, bytes.len() as u64);
    Ok(())
}

#[test]
fn dropped_icache_flush_executes_stale_code() {
    // Warm the decode cache, patch the function with the flush dropped:
    // the OLD code keeps executing. A later (healed) flush makes the new
    // bytes visible — the missing-flush hazard, fully observable.
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.mov_ri(Reg::R0, 1);
        a.ret();
        o.add_code("f", &a.finish().unwrap());
        let mut a = Assembler::new();
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    let f = exe.symbol("f").unwrap();
    assert_eq!(m.call(f, &[]).unwrap(), 1); // decode cache now warm

    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 2);
    a.ret();
    let new_body = a.finish().unwrap().bytes;

    m.inject_fault(FaultPlan::drop_nth_flush(1));
    patch(&mut m, f, &new_body).unwrap();
    assert_eq!(
        m.call(f, &[]).unwrap(),
        1,
        "stale decoded instructions must keep executing after a lost flush"
    );
    // Memory holds the new bytes all along — only the icache is stale.
    assert_eq!(m.mem.read_vec(f, new_body.len()).unwrap(), new_body);
    let plan = m.clear_fault().unwrap();
    assert_eq!(plan.fired(), 1);

    m.mem.flush_icache(f, new_body.len() as u64);
    assert_eq!(m.call(f, &[]).unwrap(), 2, "flush makes the patch visible");
}

#[test]
fn injected_write_fault_hits_text_but_not_data() {
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
        o.define_data("blob", &[0u8; 8]);
    });
    let main = exe.symbol("main").unwrap();
    let blob = exe.symbol("blob").unwrap();

    // Fail the 2nd *text* write. Data stores must not consume the counter,
    // even though they are writes too.
    m.inject_fault(FaultPlan::fail_nth_write(2));
    m.mem.mprotect(main, 1, Prot::RW).unwrap();
    m.mem.write(main, &[mvasm::encode(&Insn::Halt)[0]]).unwrap(); // text write #1
    m.mem.write(blob, &[1, 2, 3]).unwrap(); // data write: not counted
    let err = m.mem.write(main, &[0x90]).unwrap_err(); // text write #2: faults
    assert!(err.mapped, "injected fault mimics a protection fault");
    // One-shot: the fault heals, the retried write goes through.
    m.mem.write(main, &[mvasm::encode(&Insn::Halt)[0]]).unwrap();
    m.mem.mprotect(main, 1, Prot::RX).unwrap();
    assert_eq!(m.clear_fault().unwrap().fired(), 1);
}

#[test]
fn injected_mprotect_fault_interrupts_the_unlock() {
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    let main = exe.symbol("main").unwrap();
    m.inject_fault(FaultPlan::fail_nth_mprotect(1));
    let err = m.mem.mprotect(main, 1, Prot::RW).unwrap_err();
    assert!(err.mapped);
    // The page protection is unchanged: text is still not writable.
    assert!(m.mem.write(main, &[0x90]).is_err());
    // Sticky plans keep failing; one-shot heals (this one was one-shot).
    m.mem.mprotect(main, 1, Prot::RW).unwrap();
    m.mem.mprotect(main, 1, Prot::RX).unwrap();
}

#[test]
fn dropped_shootdown_loses_the_broadcast_and_heals_one_shot() {
    // Boot a 2-vCPU machine, warm a private decode cache, then lose the
    // first flush_remote: nothing is evicted, the shootdown counter does
    // not move and the call acknowledges zero caches. The re-issued
    // broadcast (the lost-IPI recovery) works and evicts the stale
    // decode.
    let mut o = Object::new("t");
    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 1);
    a.ret();
    o.add_code("f", &a.finish().unwrap());
    let mut a = Assembler::new();
    a.emit(Insn::Halt);
    o.add_code("main", &a.finish().unwrap());
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut smp = SmpMachine::new(CostModel::default(), MachineConfig::default(), 2);
    smp.machine.load(&exe);
    let f = exe.symbol("f").unwrap();

    // Warm vCPU 0's sticky icache on the old body.
    smp.spawn(0, f, &[]).unwrap();
    while smp.state(0).is_live() {
        smp.step_round();
    }

    let mut a = Assembler::new();
    a.mov_ri(Reg::R0, 2);
    a.ret();
    let new_body = a.finish().unwrap().bytes;
    smp.machine
        .mem
        .mprotect(f, new_body.len() as u64, Prot::RW)
        .unwrap();
    smp.machine.mem.write(f, &new_body).unwrap();
    smp.machine
        .mem
        .mprotect(f, new_body.len() as u64, Prot::RX)
        .unwrap();

    smp.machine.inject_fault(FaultPlan::drop_nth_shootdown(1));
    let before = smp.shootdowns();
    assert_eq!(smp.flush_remote(None), 0, "lost broadcast acks no cache");
    assert_eq!(smp.shootdowns(), before, "a lost IPI is not counted");
    assert_eq!(
        smp.machine.clear_fault().unwrap().fired(),
        1,
        "the plan consumed and failed exactly the first broadcast"
    );

    // One-shot: the re-issued broadcast lands and evicts every cache.
    assert_eq!(smp.flush_remote(None), smp.vcpus() + 1);
    assert_eq!(smp.shootdowns(), before + 1);
    smp.spawn(0, f, &[]).unwrap();
    while smp.state(0).is_live() {
        smp.step_round();
    }
    match *smp.state(0) {
        mvvm::VcpuState::Done { ret } => {
            assert_eq!(ret, 2, "new body visible after real broadcast")
        }
        ref other => panic!("vCPU did not finish: {other:?}"),
    }
}

#[test]
fn sticky_shootdown_keeps_losing_broadcasts() {
    let mut o = Object::new("t");
    let mut a = Assembler::new();
    a.emit(Insn::Halt);
    o.add_code("main", &a.finish().unwrap());
    let exe = link(&[o], &Layout::default()).unwrap();
    let mut smp = SmpMachine::new(CostModel::default(), MachineConfig::default(), 2);
    smp.machine.load(&exe);

    smp.machine
        .inject_fault(FaultPlan::drop_nth_shootdown(1).sticky());
    assert_eq!(smp.flush_remote(None), 0);
    assert_eq!(smp.flush_remote(None), 0, "sticky: every broadcast lost");
    assert_eq!(smp.shootdowns(), 0);
    assert_eq!(smp.machine.clear_fault().unwrap().fired(), 2);
    assert!(smp.flush_remote(None) > 0, "cleared plan stops interfering");
}

#[test]
fn trap_plant_plans_are_not_consumed_by_memory_primitives() {
    // TrapPlant is a quiesce-layer operation class: Memory's own
    // primitives (mprotect / write / flush) must pass through untouched
    // and never consume the counter — only an explicit trip_fault call
    // from the layer that owns the operation does.
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
    });
    let main = exe.symbol("main").unwrap();
    m.inject_fault(FaultPlan::fail_nth_trap_plant(1));
    patch(&mut m, main, &[mvasm::encode(&Insn::Halt)[0]]).unwrap();
    assert_eq!(m.mem.fault_plan().unwrap().seen(), 0);
    assert!(
        m.mem.trip_fault(FaultOp::TrapPlant, main),
        "explicit trip fires"
    );
    assert!(
        !m.mem.trip_fault(FaultOp::TrapPlant, main),
        "one-shot heals"
    );
    assert_eq!(m.clear_fault().unwrap().fired(), 1);
}

#[test]
fn range_filtered_sticky_plan_poisons_one_function_only() {
    // A sticky TextWrite plan scoped to f's bytes: writes into f keep
    // faulting, writes into g (same op class, different address) land.
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        a.emit(Insn::Halt);
        o.add_code("main", &a.finish().unwrap());
        o.define_data("pad", &[0u8; 4]);
    });
    let main = exe.symbol("main").unwrap();
    let halt = mvasm::encode(&Insn::Halt)[0];
    m.inject_fault(
        FaultPlan::fail_nth_write(1)
            .sticky()
            .in_range(main, main + 1),
    );
    m.mem.mprotect(main, 2, Prot::RW).unwrap();
    assert!(m.mem.write(main, &[halt]).is_err(), "in range: faults");
    assert!(
        m.mem.write(main, &[halt]).is_err(),
        "sticky: keeps faulting"
    );
    m.mem.write(main + 1, &[0]).unwrap(); // outside the range: lands
    m.mem.mprotect(main, 2, Prot::RX).unwrap();
    assert_eq!(m.clear_fault().unwrap().fired(), 2);
}

#[test]
fn ret_with_empty_stack_faults_not_panics() {
    let (mut m, exe) = boot(|o| {
        let mut a = Assembler::new();
        // Pop the host-pushed sentinel… there is none under run_entry, so
        // sp points at the pristine stack top; ret reads the zeroed slot
        // and jumps to address 0 → unmapped execute fault.
        a.ret();
        o.add_code("main", &a.finish().unwrap());
    });
    match m.run_entry(&exe) {
        Err(Fault::Mem(e)) => assert!(!e.mapped),
        other => panic!("expected fault, got {other:?}"),
    }
}
