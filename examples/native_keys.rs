//! The native Rust layer: dynamic variability for a real Rust program —
//! static-key-style feature switches with commit/revert semantics,
//! measured in actual nanoseconds on the host.
//!
//! ```sh
//! cargo run --release --example native_keys
//! ```

use multiverse::native::{MvBool, MvFn0, Registry};
use std::time::Instant;

// The configuration switch: tracing on or off.
static TRACING: MvBool = MvBool::new(false);

// The generic variant reads the switch on every call (binding B).
fn record_event_generic() -> u64 {
    if TRACING.read() {
        // Pretend to format and store a trace record.
        std::hint::black_box(42u64.wrapping_mul(0x9E3779B97F4A7C15))
    } else {
        0
    }
}

// Monomorphized specialists: the switch is a compile-time constant, the
// branch is gone (binding C's variant bodies).
fn record_event_spec<const ON: bool>() -> u64 {
    if ON {
        std::hint::black_box(42u64.wrapping_mul(0x9E3779B97F4A7C15))
    } else {
        0
    }
}

// The dispatch cell: index 0 is the generic, 1 = off, 2 = on.
static RECORD_EVENT: MvFn0<u64> = MvFn0::new(&[
    record_event_generic,
    record_event_spec::<false>,
    record_event_spec::<true>,
]);

fn time(label: &str, f: impl Fn() -> u64) {
    const N: u64 = 20_000_000;
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..N {
        acc = acc.wrapping_add(std::hint::black_box(f()));
    }
    let per_call = t0.elapsed().as_nanos() as f64 / N as f64;
    println!("{label:38} {per_call:6.2} ns/call  (acc {acc})");
}

fn main() {
    let mv = Registry::new();
    mv.register(|commit| {
        if commit {
            RECORD_EVENT.bind(if TRACING.read() { 2 } else { 1 });
        } else {
            RECORD_EVENT.revert();
        }
    });

    println!("tracing disabled:");
    TRACING.write(false);
    time("  dynamic test (generic)", record_event_generic);
    mv.commit();
    time("  committed cell (specialist, off)", || RECORD_EVENT.call());

    println!("tracing enabled at run time — flip + commit:");
    TRACING.write(true);
    // §2 semantics: nothing changes until the commit.
    assert_eq!(RECORD_EVENT.call(), 0, "still bound to the off specialist");
    mv.commit();
    assert_ne!(RECORD_EVENT.call(), 0);
    time("  committed cell (specialist, on)", || RECORD_EVENT.call());

    mv.revert();
    println!("reverted: cell dispatches the generic again");
    TRACING.write(false);
    assert_eq!(RECORD_EVENT.call(), 0);
}
