//! Symbols: named offsets into sections.

/// What a symbol names.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymKind {
    /// A function entry point.
    Func,
    /// A data object (global variable, descriptor, string).
    Object,
}

/// A defined symbol inside an [`crate::Object`].
#[derive(Clone, Debug)]
pub struct Symbol {
    /// Symbol name. Global symbols must be unique across all linked
    /// objects; local symbols are private to their object.
    pub name: String,
    /// Name of the defining section.
    pub section: String,
    /// Byte offset inside that section (pre-concatenation).
    pub offset: u64,
    /// Visible to other translation units.
    pub global: bool,
    /// Function or object.
    pub kind: SymKind,
    /// Size in bytes (informational; used for function-body bounds).
    pub size: u64,
}

impl Symbol {
    /// Creates a global function symbol.
    pub fn func(name: &str, section: &str, offset: u64, size: u64) -> Symbol {
        Symbol {
            name: name.to_string(),
            section: section.to_string(),
            offset,
            global: true,
            kind: SymKind::Func,
            size,
        }
    }

    /// Creates a global data-object symbol.
    pub fn object(name: &str, section: &str, offset: u64, size: u64) -> Symbol {
        Symbol {
            name: name.to_string(),
            section: section.to_string(),
            offset,
            global: true,
            kind: SymKind::Object,
            size,
        }
    }

    /// Marks the symbol local (not exported to other objects).
    pub fn local(mut self) -> Symbol {
        self.global = false;
        self
    }
}
