//! Quickstart: the paper's Fig. 2 / Fig. 3 example, end to end.
//!
//! Compiles a two-switch multiversed function, walks through every patch
//! state of Fig. 3 (initial → committed → inlined-empty → out-of-domain
//! fallback → reverted), and prints what the text segment looks like at
//! each step.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

#![allow(clippy::disallowed_names)] // `foo` is the paper's own Fig. 2 identifier
use multiverse::{mvasm, Program};

const SRC: &str = r#"
    multiverse bool A;
    multiverse i32 B;

    u64 calc_count;
    u64 log_count;

    void calc(void) { calc_count = calc_count + 1; }
    void log_(void) { log_count = log_count + 1; }

    // Fig. 2: the variation point. Variants are generated for the cross
    // product of A in {0,1} and B in {0,1}; the two A=0 clones optimize
    // to the same empty body and merge into multi.A=0.B=0-1.
    multiverse void multi(void) {
        if (A) {
            calc();
            if (B) {
                log_();
            }
        }
    }

    void foo(void) { multi(); }

    i64 main(void) { return 0; }
"#;

fn show_callsite(world: &multiverse::World, label: &str) {
    let foo = world.sym("foo").expect("symbol foo");
    let bytes = world.machine.mem.read_vec(foo, 12).expect("readable text");
    println!("--- {label}\n{}", mvasm::disasm(&bytes, foo));
}

fn main() {
    let program = Program::build(&[("fig2.c", SRC)]).expect("compile");
    for w in program.warnings() {
        println!("{w}");
    }
    let mut world = program.boot();

    // Inventory: Fig. 2 produced three variants for `multi`.
    let rt = world.rt.as_ref().expect("multiverse runtime");
    println!(
        "descriptors: {} switches, {} functions, {} call sites",
        rt.num_variables(),
        rt.num_functions(),
        rt.num_callsites()
    );
    let multi = world.sym("multi").expect("symbol");
    println!(
        "variants of multi(): {:?}\n",
        world.rt.as_ref().unwrap().variants_of(multi).unwrap()
    );

    // (a) Initially loaded binary: foo calls the generic multi.
    show_callsite(&world, "(a) initial: call multi (generic)");
    world.call("foo", &[]).expect("run");

    // (b) A=1, B=0: commit installs multi.A=1.B=0 at the call site.
    world.set("A", 1).unwrap();
    world.set("B", 0).unwrap();
    let report = world.commit().expect("commit");
    println!(
        "commit: {} variants bound, {} fallbacks",
        report.variants_committed, report.generic_fallbacks
    );
    show_callsite(&world, "(b) A=1, B=0: call multi.A=1.B=0");
    world.call("foo", &[]).expect("run");
    println!(
        "calc ran {} time(s), log ran {} time(s)\n",
        world.get("calc_count").unwrap(),
        world.get("log_count").unwrap()
    );

    // (c) A=0: the merged empty variant is inlined as a wide NOP.
    world.set("A", 0).unwrap();
    world.commit().expect("commit");
    show_callsite(&world, "(c) A=0: empty body erased to a NOP");

    // (d) Out-of-domain value: no variant matches, the runtime reverts
    // to the generic body and signals the fallback.
    world.set("A", 3).unwrap();
    world.set("B", 4).unwrap();
    let report = world.commit().expect("commit");
    println!(
        "A=3, B=4: generic fallbacks signalled = {}",
        report.generic_fallbacks
    );
    show_callsite(&world, "(d) out-of-domain: back to call multi (generic)");

    // Completeness: even a call the compiler never saw (host-driven call
    // to the generic entry) reaches the committed variant.
    world.set("A", 1).unwrap();
    world.set("B", 1).unwrap();
    world.commit().expect("commit");
    let before = world.get("log_count").unwrap();
    world
        .call("multi", &[])
        .expect("call through generic entry");
    assert_eq!(world.get("log_count").unwrap(), before + 1);
    println!("\ncompleteness: call via generic entry reached multi.A=1.B=1");

    world.revert().expect("revert");
    show_callsite(&world, "reverted: original image restored");
}
