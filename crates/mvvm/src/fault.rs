//! Deterministic fault injection for the patching path.
//!
//! The runtime's transactional commit (mvrt) claims atomicity: a failed
//! `mprotect`, a faulting text write, or a dropped icache flush at *any*
//! point during patching must leave the guest image byte-identical to its
//! pre-commit state. Claims like that are only testable if the faults can
//! be made to happen on demand, at a precise point in the operation
//! sequence. A [`FaultPlan`] installed on [`crate::Memory`] does exactly
//! that: it counts matching operations and fails the *n*-th one.
//!
//! Two modes:
//!
//! * [`FaultMode::OneShot`] — exactly the *n*-th matching operation
//!   fails; the plan then "heals" and everything later succeeds. This is
//!   the transient-fault model retry loops are tested against.
//! * [`FaultMode::Sticky`] — the *n*-th and every later matching
//!   operation fail. This models a persistently bad page and exercises
//!   the rollback-itself-fails (poisoned) path.
//!
//! Injected faults are reported as protection faults (`MemError` with
//! `mapped: true`) so callers cannot distinguish them from a real
//! transient W^X violation — which is the point.

/// The memory operation class a [`FaultPlan`] targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultOp {
    /// A [`crate::Memory::mprotect`] call (any protection change).
    Mprotect,
    /// A checked [`crate::Memory::write`] touching a text page (a page
    /// that was ever mapped or mprotected executable). Plain data stores
    /// by guest code never consume the counter.
    TextWrite,
    /// A [`crate::Memory::flush_icache`] call. "Failing" a flush means
    /// silently dropping it — the page's code version is not bumped, so
    /// stale decoded instructions keep executing.
    IcacheFlush,
}

/// Whether a plan fires once and heals, or keeps firing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultMode {
    /// Exactly the n-th matching operation fails; later ones succeed.
    #[default]
    OneShot,
    /// The n-th and all subsequent matching operations fail.
    Sticky,
}

/// A deterministic fault schedule: fail the `nth` (1-based) operation of
/// kind `op`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    op: FaultOp,
    nth: u64,
    mode: FaultMode,
    seen: u64,
    fired: u64,
}

impl FaultPlan {
    /// A plan that fails the `n`-th (1-based) matching operation of `op`.
    pub fn new(op: FaultOp, n: u64) -> FaultPlan {
        assert!(n >= 1, "fault schedules are 1-based");
        FaultPlan {
            op,
            nth: n,
            mode: FaultMode::OneShot,
            seen: 0,
            fired: 0,
        }
    }

    /// Fails the `n`-th protection change.
    pub fn fail_nth_mprotect(n: u64) -> FaultPlan {
        FaultPlan::new(FaultOp::Mprotect, n)
    }

    /// Fails the `n`-th checked write into a text page.
    pub fn fail_nth_write(n: u64) -> FaultPlan {
        FaultPlan::new(FaultOp::TextWrite, n)
    }

    /// Silently drops the `n`-th icache flush.
    pub fn drop_nth_flush(n: u64) -> FaultPlan {
        FaultPlan::new(FaultOp::IcacheFlush, n)
    }

    /// Converts the plan to [`FaultMode::Sticky`].
    pub fn sticky(mut self) -> FaultPlan {
        self.mode = FaultMode::Sticky;
        self
    }

    /// The targeted operation class.
    pub fn op(&self) -> FaultOp {
        self.op
    }

    /// The 1-based index of the first operation that fails.
    pub fn nth(&self) -> u64 {
        self.nth
    }

    /// The firing mode.
    pub fn mode(&self) -> FaultMode {
        self.mode
    }

    /// How many matching operations have been observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// How many operations this plan has actually failed.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Counts a matching operation and reports whether it must fail.
    pub(crate) fn trips(&mut self, op: FaultOp) -> bool {
        if op != self.op {
            return false;
        }
        self.seen += 1;
        let hit = match self.mode {
            FaultMode::OneShot => self.seen == self.nth,
            FaultMode::Sticky => self.seen >= self.nth,
        };
        if hit {
            self.fired += 1;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_exactly_once() {
        let mut p = FaultPlan::fail_nth_mprotect(3);
        let hits: Vec<bool> = (0..6).map(|_| p.trips(FaultOp::Mprotect)).collect();
        assert_eq!(hits, vec![false, false, true, false, false, false]);
        assert_eq!(p.seen(), 6);
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn sticky_fires_from_nth_on() {
        let mut p = FaultPlan::fail_nth_write(2).sticky();
        let hits: Vec<bool> = (0..4).map(|_| p.trips(FaultOp::TextWrite)).collect();
        assert_eq!(hits, vec![false, true, true, true]);
        assert_eq!(p.fired(), 3);
    }

    #[test]
    fn other_ops_do_not_consume_the_counter() {
        let mut p = FaultPlan::drop_nth_flush(1);
        assert!(!p.trips(FaultOp::Mprotect));
        assert!(!p.trips(FaultOp::TextWrite));
        assert_eq!(p.seen(), 0);
        assert!(p.trips(FaultOp::IcacheFlush));
    }
}
