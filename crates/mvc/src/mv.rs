//! The multiverse variant-generation pass (§3 of the paper).
//!
//! For every `multiverse`-attributed function this pass:
//!
//! 1. computes the set of configuration switches the body *reads*;
//! 2. builds the cross product of their value domains (guarding against
//!    combinatorial explosion with a configurable limit, §7.1);
//! 3. clones the body once per assignment, replacing every switch read
//!    with the assignment's constant, and warning about switch writes;
//! 4. optimizes each clone with the regular pass pipeline, so constant
//!    propagation/folding and dead-code elimination specialize it fully;
//! 5. merges clones that optimized to structurally identical bodies
//!    (Fig. 2: `multi.A=0.B=0` and `multi.A=0.B=1` become one variant)
//!    and synthesizes `[low, high]` range guards that cover exactly the
//!    merged assignments — falling back to one point-guard descriptor
//!    entry per assignment when the merged set is not a contiguous box.

use crate::error::{CompileError, Warning};
use crate::ir::{FuncIr, Inst, IrBin, Operand};
use crate::lower::Ctx;
use crate::passes;
use mvobj::descriptor::GuardSym;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One specialized variant body with its descriptor guard sets.
#[derive(Clone, Debug)]
pub struct VariantInfo {
    /// Mangled symbol (e.g. `multi.A=1.B=0-1`).
    pub name: String,
    /// The optimized specialized body.
    pub ir: FuncIr,
    /// One guard conjunction per descriptor entry; multiple entries share
    /// this body when the merged assignment set is not a box.
    pub guard_sets: Vec<Vec<GuardSym>>,
    /// The concrete assignments this variant covers (for tests/tooling).
    pub assignments: Vec<Vec<(String, i64)>>,
}

/// Result of variant generation for one function.
#[derive(Clone, Debug)]
pub struct MvResult {
    /// Switch names the function reads, in deterministic order.
    pub switches: Vec<String>,
    /// Generated variants (post-merge).
    pub variants: Vec<VariantInfo>,
    /// Warnings produced.
    pub warnings: Vec<Warning>,
}

/// The mv-expand *plan* for one function: everything the expansion stage
/// decides before any clone is materialized. Splitting planning from
/// execution lets the pipeline run the (cheap, error-reporting) plan
/// stage sequentially and farm the clone+fold work out to a thread pool.
#[derive(Clone, Debug)]
pub struct ExpandPlan {
    /// Switch names the function specializes over, in deterministic
    /// (sorted, bind-filtered) order.
    pub switches: Vec<String>,
    /// The value domain of each switch, positionally matching
    /// `switches`.
    pub domains: Vec<Vec<i64>>,
    /// The full cross product of assignments, in domain-major order.
    pub assignments: Vec<Vec<(String, i64)>>,
    /// Warnings produced during planning (switch writes, no reads).
    pub warnings: Vec<Warning>,
}

impl ExpandPlan {
    /// A stable textual signature of the specialization domain: switch
    /// names, their domains, and nothing else. Two functions with equal
    /// pre-expand bodies and equal domain signatures generate identical
    /// variant sets (modulo the base name), which is what makes the
    /// compile cache sound.
    pub fn domain_signature(&self) -> String {
        let mut sig = String::new();
        for (s, dom) in self.switches.iter().zip(&self.domains) {
            sig.push_str(s);
            sig.push('=');
            for v in dom {
                sig.push_str(&v.to_string());
                sig.push(',');
            }
            sig.push(';');
        }
        sig
    }
}

/// Plans the expansion of `f`, or `None` if `f` is not multiversed.
///
/// This is stage "mv-expand" part one: switch discovery, bind
/// filtering, the switch-write warning scan, the explosion check (which
/// names every offending switch and its domain size), and the cross
/// product itself. No IR is cloned here.
pub fn plan_expansion(
    f: &FuncIr,
    ctx: &Ctx,
    limit: usize,
) -> Result<Option<ExpandPlan>, CompileError> {
    if !f.attrs.multiverse {
        return Ok(None);
    }
    let is_value_switch = |g: &str| {
        ctx.globals
            .get(g)
            .is_some_and(|info| info.is_switch() && info.ty != crate::types::Type::Fnptr)
    };
    let mut switches = f.globals_read(is_value_switch);
    switches.sort();
    // Partial specialization (§2/§7.1): an explicit bind list restricts
    // which referenced switches are fixed; the rest stay dynamic inside
    // the variants.
    if let Some(bind) = &f.attrs.bind {
        for name in bind {
            if !is_value_switch(name) {
                return Err(CompileError::Sema {
                    msg: format!(
                        "`{}`: bind({name}) does not name a configuration switch",
                        f.name
                    ),
                });
            }
        }
        switches.retain(|s| bind.contains(s));
    }

    let mut warnings = Vec::new();
    // §3: emit a warning if a switch is written inside a multiversed
    // function — the variant has it bound to a constant.
    let mut warned: HashSet<String> = HashSet::new();
    for b in &f.blocks {
        for inst in &b.insts {
            if let Inst::StoreGlobal { global, .. } = inst {
                if is_value_switch(global) && warned.insert(global.clone()) {
                    warnings.push(Warning::SwitchWrittenInVariant {
                        function: f.name.clone(),
                        switch: global.clone(),
                    });
                }
            }
        }
    }

    if switches.is_empty() {
        warnings.push(Warning::NoSwitchesReferenced {
            function: f.name.clone(),
        });
        return Ok(Some(ExpandPlan {
            switches,
            domains: Vec::new(),
            assignments: Vec::new(),
            warnings,
        }));
    }

    // Cross product of domains.
    let domains: Vec<Vec<i64>> = switches.iter().map(|s| ctx.switch_domain(s)).collect();
    let total: usize = domains.iter().map(|d| d.len().max(1)).product();
    if total > limit {
        return Err(CompileError::VariantExplosion {
            function: f.name.clone(),
            variants: total,
            limit,
            switches: switches
                .iter()
                .zip(&domains)
                .map(|(s, d)| (s.clone(), d.len().max(1)))
                .collect(),
        });
    }

    let mut assignments: Vec<Vec<(String, i64)>> = vec![vec![]];
    for (s, dom) in switches.iter().zip(&domains) {
        let mut next = Vec::with_capacity(assignments.len() * dom.len());
        for a in &assignments {
            for &v in dom {
                let mut a2 = a.clone();
                a2.push((s.clone(), v));
                next.push(a2);
            }
        }
        assignments = next;
    }

    Ok(Some(ExpandPlan {
        switches,
        domains,
        assignments,
        warnings,
    }))
}

/// One specialized, optimized clone plus its canonical merge key. The
/// per-assignment work unit of the pipeline's optimize stage.
pub type SpecializedBody = (Vec<(String, i64)>, FuncIr, String);

/// Stage "optimize", one item: clone `f`, bind `assign`'s constants,
/// run the regular pass pipeline, and compute the canonical key the
/// merge stage buckets on. Pure (no shared state), hence trivially
/// parallel across assignments.
pub fn specialize_clone(f: &FuncIr, assign: Vec<(String, i64)>) -> SpecializedBody {
    let mut clone = f.clone();
    specialize(&mut clone, &assign);
    passes::optimize(&mut clone);
    let key = clone.canonical_key();
    (assign, clone, key)
}

/// 64-bit FNV-1a — the content address of a canonicalized body.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stage "merge": groups structurally identical bodies by content
/// address. Each body's canonical key is FNV-1a-hashed into buckets;
/// within a bucket the full key is compared, so hash collisions can
/// never merge distinct bodies. First-seen group order is preserved,
/// which keeps variant naming and object layout deterministic. O(n)
/// expected — replaces the seed's pairwise `find` scan.
pub fn merge_clones(bodies: &[SpecializedBody]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    // hash → indices into `groups` whose key has that hash.
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, (_, _, key)) in bodies.iter().enumerate() {
        let h = fnv1a(key.as_bytes());
        let bucket = buckets.entry(h).or_default();
        match bucket
            .iter()
            .find(|&&g| bodies[groups[g][0]].2 == *key)
            .copied()
        {
            Some(g) => groups[g].push(i),
            None => {
                bucket.push(groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

/// Stage "merge" part two: turns merge groups into named, guarded
/// variants. `base` is the generic function's symbol; passing it
/// separately keeps the merge result reusable under any name (the
/// compile cache stores name-independent variants).
pub fn assemble_variants(
    base: &str,
    switches: &[String],
    bodies: &[SpecializedBody],
    groups: &[Vec<usize>],
) -> Vec<VariantInfo> {
    let mut variants = Vec::with_capacity(groups.len());
    for idxs in groups {
        let group_assignments: Vec<Vec<(String, i64)>> =
            idxs.iter().map(|&i| bodies[i].0.clone()).collect();
        let guard_sets = synthesize_guards(switches, &group_assignments);
        let name = variant_name(base, switches, &group_assignments, &guard_sets);
        let mut ir = bodies[idxs[0]].1.clone();
        ir.name = name.clone();
        variants.push(VariantInfo {
            name,
            ir,
            guard_sets,
            assignments: group_assignments,
        });
    }
    variants
}

/// Generates the variants of `f`, or `None` if `f` is not multiversed.
///
/// Sequential reference path: plan → specialize each assignment in
/// order → merge → assemble. The pipeline's parallel path runs the same
/// stages with the specialize loop farmed out, and must produce
/// byte-identical results; the differential test in
/// `tests/compile_pipeline.rs` holds it to that.
pub fn generate_variants(
    f: &FuncIr,
    ctx: &Ctx,
    limit: usize,
) -> Result<Option<MvResult>, CompileError> {
    let Some(plan) = plan_expansion(f, ctx, limit)? else {
        return Ok(None);
    };
    if plan.switches.is_empty() {
        return Ok(Some(MvResult {
            switches: plan.switches,
            variants: Vec::new(),
            warnings: plan.warnings,
        }));
    }
    let bodies: Vec<SpecializedBody> = plan
        .assignments
        .iter()
        .map(|a| specialize_clone(f, a.clone()))
        .collect();
    let groups = merge_clones(&bodies);
    let variants = assemble_variants(&f.name, &plan.switches, &bodies, &groups);
    Ok(Some(MvResult {
        switches: plan.switches,
        variants,
        warnings: plan.warnings,
    }))
}

/// Replaces every read of an assigned switch with its constant value. The
/// replacement happens *before* optimization, exactly as in the plugin.
fn specialize(f: &mut FuncIr, assign: &[(String, i64)]) {
    let map: BTreeMap<&str, i64> = assign.iter().map(|(s, v)| (s.as_str(), *v)).collect();
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            if let Inst::LoadGlobal { dst, global, .. } = inst {
                if let Some(&v) = map.get(global.as_str()) {
                    // `dst ← v + 0`; constant folding dissolves it.
                    *inst = Inst::Bin {
                        op: IrBin::Add,
                        dst: *dst,
                        a: Operand::Const(v),
                        b: Operand::Const(0),
                    };
                }
            }
        }
    }
}

/// Expresses the merged assignment set as range-guard conjunctions.
///
/// If the set is exactly a "box" — the cross product of per-switch value
/// sets, each of which is a gap-free integer interval — a single guard
/// conjunction with `[min, max]` ranges covers it (Fig. 2's
/// `multi.A=1.B=01`). Otherwise each assignment gets its own point-guard
/// conjunction; all entries share the one merged body.
fn synthesize_guards(switches: &[String], group: &[Vec<(String, i64)>]) -> Vec<Vec<GuardSym>> {
    // Per-switch distinct value sets.
    let mut per_switch: Vec<Vec<i64>> = Vec::with_capacity(switches.len());
    for (si, _) in switches.iter().enumerate() {
        let mut vals: Vec<i64> = group.iter().map(|a| a[si].1).collect();
        vals.sort_unstable();
        vals.dedup();
        per_switch.push(vals);
    }
    let box_size: usize = per_switch.iter().map(|v| v.len()).product();
    let contiguous = |v: &[i64]| v.windows(2).all(|w| w[1] == w[0] + 1);
    let is_box = box_size == group.len() && per_switch.iter().all(|v| contiguous(v));
    // (Distinct assignments guarantee group.len() ≤ box_size; equality
    // means every combination is present.)
    if is_box {
        let guards = switches
            .iter()
            .zip(&per_switch)
            .map(|(s, vals)| GuardSym {
                var_symbol: s.clone(),
                low: *vals.first().expect("non-empty domain") as i32,
                high: *vals.last().expect("non-empty domain") as i32,
            })
            .collect();
        vec![guards]
    } else {
        group
            .iter()
            .map(|assign| {
                assign
                    .iter()
                    .map(|(s, v)| GuardSym {
                        var_symbol: s.clone(),
                        low: *v as i32,
                        high: *v as i32,
                    })
                    .collect()
            })
            .collect()
    }
}

/// Builds the mangled variant symbol, e.g. `multi.A=1.B=0-1`.
fn variant_name(
    base: &str,
    switches: &[String],
    group: &[Vec<(String, i64)>],
    guard_sets: &[Vec<GuardSym>],
) -> String {
    let mut name = base.to_string();
    if guard_sets.len() == 1 {
        for g in &guard_sets[0] {
            if g.low == g.high {
                name.push_str(&format!(".{}={}", g.var_symbol, g.low));
            } else {
                name.push_str(&format!(".{}={}-{}", g.var_symbol, g.low, g.high));
            }
        }
    } else {
        // Non-box merge: name after the first assignment plus a count.
        for (si, s) in switches.iter().enumerate() {
            name.push_str(&format!(".{}={}", s, group[0][si].1));
        }
        name.push_str(&format!("+{}", group.len() - 1));
    }
    name
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::lower::lower_unit;
    use crate::parser::parse;

    fn gen(src: &str, name: &str, limit: usize) -> Result<Option<MvResult>, CompileError> {
        let l = lower_unit(&parse(&lex(src).unwrap()).unwrap()).unwrap();
        let f = l.funcs.iter().find(|f| f.name == name).expect("fn");
        generate_variants(f, &l.ctx, limit)
    }

    const FIG2: &str = r#"
        multiverse bool A;
        multiverse i32 B;
        void calc(void) { __out(1); }
        void log_(void) { __out(2); }
        multiverse void multi(void) {
            if (A) {
                calc();
                if (B) {
                    log_();
                }
            }
        }
    "#;

    #[test]
    fn fig2_merges_a0_variants() {
        // Four raw assignments; A=0,B=0 and A=0,B=1 merge to one empty
        // body → 3 variants, as in Fig. 2.
        let r = gen(FIG2, "multi", 32).unwrap().unwrap();
        assert_eq!(r.switches, vec!["A".to_string(), "B".to_string()]);
        assert_eq!(r.variants.len(), 3);
        let merged = r
            .variants
            .iter()
            .find(|v| v.assignments.len() == 2)
            .expect("merged A=0 variant");
        // Its guard must be a single conjunction with B covering [0,1].
        assert_eq!(merged.guard_sets.len(), 1);
        let b_guard = merged.guard_sets[0]
            .iter()
            .find(|g| g.var_symbol == "B")
            .unwrap();
        assert_eq!((b_guard.low, b_guard.high), (0, 1));
        let a_guard = merged.guard_sets[0]
            .iter()
            .find(|g| g.var_symbol == "A")
            .unwrap();
        assert_eq!((a_guard.low, a_guard.high), (0, 0));
        // The merged body is empty (no instructions).
        assert!(merged.ir.blocks.iter().all(|b| b.insts.is_empty()));
        // Names follow the paper's scheme.
        assert!(merged.name.contains("A=0"));
        assert!(merged.name.contains("B=0-1"));
    }

    #[test]
    fn specialized_bodies_lose_the_branch() {
        let r = gen(FIG2, "multi", 32).unwrap().unwrap();
        let a1b1 = r
            .variants
            .iter()
            .find(|v| v.assignments == vec![vec![("A".into(), 1), ("B".into(), 1)]])
            .expect("A=1,B=1 variant");
        // Both calls unconditional, no branches left.
        assert_eq!(a1b1.ir.blocks.len(), 1);
        let calls = a1b1.ir.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 2);
    }

    #[test]
    fn non_multiverse_function_yields_none() {
        let r = gen("multiverse bool A; void f(void) { if (A) {} }", "f", 32).unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn no_switch_reads_warns() {
        let r = gen("multiverse bool A; multiverse void f(void) { }", "f", 32)
            .unwrap()
            .unwrap();
        assert!(r.variants.is_empty());
        assert!(matches!(
            r.warnings[0],
            Warning::NoSwitchesReferenced { .. }
        ));
    }

    #[test]
    fn switch_write_warns() {
        let r = gen(
            "multiverse bool A; multiverse void f(void) { if (A) { A = 0; } }",
            "f",
            32,
        )
        .unwrap()
        .unwrap();
        assert!(r
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::SwitchWrittenInVariant { .. })));
    }

    #[test]
    fn explosion_is_detected() {
        let src = r#"
            multiverse(1,2,3,4,5,6,7,8) i32 a;
            multiverse(1,2,3,4,5,6,7,8) i32 b;
            multiverse void f(void) { if (a + b) { __out(1); } }
        "#;
        let err = gen(src, "f", 32).unwrap_err();
        assert!(matches!(
            err,
            CompileError::VariantExplosion {
                variants: 64,
                limit: 32,
                ..
            }
        ));
        // A higher limit admits it.
        assert!(gen(src, "f", 64).is_ok());
    }

    #[test]
    fn enum_domains_use_all_enumerators() {
        let src = r#"
            enum hv { NATIVE, XEN = 1, KVM = 2 };
            multiverse enum hv which;
            multiverse void f(void) {
                if (which == 1) { __out(1); } else { __out(2); }
            }
        "#;
        let r = gen(src, "f", 32).unwrap().unwrap();
        // NATIVE and KVM collapse to the same body → 2 variants.
        assert_eq!(r.variants.len(), 2);
        let not_xen = r
            .variants
            .iter()
            .find(|v| v.assignments.len() == 2)
            .expect("merged non-XEN variant");
        // {0, 2} is not contiguous → two point-guard entries, one body.
        assert_eq!(not_xen.guard_sets.len(), 2);
        assert!(not_xen
            .guard_sets
            .iter()
            .all(|gs| gs.len() == 1 && gs[0].low == gs[0].high));
    }

    #[test]
    fn explicit_domain_restricts_variants() {
        let src = r#"
            multiverse(0, 1) i32 threads_minus_1;
            multiverse void lock(void) { if (threads_minus_1) { __out(1); } }
        "#;
        let r = gen(src, "lock", 32).unwrap().unwrap();
        assert_eq!(r.variants.len(), 2);
    }

    #[test]
    fn bind_restricts_specialization() {
        // f reads both switches but binds only A: two variants, each
        // still evaluating B dynamically, guarded on A alone.
        let src = r#"
            multiverse bool A;
            multiverse(0,1,2,3) i32 B;
            multiverse(bind(A)) i64 f(void) {
                if (A) { return B + 1; }
                return B;
            }
        "#;
        let r = gen(src, "f", 32).unwrap().unwrap();
        assert_eq!(r.switches, vec!["A".to_string()]);
        assert_eq!(r.variants.len(), 2);
        for v in &r.variants {
            assert_eq!(v.guard_sets[0].len(), 1);
            assert_eq!(v.guard_sets[0][0].var_symbol, "A");
            // B is still read dynamically in the variant body.
            let reads_b = v.ir.blocks.iter().any(|b| {
                b.insts
                    .iter()
                    .any(|i| matches!(i, Inst::LoadGlobal { global, .. } if global == "B"))
            });
            assert!(reads_b, "{}: B must stay dynamic", v.name);
        }
    }

    #[test]
    fn bind_of_non_switch_is_an_error() {
        let src = r#"
            multiverse bool A;
            i64 plain;
            multiverse(bind(plain)) void f(void) { if (A) { __out(1); } }
        "#;
        assert!(matches!(gen(src, "f", 32), Err(CompileError::Sema { .. })));
    }

    #[test]
    fn fnptr_switch_does_not_multiply_variants() {
        let src = r#"
            multiverse fnptr op;
            multiverse bool A;
            multiverse void f(void) { if (A) { op(); } }
        "#;
        let r = gen(src, "f", 32).unwrap().unwrap();
        assert_eq!(r.switches, vec!["A".to_string()]);
        assert_eq!(r.variants.len(), 2);
    }
}
