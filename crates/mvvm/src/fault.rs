//! Deterministic fault injection for the patching path.
//!
//! The runtime's transactional commit (mvrt) claims atomicity: a failed
//! `mprotect`, a faulting text write, or a dropped icache flush at *any*
//! point during patching must leave the guest image byte-identical to its
//! pre-commit state. Claims like that are only testable if the faults can
//! be made to happen on demand, at a precise point in the operation
//! sequence. A [`FaultPlan`] installed on [`crate::Memory`] does exactly
//! that: it counts matching operations and fails the *n*-th one.
//!
//! Two modes:
//!
//! * [`FaultMode::OneShot`] — exactly the *n*-th matching operation
//!   fails; the plan then "heals" and everything later succeeds. This is
//!   the transient-fault model retry loops are tested against.
//! * [`FaultMode::Sticky`] — the *n*-th and every later matching
//!   operation fail. This models a persistently bad page and exercises
//!   the rollback-itself-fails (poisoned) path.
//!
//! Injected faults are reported as protection faults (`MemError` with
//! `mapped: true`) so callers cannot distinguish them from a real
//! transient W^X violation — which is the point.

/// The memory operation class a [`FaultPlan`] targets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultOp {
    /// A [`crate::Memory::mprotect`] call (any protection change).
    Mprotect,
    /// A checked [`crate::Memory::write`] touching a text page (a page
    /// that was ever mapped or mprotected executable). Plain data stores
    /// by guest code never consume the counter.
    TextWrite,
    /// A [`crate::Memory::flush_icache`] call. "Failing" a flush means
    /// silently dropping it — the page's code version is not bumped, so
    /// stale decoded instructions keep executing.
    IcacheFlush,
    /// A breakpoint-protocol trap plant: the quiesce layer writing a
    /// trap byte over a patched region's first instruction. Failing the
    /// plant surfaces as a protection fault *before* the byte lands, so
    /// the unwind never has a stranded trap to clean up — the model of a
    /// poke racing a concurrent protection change. Trap *restores*
    /// (putting the original byte back) never consume this counter.
    TrapPlant,
    /// A remote icache shootdown (`SmpMachine::flush_remote`): the
    /// IPI-style broadcast that evicts every per-CPU sticky decode
    /// cache. "Failing" one means silently losing the whole broadcast —
    /// no cache is evicted and the shootdown counter does not move, the
    /// lost-IPI model. Callers can detect the loss because a real
    /// broadcast always acknowledges at least one invalidated cache.
    Shootdown,
}

/// Whether a plan fires once and heals, or keeps firing.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FaultMode {
    /// Exactly the n-th matching operation fails; later ones succeed.
    #[default]
    OneShot,
    /// The n-th and all subsequent matching operations fail.
    Sticky,
}

/// A deterministic fault schedule: fail the `nth` (1-based) operation of
/// kind `op`, optionally only when the operation's address falls inside
/// a half-open range.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    op: FaultOp,
    nth: u64,
    mode: FaultMode,
    range: Option<(u64, u64)>,
    seen: u64,
    fired: u64,
}

impl FaultPlan {
    /// A plan that fails the `n`-th (1-based) matching operation of `op`.
    pub fn new(op: FaultOp, n: u64) -> FaultPlan {
        assert!(n >= 1, "fault schedules are 1-based");
        FaultPlan {
            op,
            nth: n,
            mode: FaultMode::OneShot,
            range: None,
            seen: 0,
            fired: 0,
        }
    }

    /// Fails the `n`-th protection change.
    pub fn fail_nth_mprotect(n: u64) -> FaultPlan {
        FaultPlan::new(FaultOp::Mprotect, n)
    }

    /// Fails the `n`-th checked write into a text page.
    pub fn fail_nth_write(n: u64) -> FaultPlan {
        FaultPlan::new(FaultOp::TextWrite, n)
    }

    /// Silently drops the `n`-th icache flush.
    pub fn drop_nth_flush(n: u64) -> FaultPlan {
        FaultPlan::new(FaultOp::IcacheFlush, n)
    }

    /// Fails the `n`-th breakpoint trap plant.
    pub fn fail_nth_trap_plant(n: u64) -> FaultPlan {
        FaultPlan::new(FaultOp::TrapPlant, n)
    }

    /// Silently loses the `n`-th remote icache shootdown.
    pub fn drop_nth_shootdown(n: u64) -> FaultPlan {
        FaultPlan::new(FaultOp::Shootdown, n)
    }

    /// Converts the plan to [`FaultMode::Sticky`].
    pub fn sticky(mut self) -> FaultPlan {
        self.mode = FaultMode::Sticky;
        self
    }

    /// Restricts the plan to operations whose address lies in
    /// `[start, end)`. Operations outside the range neither fail nor
    /// consume the counter, so a sticky plan can poison one function's
    /// pages while commits elsewhere stay healthy. Address-less
    /// operations (a full-image shootdown) report address `0`.
    pub fn in_range(mut self, start: u64, end: u64) -> FaultPlan {
        assert!(start < end, "fault range is half-open and non-empty");
        self.range = Some((start, end));
        self
    }

    /// The targeted operation class.
    pub fn op(&self) -> FaultOp {
        self.op
    }

    /// The address filter, if any.
    pub fn range(&self) -> Option<(u64, u64)> {
        self.range
    }

    /// The 1-based index of the first operation that fails.
    pub fn nth(&self) -> u64 {
        self.nth
    }

    /// The firing mode.
    pub fn mode(&self) -> FaultMode {
        self.mode
    }

    /// How many matching operations have been observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// How many operations this plan has actually failed.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Counts a matching operation at `addr` and reports whether it
    /// must fail. Operations of another class, or outside the address
    /// filter, do not consume the counter.
    pub(crate) fn trips(&mut self, op: FaultOp, addr: u64) -> bool {
        if op != self.op {
            return false;
        }
        if let Some((start, end)) = self.range {
            if addr < start || addr >= end {
                return false;
            }
        }
        self.seen += 1;
        let hit = match self.mode {
            FaultMode::OneShot => self.seen == self.nth,
            FaultMode::Sticky => self.seen >= self.nth,
        };
        if hit {
            self.fired += 1;
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_exactly_once() {
        let mut p = FaultPlan::fail_nth_mprotect(3);
        let hits: Vec<bool> = (0..6).map(|_| p.trips(FaultOp::Mprotect, 0)).collect();
        assert_eq!(hits, vec![false, false, true, false, false, false]);
        assert_eq!(p.seen(), 6);
        assert_eq!(p.fired(), 1);
    }

    #[test]
    fn sticky_fires_from_nth_on() {
        let mut p = FaultPlan::fail_nth_write(2).sticky();
        let hits: Vec<bool> = (0..4).map(|_| p.trips(FaultOp::TextWrite, 0)).collect();
        assert_eq!(hits, vec![false, true, true, true]);
        assert_eq!(p.fired(), 3);
    }

    #[test]
    fn other_ops_do_not_consume_the_counter() {
        let mut p = FaultPlan::drop_nth_flush(1);
        assert!(!p.trips(FaultOp::Mprotect, 0));
        assert!(!p.trips(FaultOp::TextWrite, 0));
        assert_eq!(p.seen(), 0);
        assert!(p.trips(FaultOp::IcacheFlush, 0));
    }

    #[test]
    fn quiesce_phase_ops_are_schedulable() {
        let mut p = FaultPlan::fail_nth_trap_plant(2);
        assert!(!p.trips(FaultOp::TrapPlant, 0x4000));
        assert!(p.trips(FaultOp::TrapPlant, 0x4010));
        let mut s = FaultPlan::drop_nth_shootdown(1).sticky();
        assert!(s.trips(FaultOp::Shootdown, 0));
        assert!(s.trips(FaultOp::Shootdown, 0));
        assert_eq!(s.fired(), 2);
    }

    #[test]
    fn range_filter_gates_counting_and_firing() {
        let mut p = FaultPlan::fail_nth_write(1)
            .sticky()
            .in_range(0x4000, 0x5000);
        assert!(!p.trips(FaultOp::TextWrite, 0x3fff), "below the range");
        assert!(!p.trips(FaultOp::TextWrite, 0x5000), "end is exclusive");
        assert_eq!(p.seen(), 0, "out-of-range ops never consume the counter");
        assert!(p.trips(FaultOp::TextWrite, 0x4000), "start is inclusive");
        assert!(p.trips(FaultOp::TextWrite, 0x4fff));
        assert_eq!(p.fired(), 2);
        assert_eq!(p.range(), Some((0x4000, 0x5000)));
    }
}
