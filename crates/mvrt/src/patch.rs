//! Low-level text-segment patching primitives.
//!
//! Every write follows the §4 discipline: make the affected pages writable,
//! write, restore the original protection, flush the instruction cache.
//! The machine enforces both halves — unwritable text faults, and stale
//! decoded instructions keep executing until the flush.

use crate::error::RtError;
use crate::stats::PatchStats;
use mvasm::{Insn, CALL_SITE_LEN};
use mvobj::Prot;
use mvvm::Machine;

/// Writes `bytes` into the text segment at `addr` under a transient-RW
/// window and flushes the icache for the range.
pub fn patch_bytes(
    m: &mut Machine,
    addr: u64,
    bytes: &[u8],
    stats: &mut PatchStats,
) -> Result<(), RtError> {
    let len = bytes.len() as u64;
    m.mem.mprotect(addr, len, Prot::RW)?;
    stats.mprotects += 1;
    m.mem.write(addr, bytes)?;
    stats.bytes_written += len;
    m.mem.mprotect(addr, len, Prot::RX)?;
    stats.mprotects += 1;
    m.mem.flush_icache(addr, len);
    stats.icache_flushes += 1;
    Ok(())
}

/// Decodes the instruction currently at `addr`.
pub fn insn_at(m: &Machine, addr: u64) -> Result<Insn, RtError> {
    let bytes = m.mem.read_vec(addr, 16).or_else(|_| {
        // Near the end of a mapping fewer bytes may be readable.
        m.mem.read_vec(addr, CALL_SITE_LEN)
    })?;
    let (insn, _) = mvasm::decode(&bytes).map_err(|e| RtError::SiteVerifyFailed {
        site: addr,
        what: format!("undecodable bytes: {e}"),
    })?;
    Ok(insn)
}

/// Resolved target of a `call rel32` at `site`.
pub fn call_target(site: u64, rel: i32) -> u64 {
    (site + CALL_SITE_LEN as u64).wrapping_add(rel as i64 as u64)
}

/// Encodes a `call rel32` at `site` aimed at `target`.
pub fn encode_call(site: u64, target: u64) -> Vec<u8> {
    let rel = target.wrapping_sub(site + CALL_SITE_LEN as u64) as i64;
    mvasm::encode(&Insn::CallRel { rel: rel as i32 })
}

/// Encodes a `jmp rel32` at `at` aimed at `target` (the generic-entry
/// completeness jump).
pub fn encode_jmp(at: u64, target: u64) -> Vec<u8> {
    let rel = target.wrapping_sub(at + CALL_SITE_LEN as u64) as i64;
    mvasm::encode(&Insn::Jmp { rel: rel as i32 })
}

/// Verifies that `site` currently holds a `call rel32` to `expected`.
pub fn verify_call(m: &Machine, site: u64, expected: u64) -> Result<(), RtError> {
    match insn_at(m, site)? {
        Insn::CallRel { rel } => {
            let t = call_target(site, rel);
            if t == expected {
                Ok(())
            } else {
                Err(RtError::SiteVerifyFailed {
                    site,
                    what: format!("call targets {t:#x}, expected {expected:#x}"),
                })
            }
        }
        other => Err(RtError::SiteVerifyFailed {
            site,
            what: format!("found `{other}`, expected a call"),
        }),
    }
}

/// Builds the byte image for inlining `body` (already stripped of its
/// final `ret`) into a site of `site_len` bytes, NOP-padding the rest.
///
/// An empty body yields a pure NOP sled — Fig. 3 c's "suitably large nop".
pub fn inline_image(body: &[u8], site_len: usize) -> Vec<u8> {
    assert!(body.len() <= site_len);
    let mut v = body.to_vec();
    v.extend(mvasm::nop_fill(site_len - body.len()));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasm::Reg;
    use mvobj::{link, Layout, Object, SectionKind, Symbol};
    use mvvm::{CostModel, MachineConfig};

    fn machine_with_text(code: &[u8]) -> (Machine, u64) {
        let mut o = Object::new("t");
        o.append(mvobj::SEC_TEXT, SectionKind::Text, code);
        o.define(Symbol::func("main", mvobj::SEC_TEXT, 0, code.len() as u64));
        let exe = link(&[o], &Layout::default()).unwrap();
        let mut m = Machine::new(CostModel::default(), MachineConfig::default());
        m.load(&exe);
        (m, exe.entry)
    }

    #[test]
    fn patch_respects_wxorx() {
        let code = mvasm::encode(&Insn::Ret);
        let (mut m, text) = machine_with_text(&code);
        // A raw write faults; patch_bytes succeeds and restores RX.
        assert!(m.mem.write(text, &[0x90]).is_err());
        let mut stats = PatchStats::default();
        patch_bytes(&mut m, text, &[0x90], &mut stats).unwrap();
        assert!(m.mem.write(text, &[0x90]).is_err());
        assert_eq!(stats.mprotects, 2);
        assert_eq!(stats.icache_flushes, 1);
        assert_eq!(stats.bytes_written, 1);
    }

    #[test]
    fn verify_call_accepts_and_rejects() {
        let mut code = encode_call(0, 100); // placeholder, rewritten below
        code.extend(mvasm::encode(&Insn::Ret));
        let (mut m, text) = machine_with_text(&code);
        // Point the call at text+5 (the ret) so verification can succeed.
        let mut stats = PatchStats::default();
        patch_bytes(&mut m, text, &encode_call(text, text + 5), &mut stats).unwrap();
        verify_call(&m, text, text + 5).unwrap();
        let err = verify_call(&m, text, text + 100).unwrap_err();
        assert!(matches!(err, RtError::SiteVerifyFailed { .. }));
        // Not-a-call also fails verification.
        patch_bytes(&mut m, text, &mvasm::nop_fill(5), &mut stats).unwrap();
        assert!(verify_call(&m, text, text + 5).is_err());
    }

    #[test]
    fn call_encode_roundtrip() {
        let site = 0x1_0000u64;
        for target in [0x1_0005u64, 0x0_8000, 0x2_0000, site] {
            let bytes = encode_call(site, target);
            let (insn, _) = mvasm::decode(&bytes).unwrap();
            let Insn::CallRel { rel } = insn else {
                panic!()
            };
            assert_eq!(call_target(site, rel), target);
        }
    }

    #[test]
    fn inline_image_pads_with_nops() {
        let body = mvasm::encode(&Insn::Cli);
        let img = inline_image(&body, 5);
        assert_eq!(img.len(), 5);
        let (first, n) = mvasm::decode(&img).unwrap();
        assert_eq!(first, Insn::Cli);
        let (second, _) = mvasm::decode(&img[n..]).unwrap();
        assert!(second.is_nop());
        // Empty body: a single wide NOP.
        let img = inline_image(&[], 5);
        let (only, n) = mvasm::decode(&img).unwrap();
        assert_eq!(only, Insn::Nop { len: 5 });
        assert_eq!(n, 5);
    }

    #[test]
    fn insn_at_reads_current_bytes() {
        let code = mvasm::encode(&Insn::MovRI {
            dst: Reg::R3,
            imm: 9,
        });
        let (m, text) = machine_with_text(&code);
        assert_eq!(
            insn_at(&m, text).unwrap(),
            Insn::MovRI {
                dst: Reg::R3,
                imm: 9
            }
        );
    }
}
