//! Low-level text-segment patching primitives.
//!
//! Every write follows the §4 discipline: make the affected pages writable,
//! write, restore the original protection, flush the instruction cache.
//! The machine enforces both halves — unwritable text faults, and stale
//! decoded instructions keep executing until the flush.

use crate::error::RtError;
use crate::stats::PatchStats;
use mvasm::{Insn, CALL_SITE_LEN};
use mvobj::Prot;
use mvvm::{Machine, PAGE_SIZE};

/// Writes `bytes` into the text segment at `addr` under a transient-RW
/// window and flushes the icache for the range.
pub fn patch_bytes(
    m: &mut Machine,
    addr: u64,
    bytes: &[u8],
    stats: &mut PatchStats,
) -> Result<(), RtError> {
    let len = bytes.len() as u64;
    m.mem.mprotect(addr, len, Prot::RW)?;
    stats.mprotects += 1;
    m.mem.write(addr, bytes)?;
    stats.bytes_written += len;
    m.mem.mprotect(addr, len, Prot::RX)?;
    stats.mprotects += 1;
    m.mem.flush_icache(addr, len);
    stats.icache_flushes += 1;
    Ok(())
}

/// Decodes the instruction currently at `addr`.
pub fn insn_at(m: &Machine, addr: u64) -> Result<Insn, RtError> {
    let bytes = m.mem.read_vec(addr, 16).or_else(|_| {
        // Near the end of a mapping fewer bytes may be readable.
        m.mem.read_vec(addr, CALL_SITE_LEN)
    })?;
    let (insn, _) = mvasm::decode(&bytes).map_err(|e| RtError::SiteVerifyFailed {
        site: addr,
        what: format!("undecodable bytes: {e}"),
    })?;
    Ok(insn)
}

/// Resolved target of a `call rel32` at `site`.
pub fn call_target(site: u64, rel: i32) -> u64 {
    (site + CALL_SITE_LEN as u64).wrapping_add(rel as i64 as u64)
}

/// The `rel32` displacement from the end of the 5-byte instruction at
/// `at` to `target`, checked against the ±2 GiB reach of the field
/// instead of silently truncating.
fn rel32(at: u64, target: u64) -> Result<i32, RtError> {
    let rel = target as i128 - (at as i128 + CALL_SITE_LEN as i128);
    i32::try_from(rel).map_err(|_| RtError::DisplacementOutOfRange { site: at, target })
}

/// Encodes a `call rel32` at `site` aimed at `target`.
pub fn encode_call(site: u64, target: u64) -> Result<Vec<u8>, RtError> {
    Ok(mvasm::encode(&Insn::CallRel {
        rel: rel32(site, target)?,
    }))
}

/// Encodes a `jmp rel32` at `at` aimed at `target` (the generic-entry
/// completeness jump).
pub fn encode_jmp(at: u64, target: u64) -> Result<Vec<u8>, RtError> {
    Ok(mvasm::encode(&Insn::Jmp {
        rel: rel32(at, target)?,
    }))
}

/// Verifies that `site` currently holds a `call rel32` to `expected`.
pub fn verify_call(m: &Machine, site: u64, expected: u64) -> Result<(), RtError> {
    match insn_at(m, site)? {
        Insn::CallRel { rel } => {
            let t = call_target(site, rel);
            if t == expected {
                Ok(())
            } else {
                Err(RtError::SiteVerifyFailed {
                    site,
                    what: format!("call targets {t:#x}, expected {expected:#x}"),
                })
            }
        }
        other => Err(RtError::SiteVerifyFailed {
            site,
            what: format!("found `{other}`, expected a call"),
        }),
    }
}

/// Builds the byte image for inlining `body` (already stripped of its
/// final `ret`) into a site of `site_len` bytes, NOP-padding the rest.
///
/// An empty body yields a pure NOP sled — Fig. 3 c's "suitably large
/// nop". A body longer than the site (a corrupt descriptor length) is an
/// [`RtError::InlineTooLarge`] so the transaction can roll back.
pub fn inline_image(body: &[u8], site_len: usize) -> Result<Vec<u8>, RtError> {
    if body.len() > site_len {
        return Err(RtError::InlineTooLarge {
            body: body.len(),
            site_len,
        });
    }
    let mut v = body.to_vec();
    v.extend(mvasm::nop_fill(site_len - body.len()));
    Ok(v)
}

/// Page base addresses covered by the `len` bytes at `addr`.
pub fn pages_of(addr: u64, len: usize) -> impl Iterator<Item = u64> {
    let first = addr & !(PAGE_SIZE - 1);
    let last = addr.saturating_add(len.saturating_sub(1) as u64) & !(PAGE_SIZE - 1);
    (first..=last).step_by(PAGE_SIZE as usize)
}

/// Bookkeeping of one page-batched apply phase: the pages currently
/// behind a transient RW window, in open order, plus how many journaled
/// writes landed inside the batch.
#[derive(Clone, Debug, Default)]
pub struct PageBatch {
    /// Page base addresses with an open RW window, in open order.
    pub open: Vec<u64>,
    /// Journaled writes performed inside the batch.
    pub writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvasm::Reg;
    use mvobj::{link, Layout, Object, SectionKind, Symbol};
    use mvvm::{CostModel, MachineConfig};

    fn machine_with_text(code: &[u8]) -> (Machine, u64) {
        let mut o = Object::new("t");
        o.append(mvobj::SEC_TEXT, SectionKind::Text, code);
        o.define(Symbol::func("main", mvobj::SEC_TEXT, 0, code.len() as u64));
        let exe = link(&[o], &Layout::default()).unwrap();
        let mut m = Machine::new(CostModel::default(), MachineConfig::default());
        m.load(&exe);
        (m, exe.entry)
    }

    #[test]
    fn patch_respects_wxorx() {
        let code = mvasm::encode(&Insn::Ret);
        let (mut m, text) = machine_with_text(&code);
        // A raw write faults; patch_bytes succeeds and restores RX.
        assert!(m.mem.write(text, &[0x90]).is_err());
        let mut stats = PatchStats::default();
        patch_bytes(&mut m, text, &[0x90], &mut stats).unwrap();
        assert!(m.mem.write(text, &[0x90]).is_err());
        assert_eq!(stats.mprotects, 2);
        assert_eq!(stats.icache_flushes, 1);
        assert_eq!(stats.bytes_written, 1);
    }

    #[test]
    fn verify_call_accepts_and_rejects() {
        let mut code = encode_call(0, 100).unwrap(); // placeholder, rewritten below
        code.extend(mvasm::encode(&Insn::Ret));
        let (mut m, text) = machine_with_text(&code);
        // Point the call at text+5 (the ret) so verification can succeed.
        let mut stats = PatchStats::default();
        patch_bytes(
            &mut m,
            text,
            &encode_call(text, text + 5).unwrap(),
            &mut stats,
        )
        .unwrap();
        verify_call(&m, text, text + 5).unwrap();
        let err = verify_call(&m, text, text + 100).unwrap_err();
        assert!(matches!(err, RtError::SiteVerifyFailed { .. }));
        // Not-a-call also fails verification.
        patch_bytes(&mut m, text, &mvasm::nop_fill(5), &mut stats).unwrap();
        assert!(verify_call(&m, text, text + 5).is_err());
    }

    #[test]
    fn call_encode_roundtrip() {
        let site = 0x1_0000u64;
        for target in [0x1_0005u64, 0x0_8000, 0x2_0000, site] {
            let bytes = encode_call(site, target).unwrap();
            let (insn, _) = mvasm::decode(&bytes).unwrap();
            let Insn::CallRel { rel } = insn else {
                panic!()
            };
            assert_eq!(call_target(site, rel), target);
        }
    }

    #[test]
    fn encoders_reject_out_of_range_displacements() {
        // A site high enough that the most negative displacement still
        // lands on a valid (non-wrapping) address.
        let site = 4u64 << 30;
        let next = site + CALL_SITE_LEN as u64;
        // The extreme reachable targets still encode and round-trip…
        for target in [
            next + i32::MAX as u64,
            next - i32::MIN.unsigned_abs() as u64,
        ] {
            let bytes = encode_call(site, target).unwrap();
            let (Insn::CallRel { rel }, _) = mvasm::decode(&bytes).unwrap() else {
                panic!()
            };
            assert_eq!(call_target(site, rel), target);
        }
        // …one byte past either end is rejected instead of wrapping into
        // a wrong-but-valid rel32 (the old `as i32` truncation bug).
        for target in [
            next + i32::MAX as u64 + 1,
            next - i32::MIN.unsigned_abs() as u64 - 1,
            site + (4 << 30), // a clean 4 GiB away
        ] {
            let err = encode_call(site, target).unwrap_err();
            assert!(
                matches!(
                    err,
                    RtError::DisplacementOutOfRange { site: s, target: t }
                        if s == site && t == target
                ),
                "{err:?}"
            );
            assert!(encode_jmp(site, target).is_err());
        }
    }

    #[test]
    fn inline_image_pads_with_nops() {
        let body = mvasm::encode(&Insn::Cli);
        let img = inline_image(&body, 5).unwrap();
        assert_eq!(img.len(), 5);
        let (first, n) = mvasm::decode(&img).unwrap();
        assert_eq!(first, Insn::Cli);
        let (second, _) = mvasm::decode(&img[n..]).unwrap();
        assert!(second.is_nop());
        // Empty body: a single wide NOP.
        let img = inline_image(&[], 5).unwrap();
        let (only, n) = mvasm::decode(&img).unwrap();
        assert_eq!(only, Insn::Nop { len: 5 });
        assert_eq!(n, 5);
    }

    #[test]
    fn inline_image_rejects_oversized_bodies() {
        // A corrupt descriptor body length must surface as an error, not
        // abort the process via an assert.
        let body = [0x90u8; 6];
        let err = inline_image(&body, 5).unwrap_err();
        assert!(
            matches!(
                err,
                RtError::InlineTooLarge {
                    body: 6,
                    site_len: 5
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn pages_of_covers_straddles() {
        assert_eq!(pages_of(0x1000, 5).collect::<Vec<_>>(), vec![0x1000]);
        assert_eq!(pages_of(0x1ffe, 2).collect::<Vec<_>>(), vec![0x1000]);
        assert_eq!(
            pages_of(0x1ffe, 5).collect::<Vec<_>>(),
            vec![0x1000, 0x2000]
        );
        assert_eq!(
            pages_of(0x1fff, 4098).collect::<Vec<_>>(),
            vec![0x1000, 0x2000, 0x3000]
        );
    }

    #[test]
    fn patch_bytes_straddling_a_page_boundary_fixes_both_pages() {
        // A 5-byte call site spanning a page boundary: the RW window,
        // the RX restore and the icache flush must cover *both* pages.
        let code = vec![0u8; 2 * PAGE_SIZE as usize];
        let (mut m, text) = machine_with_text(&code);
        // 2 bytes before the next page boundary, 3 after it.
        let site = ((text + PAGE_SIZE) & !(PAGE_SIZE - 1)) - 2;
        let v0 = (m.mem.code_version(site), m.mem.code_version(site + 4));
        let mut stats = PatchStats::default();
        patch_bytes(&mut m, site, &[1, 2, 3, 4, 5], &mut stats).unwrap();
        assert_eq!(m.mem.read_vec(site, 5).unwrap(), vec![1, 2, 3, 4, 5]);
        // Both pages relocked…
        assert!(m.mem.write(site, &[0]).is_err(), "first page writable");
        assert!(m.mem.write(site + 4, &[0]).is_err(), "second page writable");
        // …and both pages' decode caches invalidated.
        let v1 = (m.mem.code_version(site), m.mem.code_version(site + 4));
        assert!(v1.0 > v0.0 && v1.1 > v0.1, "{v0:?} -> {v1:?}");
        assert_eq!(stats.mprotects, 2, "one RW and one RX call for the range");
    }

    #[test]
    fn insn_at_reads_current_bytes() {
        let code = mvasm::encode(&Insn::MovRI {
            dst: Reg::R3,
            imm: 9,
        });
        let (m, text) = machine_with_text(&code);
        assert_eq!(
            insn_at(&m, text).unwrap(),
            Insn::MovRI {
                dst: Reg::R3,
                imm: 9
            }
        );
    }
}
