//! The run-time library proper: descriptor interpretation, variant
//! selection, and the commit/revert API of Table 1.

use crate::error::RtError;
use crate::patch::{encode_call, encode_jmp, inline_image, insn_at, patch_bytes, verify_call};
use crate::stats::PatchStats;
use mvasm::{Insn, CALL_SITE_LEN};
use mvobj::descriptor::{
    parse_callsites, parse_functions, parse_variables, CallsiteDesc, FnDesc, VarDesc, NOT_INLINABLE,
};
use mvobj::{Executable, SEC_MV_CALLSITES, SEC_MV_FUNCTIONS, SEC_MV_VARIABLES};
use mvvm::Machine;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How commits install variants — the §7.1 design-space ablation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PatchStrategy {
    /// The paper's mechanism: rewrite every recorded call site (and
    /// inline short bodies), plus the completeness entry jump.
    #[default]
    CallSites,
    /// The rejected alternative, approximated: only the generic entry is
    /// redirected (one patch per function, like body patching would
    /// need). Calls pay an extra jump and nothing is ever inlined, but
    /// patching is O(functions) instead of O(call sites).
    EntryOnly,
}

/// Current binding of a multiversed function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FnBinding {
    /// The generic body is live; switches are evaluated dynamically.
    Generic,
    /// A specialized variant (by entry address) is committed.
    Variant(u64),
}

/// How a call site is currently bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SiteBinding {
    /// Untouched original instruction.
    Original,
    /// Rewritten to a direct call to this target.
    Call(u64),
    /// A variant body was inlined (recorded by variant address).
    Inlined(u64),
}

/// A call site and its patch state.
#[derive(Clone, Debug)]
struct SiteState {
    desc: CallsiteDesc,
    /// Total patchable length: 5 for a `call rel32` site, 9 for a
    /// `call *[mem]` (function-pointer) site.
    len: usize,
    /// `true` if the original instruction was an indirect memory call.
    indirect: bool,
    original: Vec<u8>,
    binding: SiteBinding,
}

/// A multiversed function and its patch state.
#[derive(Clone, Debug)]
struct FnState {
    desc: FnDesc,
    binding: FnBinding,
    saved_prologue: Option<Vec<u8>>,
}

/// Outcome of a commit operation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommitReport {
    /// Functions now bound to a specialized variant.
    pub variants_committed: usize,
    /// Functions left on (or reverted to) the generic body because no
    /// variant admitted the current switch values — the signalled
    /// situation of Fig. 3 d.
    pub generic_fallbacks: usize,
    /// Function-pointer call sites re-bound.
    pub fnptr_sites: usize,
    /// Call sites visited in this operation.
    pub sites_touched: usize,
}

/// The attached multiverse runtime for one loaded program.
pub struct Runtime {
    vars: Vec<VarDesc>,
    var_by_addr: HashMap<u64, usize>,
    fns: Vec<FnState>,
    fn_by_addr: HashMap<u64, usize>,
    sites: Vec<SiteState>,
    /// callee address (generic entry or fn-pointer variable) → site indices.
    sites_of: HashMap<u64, Vec<usize>>,
    /// Cumulative patching statistics.
    pub stats: PatchStats,
    /// Host wall-clock time spent patching, cumulative.
    pub patch_time: Duration,
    /// Patch strategy (default: call-site patching).
    pub strategy: PatchStrategy,
    /// Whether short bodies may be inlined into call sites (default on).
    pub inline_enabled: bool,
}

impl Runtime {
    /// Parses the descriptor sections out of the loaded image and verifies
    /// every recorded call site.
    ///
    /// Mirrors the library initialization of §5: the descriptors are read
    /// from the process image itself (the linker already concatenated and
    /// relocated them).
    pub fn attach(m: &Machine, exe: &Executable) -> Result<Runtime, RtError> {
        let read_sec = |name: &str| -> Result<Vec<u8>, RtError> {
            let (addr, size) = exe.section(name);
            if size == 0 {
                return Ok(Vec::new());
            }
            Ok(m.mem.read_vec(addr, size as usize)?)
        };
        let vars = parse_variables(&read_sec(SEC_MV_VARIABLES)?)?;
        let fn_descs = parse_functions(&read_sec(SEC_MV_FUNCTIONS)?)?;
        let site_descs = parse_callsites(&read_sec(SEC_MV_CALLSITES)?)?;

        let var_by_addr: HashMap<u64, usize> =
            vars.iter().enumerate().map(|(i, v)| (v.addr, i)).collect();
        let fn_by_addr: HashMap<u64, usize> = fn_descs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.generic, i))
            .collect();

        let mut sites = Vec::with_capacity(site_descs.len());
        let mut sites_of: HashMap<u64, Vec<usize>> = HashMap::new();
        for desc in site_descs {
            let insn = insn_at(m, desc.site)?;
            let (len, indirect) = match insn {
                Insn::CallRel { rel } => {
                    let t = crate::patch::call_target(desc.site, rel);
                    if t != desc.callee {
                        return Err(RtError::SiteVerifyFailed {
                            site: desc.site,
                            what: format!(
                                "initial call targets {t:#x}, descriptor says {:#x}",
                                desc.callee
                            ),
                        });
                    }
                    (CALL_SITE_LEN, false)
                }
                Insn::CallMem { addr } => {
                    if addr != desc.callee {
                        return Err(RtError::SiteVerifyFailed {
                            site: desc.site,
                            what: format!(
                                "indirect call through {addr:#x}, descriptor says {:#x}",
                                desc.callee
                            ),
                        });
                    }
                    (insn.len(), true)
                }
                other => {
                    return Err(RtError::SiteVerifyFailed {
                        site: desc.site,
                        what: format!("found `{other}`, expected a call"),
                    })
                }
            };
            let original = m.mem.read_vec(desc.site, len)?;
            sites_of.entry(desc.callee).or_default().push(sites.len());
            sites.push(SiteState {
                desc,
                len,
                indirect,
                original,
                binding: SiteBinding::Original,
            });
        }

        Ok(Runtime {
            vars,
            var_by_addr,
            fns: fn_descs
                .into_iter()
                .map(|desc| FnState {
                    desc,
                    binding: FnBinding::Generic,
                    saved_prologue: None,
                })
                .collect(),
            fn_by_addr,
            sites,
            sites_of,
            stats: PatchStats::default(),
            patch_time: Duration::ZERO,
            strategy: PatchStrategy::default(),
            inline_enabled: true,
        })
    }

    /// Number of known configuration switches.
    pub fn num_variables(&self) -> usize {
        self.vars.len()
    }

    /// Number of multiversed functions.
    pub fn num_functions(&self) -> usize {
        self.fns.len()
    }

    /// Number of recorded call sites.
    pub fn num_callsites(&self) -> usize {
        self.sites.len()
    }

    /// Call sites recorded for the callee at `addr` (generic function or
    /// function-pointer switch).
    pub fn callsites_of(&self, addr: u64) -> usize {
        self.sites_of.get(&addr).map_or(0, |v| v.len())
    }

    /// Current binding of the function whose generic entry is `addr`.
    pub fn binding_of(&self, addr: u64) -> Option<FnBinding> {
        self.fn_by_addr.get(&addr).map(|&i| self.fns[i].binding)
    }

    /// The variant entry addresses of the function at `addr` (for tests
    /// and tooling).
    pub fn variants_of(&self, addr: u64) -> Option<Vec<u64>> {
        self.fn_by_addr
            .get(&addr)
            .map(|&i| self.fns[i].desc.variants.iter().map(|v| v.addr).collect())
    }

    /// Reads the current value of the configuration switch at `addr`,
    /// honoring its descriptor's width and signedness.
    pub fn read_switch(&self, m: &Machine, addr: u64) -> Result<i64, RtError> {
        let &i = self
            .var_by_addr
            .get(&addr)
            .ok_or(RtError::UnknownVariable(addr))?;
        let v = &self.vars[i];
        Ok(m.mem.read_int(v.addr, v.width as usize, v.signed)?)
    }

    /// Writes a configuration switch (convenience for hosts; guest code
    /// writes switches with ordinary stores).
    pub fn write_switch(&self, m: &mut Machine, addr: u64, value: i64) -> Result<(), RtError> {
        let &i = self
            .var_by_addr
            .get(&addr)
            .ok_or(RtError::UnknownVariable(addr))?;
        let v = &self.vars[i];
        Ok(m.mem.write_int(v.addr, value as u64, v.width as usize)?)
    }

    fn select_variant(&self, m: &Machine, fi: usize) -> Result<Option<usize>, RtError> {
        let f = &self.fns[fi];
        'variants: for (vi, v) in f.desc.variants.iter().enumerate() {
            for g in &v.guards {
                let &var_i =
                    self.var_by_addr
                        .get(&g.var_addr)
                        .ok_or(RtError::UnknownGuardVariable {
                            function: f.desc.generic,
                            var_addr: g.var_addr,
                        })?;
                let var = &self.vars[var_i];
                let value = m.mem.read_int(var.addr, var.width as usize, var.signed)?;
                if !g.admits(value) {
                    continue 'variants;
                }
            }
            return Ok(Some(vi));
        }
        Ok(None)
    }

    fn patch_site_to(
        &mut self,
        m: &mut Machine,
        si: usize,
        target: u64,
        inline: Option<(u64, u32)>,
    ) -> Result<(), RtError> {
        let (site, len, binding) = {
            let s = &self.sites[si];
            (s.desc.site, s.len, s.binding)
        };
        // §4: check the site still points at the expected target before
        // touching it.
        match binding {
            SiteBinding::Call(t) => verify_call(m, site, t)?,
            SiteBinding::Original if !self.sites[si].indirect => {
                verify_call(m, site, self.sites[si].desc.callee)?
            }
            _ => {}
        }
        let (bytes, new_binding) = match inline {
            Some((body_addr, inline_len)) if (inline_len as usize) <= len => {
                let body = m.mem.read_vec(body_addr, inline_len as usize)?;
                self.stats.sites_inlined += 1;
                (inline_image(&body, len), SiteBinding::Inlined(body_addr))
            }
            _ => {
                let mut b = encode_call(site, target);
                b.extend(mvasm::nop_fill(len - CALL_SITE_LEN));
                (b, SiteBinding::Call(target))
            }
        };
        patch_bytes(m, site, &bytes, &mut self.stats)?;
        self.stats.sites_patched += 1;
        self.sites[si].binding = new_binding;
        Ok(())
    }

    fn restore_site(&mut self, m: &mut Machine, si: usize) -> Result<(), RtError> {
        if self.sites[si].binding == SiteBinding::Original {
            return Ok(());
        }
        let site = self.sites[si].desc.site;
        let original = self.sites[si].original.clone();
        patch_bytes(m, site, &original, &mut self.stats)?;
        self.stats.sites_patched += 1;
        self.sites[si].binding = SiteBinding::Original;
        Ok(())
    }

    fn install_variant(&mut self, m: &mut Machine, fi: usize, vi: usize) -> Result<usize, RtError> {
        let (generic, generic_size, v_addr, v_inline) = {
            let f = &self.fns[fi];
            let v = &f.desc.variants[vi];
            (f.desc.generic, f.desc.generic_size, v.addr, v.inline_len)
        };
        // Patch all recorded call sites of the generic function (the
        // EntryOnly strategy leaves them aimed at the generic entry, where
        // the jump redirects them).
        let site_idxs = match self.strategy {
            PatchStrategy::CallSites => self.sites_of.get(&generic).cloned().unwrap_or_default(),
            PatchStrategy::EntryOnly => Vec::new(),
        };
        let inline = if self.inline_enabled && v_inline != NOT_INLINABLE {
            Some((v_addr, v_inline))
        } else {
            None
        };
        for si in &site_idxs {
            self.patch_site_to(m, *si, v_addr, inline)?;
        }
        // Completeness: overwrite the generic entry with `jmp variant`,
        // saving the prologue the first time.
        if generic_size < CALL_SITE_LEN as u32 {
            return Err(RtError::GenericTooSmall {
                function: generic,
                size: generic_size,
            });
        }
        if self.fns[fi].saved_prologue.is_none() {
            let saved = m.mem.read_vec(generic, CALL_SITE_LEN)?;
            self.fns[fi].saved_prologue = Some(saved);
        }
        let jmp = encode_jmp(generic, v_addr);
        patch_bytes(m, generic, &jmp, &mut self.stats)?;
        self.stats.entry_jumps += 1;
        self.fns[fi].binding = FnBinding::Variant(v_addr);
        self.stats.committed_variants += 1;
        Ok(site_idxs.len())
    }

    fn revert_fn_idx(&mut self, m: &mut Machine, fi: usize) -> Result<usize, RtError> {
        let generic = self.fns[fi].desc.generic;
        let site_idxs = self.sites_of.get(&generic).cloned().unwrap_or_default();
        for si in &site_idxs {
            self.restore_site(m, *si)?;
        }
        if let Some(prologue) = self.fns[fi].saved_prologue.take() {
            patch_bytes(m, generic, &prologue, &mut self.stats)?;
            self.stats.prologues_restored += 1;
        }
        self.fns[fi].binding = FnBinding::Generic;
        Ok(site_idxs.len())
    }

    fn commit_fn_idx(
        &mut self,
        m: &mut Machine,
        fi: usize,
        report: &mut CommitReport,
    ) -> Result<(), RtError> {
        if self.fns[fi].desc.variants.is_empty() {
            // A descriptor without variants only registers the function
            // (e.g. as a pointer target with known inline information);
            // there is nothing to bind.
            return Ok(());
        }
        match self.select_variant(m, fi)? {
            Some(vi) => {
                report.sites_touched += self.install_variant(m, fi, vi)?;
                report.variants_committed += 1;
            }
            None => {
                // Fig. 3 d: no viable variant — revert to the generic
                // body, which dynamically evaluates the switches and is
                // therefore correct for *any* value; signal the fallback.
                report.sites_touched += self.revert_fn_idx(m, fi)?;
                report.generic_fallbacks += 1;
                self.stats.generic_fallbacks += 1;
            }
        }
        Ok(())
    }

    fn commit_fnptr_var(
        &mut self,
        m: &mut Machine,
        var_addr: u64,
        report: &mut CommitReport,
    ) -> Result<(), RtError> {
        let target = m.mem.read_uint(var_addr, 8)?;
        if target == 0 {
            return Err(RtError::BadFnPtrTarget { var_addr, target });
        }
        // If the pointee is a described function with an inlinable body,
        // inline it into the sites (PV-Ops style); otherwise bind a direct
        // call.
        let inline = self.fn_by_addr.get(&target).and_then(|&fi| {
            let il = self.fns[fi].desc.generic_inline_len;
            (self.inline_enabled && il != NOT_INLINABLE).then_some((target, il))
        });
        let site_idxs = self.sites_of.get(&var_addr).cloned().unwrap_or_default();
        for si in &site_idxs {
            self.patch_site_to(m, *si, target, inline)?;
            report.fnptr_sites += 1;
        }
        report.sites_touched += site_idxs.len();
        Ok(())
    }

    fn revert_fnptr_var(&mut self, m: &mut Machine, var_addr: u64) -> Result<usize, RtError> {
        let site_idxs = self.sites_of.get(&var_addr).cloned().unwrap_or_default();
        for si in &site_idxs {
            self.restore_site(m, *si)?;
        }
        Ok(site_idxs.len())
    }

    /// `multiverse_commit()`: inspect all switches, select and install
    /// variants for every multiversed function, and re-bind every
    /// function-pointer switch.
    pub fn commit(&mut self, m: &mut Machine) -> Result<CommitReport, RtError> {
        let start = Instant::now();
        let mut report = CommitReport::default();
        for fi in 0..self.fns.len() {
            self.commit_fn_idx(m, fi, &mut report)?;
        }
        let fnptrs: Vec<u64> = self
            .vars
            .iter()
            .filter(|v| v.fn_ptr)
            .map(|v| v.addr)
            .collect();
        for addr in fnptrs {
            self.commit_fnptr_var(m, addr, &mut report)?;
        }
        self.patch_time += start.elapsed();
        Ok(report)
    }

    /// `multiverse_revert()`: restore the original process image
    /// everywhere.
    pub fn revert(&mut self, m: &mut Machine) -> Result<CommitReport, RtError> {
        let start = Instant::now();
        let mut report = CommitReport::default();
        for fi in 0..self.fns.len() {
            report.sites_touched += self.revert_fn_idx(m, fi)?;
        }
        let fnptrs: Vec<u64> = self
            .vars
            .iter()
            .filter(|v| v.fn_ptr)
            .map(|v| v.addr)
            .collect();
        for addr in fnptrs {
            report.sites_touched += self.revert_fnptr_var(m, addr)?;
        }
        self.patch_time += start.elapsed();
        Ok(report)
    }

    /// `multiverse_commit_refs(&var)`: commit only the functions whose
    /// variants are guarded by the switch at `var_addr` (or, for a
    /// function-pointer switch, its call sites).
    pub fn commit_refs(&mut self, m: &mut Machine, var_addr: u64) -> Result<CommitReport, RtError> {
        let start = Instant::now();
        let &vi = self
            .var_by_addr
            .get(&var_addr)
            .ok_or(RtError::UnknownVariable(var_addr))?;
        let mut report = CommitReport::default();
        if self.vars[vi].fn_ptr {
            self.commit_fnptr_var(m, var_addr, &mut report)?;
        } else {
            for fi in 0..self.fns.len() {
                if self.references_var(fi, var_addr) {
                    self.commit_fn_idx(m, fi, &mut report)?;
                }
            }
        }
        self.patch_time += start.elapsed();
        Ok(report)
    }

    /// `multiverse_revert_refs(&var)`.
    pub fn revert_refs(&mut self, m: &mut Machine, var_addr: u64) -> Result<CommitReport, RtError> {
        let start = Instant::now();
        let &vi = self
            .var_by_addr
            .get(&var_addr)
            .ok_or(RtError::UnknownVariable(var_addr))?;
        let mut report = CommitReport::default();
        if self.vars[vi].fn_ptr {
            report.sites_touched += self.revert_fnptr_var(m, var_addr)?;
        } else {
            for fi in 0..self.fns.len() {
                if self.references_var(fi, var_addr) {
                    report.sites_touched += self.revert_fn_idx(m, fi)?;
                }
            }
        }
        self.patch_time += start.elapsed();
        Ok(report)
    }

    /// `multiverse_commit_func(&fn)`: commit a single function by its
    /// generic entry address.
    pub fn commit_func(&mut self, m: &mut Machine, fn_addr: u64) -> Result<CommitReport, RtError> {
        let start = Instant::now();
        let &fi = self
            .fn_by_addr
            .get(&fn_addr)
            .ok_or(RtError::UnknownFunction(fn_addr))?;
        let mut report = CommitReport::default();
        self.commit_fn_idx(m, fi, &mut report)?;
        self.patch_time += start.elapsed();
        Ok(report)
    }

    /// `multiverse_revert_func(&fn)`.
    pub fn revert_func(&mut self, m: &mut Machine, fn_addr: u64) -> Result<CommitReport, RtError> {
        let start = Instant::now();
        let &fi = self
            .fn_by_addr
            .get(&fn_addr)
            .ok_or(RtError::UnknownFunction(fn_addr))?;
        let mut report = CommitReport::default();
        report.sites_touched += self.revert_fn_idx(m, fi)?;
        self.patch_time += start.elapsed();
        Ok(report)
    }

    fn references_var(&self, fi: usize, var_addr: u64) -> bool {
        self.fns[fi]
            .desc
            .variants
            .iter()
            .any(|v| v.guards.iter().any(|g| g.var_addr == var_addr))
    }
}
